#pragma once
// Factory registry mapping algorithm names to fresh SearchAlgorithm
// instances. The canonical study set (paper Table I, Tørring row) is
// {RS, RF, GA, BO GP, BO TPE}; "SA"/"PSO" (CLTune baselines) and "bandit"
// (OpenTuner-style AUC-bandit ensemble) are available for the ablation and
// comparison benches.

#include <memory>
#include <string>
#include <vector>

#include "tuner/tuner.hpp"
#include "tuner/warm_start.hpp"

namespace repro::tuner {

/// Construct an algorithm by name ("rs", "rf", "ga", "bogp", "botpe",
/// "sa", "pso", "bandit"; case-insensitive, spaces/underscores ignored).
/// Throws std::out_of_range for unknown names.
[[nodiscard]] std::unique_ptr<SearchAlgorithm> make_algorithm(const std::string& name);

/// Like make_algorithm, but with a cross-tenant warm-start prior
/// (tuner/warm_start.hpp) injected into the model-based algorithms (BO GP,
/// BO TPE, RF). Algorithms without a model ignore the prior; a null/empty
/// prior is exactly make_algorithm(name).
[[nodiscard]] std::unique_ptr<SearchAlgorithm> make_algorithm(const std::string& name,
                                                              const PriorHandle& prior);

/// True when `name` resolves to an algorithm that can consume a warm-start
/// prior. Throws std::out_of_range for unknown names.
[[nodiscard]] bool supports_warm_start(const std::string& name);

/// Canonical identifiers of the paper's five algorithms, in figure order.
[[nodiscard]] const std::vector<std::string>& paper_algorithms();

/// All registered identifiers (paper set + extras).
[[nodiscard]] const std::vector<std::string>& all_algorithms();

/// Display name ("BO GP") for an identifier ("bogp").
[[nodiscard]] std::string display_name(const std::string& id);

}  // namespace repro::tuner
