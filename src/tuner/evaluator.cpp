#include "tuner/evaluator.hpp"

namespace repro::tuner {

Evaluator::Evaluator(const ParamSpace& space, Objective objective, std::size_t budget)
    : space_(space), objective_(std::move(objective)), budget_(budget) {}

Evaluation Evaluator::evaluate(const Configuration& config) {
  if (!space_.in_range(config)) {
    throw std::invalid_argument("Evaluator: configuration out of range");
  }
  const std::uint64_t key = space_.encode(config);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  if (used_ >= budget_) throw BudgetExhausted{};
  ++used_;
  const Evaluation result = objective_(config);
  cache_.emplace(key, result);
  if (result.valid && (!has_best_ || result.value < best_value_)) {
    has_best_ = true;
    best_value_ = result.value;
    best_config_ = config;
  }
  return result;
}

}  // namespace repro::tuner
