#include "tuner/evaluator.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace repro::tuner {

FailureCounters& FailureCounters::operator+=(const FailureCounters& other) noexcept {
  ok += other.ok;
  invalid += other.invalid;
  transient += other.transient;
  timeout += other.timeout;
  crashed += other.crashed;
  retries += other.retries;
  retry_successes += other.retry_successes;
  backoff_us += other.backoff_us;
  return *this;
}

void FailureCounters::count(EvalStatus status) noexcept {
  switch (status) {
    case EvalStatus::kOk: ++ok; break;
    case EvalStatus::kInvalid: ++invalid; break;
    case EvalStatus::kTransient: ++transient; break;
    case EvalStatus::kTimeout: ++timeout; break;
    case EvalStatus::kCrashed: ++crashed; break;
  }
}

Evaluator::Evaluator(const ParamSpace& space, Objective objective, std::size_t budget)
    : space_(space),
      objective_(std::move(objective)),
      budget_(budget),
      cache_capacity_(default_cache_capacity(budget)) {}

void Evaluator::set_cache_capacity(std::size_t capacity) {
  cache_capacity_ = capacity;
  if (cache_capacity_ == 0) return;
  while (cache_.size() > cache_capacity_ && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
}

Evaluation Evaluator::measure_once(const Configuration& config) {
  ++used_;
  assert(used_ <= budget_);
  Evaluation result = objective_(config);
  // Normalize the status against `valid` so objectives predating the fault
  // model keep their semantics: valid => ok, plain invalid stays invalid.
  if (result.valid) {
    result.status = EvalStatus::kOk;
  } else if (result.status == EvalStatus::kOk) {
    result.status = EvalStatus::kInvalid;
  }
  counters_.count(result.status);
  return result;
}

Evaluation Evaluator::evaluate(const Configuration& config) {
  if (!space_.in_range(config)) {
    throw std::invalid_argument("Evaluator: configuration out of range");
  }
  const std::uint64_t key = space_.encode(config);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  if (used_ >= budget_) throw BudgetExhausted{};

  Evaluation result = measure_once(config);
  if (result.status == EvalStatus::kTransient && retry_.max_retries > 0) {
    double backoff = retry_.backoff_initial_us;
    std::size_t attempts = 0;
    while (result.status == EvalStatus::kTransient &&
           attempts < retry_.max_retries && used_ < budget_) {
      ++attempts;
      ++counters_.retries;
      counters_.backoff_us += backoff;
      backoff = std::min(backoff * retry_.backoff_multiplier, retry_.backoff_max_us);
      result = measure_once(config);
    }
    if (attempts > 0 && (result.status == EvalStatus::kOk ||
                         result.status == EvalStatus::kInvalid)) {
      ++counters_.retry_successes;
    }
  }

  // Only deterministic outcomes are cacheable; a configuration lost to a
  // flaky measurement may be proposed (and charged) again later.
  if (result.status == EvalStatus::kOk || result.status == EvalStatus::kInvalid) {
    if (cache_capacity_ > 0) {
      while (cache_.size() >= cache_capacity_ && !cache_order_.empty()) {
        cache_.erase(cache_order_.front());
        cache_order_.pop_front();
        ++cache_evictions_;
      }
    }
    if (cache_.emplace(key, result).second) {
      cache_order_.push_back(key);
      ++cache_insertions_;
    }
    // Every evicted entry is a measurement the study may pay for again —
    // above 10% churn the cache is undersized for this budget.
    if (!churn_warned_ && cache_evictions_ * 10 > cache_insertions_ &&
        cache_insertions_ >= 10) {
      churn_warned_ = true;
      log_warn("evaluator cache churn: {} evictions over {} insertions "
               "(capacity {}, budget {}); evicted configurations are re-charged "
               "budget if proposed again",
               cache_evictions_, cache_insertions_, cache_capacity_, budget_);
    }
  }
  if (result.valid && (!has_best_ || result.value < best_value_)) {
    has_best_ = true;
    best_value_ = result.value;
    best_config_ = config;
  }
  return result;
}

}  // namespace repro::tuner
