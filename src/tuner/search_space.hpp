#pragma once
// Generic integer search space for autotuning.
//
// A ParamSpace is an ordered list of named integer parameters with inclusive
// ranges, an optional executability constraint, and a dense index codec
// (mixed-radix) over the full Cartesian product. The paper's space
// (Section V-C) is built by paper_search_space(): threads_{x,y,z} in [1..16]
// and wg_{x,y,z} in [1..8], |S| = 2,097,152, with the executability
// constraint wg_x*wg_y*wg_z <= 256.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace repro::tuner {

/// One point in the space: parameter values in declaration order.
using Configuration = std::vector<int>;

struct ParamRange {
  std::string name;
  int lo = 0;
  int hi = 0;  ///< inclusive

  [[nodiscard]] std::uint64_t cardinality() const noexcept {
    return static_cast<std::uint64_t>(hi - lo + 1);
  }
};

class ParamSpace {
 public:
  using Constraint = std::function<bool(const Configuration&)>;

  ParamSpace() = default;
  explicit ParamSpace(std::vector<ParamRange> params, Constraint constraint = nullptr);

  [[nodiscard]] std::size_t num_params() const noexcept { return params_.size(); }
  [[nodiscard]] const std::vector<ParamRange>& params() const noexcept { return params_; }
  [[nodiscard]] const ParamRange& param(std::size_t i) const { return params_.at(i); }

  /// Total number of points in the unconstrained Cartesian product.
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// True if every value is in range.
  [[nodiscard]] bool in_range(const Configuration& config) const noexcept;
  /// True if in range and the constraint (if any) holds.
  [[nodiscard]] bool is_executable(const Configuration& config) const noexcept;
  [[nodiscard]] bool has_constraint() const noexcept { return constraint_ != nullptr; }

  /// Mixed-radix codec over the full product (constraint ignored).
  [[nodiscard]] std::uint64_t encode(const Configuration& config) const;
  [[nodiscard]] Configuration decode(std::uint64_t index) const;

  /// Uniform sample from the full product.
  [[nodiscard]] Configuration sample(repro::Rng& rng) const;
  /// Uniform sample satisfying the constraint (rejection; throws
  /// std::runtime_error after `max_tries` rejections).
  [[nodiscard]] Configuration sample_executable(repro::Rng& rng,
                                                unsigned max_tries = 100000) const;

  /// Normalize a configuration to [0,1]^d (for GP distance computations).
  [[nodiscard]] std::vector<double> normalize(const Configuration& config) const;

  /// Clamp each value into its range.
  [[nodiscard]] Configuration clamp(Configuration config) const noexcept;

 private:
  std::vector<ParamRange> params_;
  Constraint constraint_;
};

/// The paper's 6-parameter search space with the work-group constraint.
[[nodiscard]] ParamSpace paper_search_space();

/// Paper-space parameter order, used when mapping to simgpu::KernelConfig.
enum PaperParam : std::size_t {
  kThreadsX = 0,
  kThreadsY = 1,
  kThreadsZ = 2,
  kWgX = 3,
  kWgY = 4,
  kWgZ = 5,
};

}  // namespace repro::tuner
