#include "tuner/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <future>

#include "common/thread_pool.hpp"

namespace repro::tuner {
namespace {

std::atomic<std::size_t> g_batches{0};
std::atomic<std::size_t> g_overlapped{0};
std::atomic<std::size_t> g_inline_runs{0};

void record(const AskPipelineStats& delta, AskPipelineStats* stats) {
  g_batches.fetch_add(delta.batches, std::memory_order_relaxed);
  g_overlapped.fetch_add(delta.overlapped, std::memory_order_relaxed);
  g_inline_runs.fetch_add(delta.inline_runs, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->batches += delta.batches;
    stats->overlapped += delta.overlapped;
    stats->inline_runs += delta.inline_runs;
  }
}

}  // namespace

void pipelined_ask(ThreadPool& pool, std::size_t count,
                   const std::function<void(std::size_t)>& generate,
                   const std::function<void(std::size_t)>& score,
                   AskPipelineStats* stats, const AskPipelineOptions& options) {
  const std::size_t batch = std::max<std::size_t>(1, options.batch);
  AskPipelineStats delta;
  // One batch or less leaves nothing to overlap; a pool worker must not
  // block on its own pool.
  if (count <= batch || pool.size() == 0 || pool.on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) generate(i);
    for (std::size_t i = 0; i < count; ++i) score(i);
    delta.inline_runs = 1;
    delta.batches = count > 0 ? 1 : 0;
    record(delta, stats);
    return;
  }

  std::future<void> in_flight[2];
  std::size_t slot = 0;
  try {
    for (std::size_t start = 0; start < count; start += batch) {
      const std::size_t end = std::min(start + batch, count);
      for (std::size_t i = start; i < end; ++i) generate(i);
      // Double buffer: reclaim the slot used two batches ago before
      // dispatching into it (rethrows a score exception, if any).
      if (in_flight[slot].valid()) in_flight[slot].get();
      in_flight[slot] = pool.submit([&score, start, end] {
        for (std::size_t i = start; i < end; ++i) score(i);
      });
      slot ^= 1;
      ++delta.batches;
      if (end < count) ++delta.overlapped;
    }
    if (in_flight[0].valid()) in_flight[0].get();
    if (in_flight[1].valid()) in_flight[1].get();
  } catch (...) {
    // Drain whatever is still running before unwinding: the score lambda
    // captures caller-owned state by reference.
    for (std::future<void>& f : in_flight) {
      if (f.valid()) {
        try {
          f.get();
        } catch (...) {  // first exception wins
        }
      }
    }
    record(delta, stats);
    throw;
  }
  record(delta, stats);
}

AskPipelineStats ask_pipeline_totals() noexcept {
  AskPipelineStats totals;
  totals.batches = g_batches.load(std::memory_order_relaxed);
  totals.overlapped = g_overlapped.load(std::memory_order_relaxed);
  totals.inline_runs = g_inline_runs.load(std::memory_order_relaxed);
  return totals;
}

}  // namespace repro::tuner
