#pragma once
// Budget-enforcing, caching evaluation broker between search algorithms and
// the objective.
//
// Paper protocol (Section VI-A): every configuration is measured once
// during search. Repeated proposals of the same configuration therefore
// return the cached measurement without consuming budget (the behaviour of
// Kernel Tuner's cache file, which the paper's GA baseline relies on).
// The budget counts *measurements*; when it is exhausted further calls
// throw BudgetExhausted, which algorithms use as their stop signal.

#include <cstddef>
#include <stdexcept>
#include <unordered_map>

#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {

struct BudgetExhausted : std::runtime_error {
  BudgetExhausted() : std::runtime_error("evaluation budget exhausted") {}
};

class Evaluator {
 public:
  Evaluator(const ParamSpace& space, Objective objective, std::size_t budget);

  /// Measure (or return the cached measurement of) a configuration.
  /// Throws BudgetExhausted when a fresh measurement would exceed budget;
  /// throws std::invalid_argument for configurations outside the parameter
  /// ranges (algorithms must clamp first).
  Evaluation evaluate(const Configuration& config);

  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return budget_ - used_; }
  [[nodiscard]] bool exhausted() const noexcept { return used_ >= budget_; }

  /// Best *valid* measurement observed so far.
  [[nodiscard]] bool has_best() const noexcept { return has_best_; }
  [[nodiscard]] const Configuration& best_config() const noexcept { return best_config_; }
  [[nodiscard]] double best_value() const noexcept { return best_value_; }

  [[nodiscard]] const ParamSpace& space() const noexcept { return space_; }

 private:
  const ParamSpace& space_;
  Objective objective_;
  std::size_t budget_;
  std::size_t used_ = 0;
  std::unordered_map<std::uint64_t, Evaluation> cache_;
  Configuration best_config_;
  double best_value_ = 0.0;
  bool has_best_ = false;
};

}  // namespace repro::tuner
