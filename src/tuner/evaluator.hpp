#pragma once
// Budget-enforcing, caching evaluation broker between search algorithms and
// the objective.
//
// Paper protocol (Section VI-A): every configuration is measured once
// during search. Repeated proposals of the same configuration therefore
// return the cached measurement without consuming budget (the behaviour of
// Kernel Tuner's cache file, which the paper's GA baseline relies on).
// The budget counts *measurements*; when it is exhausted further calls
// throw BudgetExhausted, which algorithms use as their stop signal.
//
// Fault tolerance: the objective may report anomalies through
// Evaluation::status (see tuner/objective.hpp). Transient failures are
// retried with bounded exponential backoff; every retry is a fresh
// measurement and consumes one unit of budget exactly like the paper's
// single-measurement protocol. Only deterministic outcomes (ok / invalid)
// enter the cache, so a configuration lost to a flaky measurement can be
// proposed — and measured — again. Per-status tallies are exposed for the
// study reports.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {

struct BudgetExhausted : std::runtime_error {
  BudgetExhausted() : std::runtime_error("evaluation budget exhausted") {}
};

/// Deterministic bounded exponential backoff for transient failures.
/// Defaults keep today's behaviour: no retries.
struct RetryPolicy {
  std::size_t max_retries = 0;        ///< extra attempts after a transient failure
  double backoff_initial_us = 100.0;  ///< simulated wait before the first retry
  double backoff_multiplier = 2.0;
  double backoff_max_us = 10000.0;    ///< cap on a single backoff wait
};

/// Per-status measurement tallies plus retry accounting; summed per study
/// cell for the failure report.
struct FailureCounters {
  std::size_t ok = 0;
  std::size_t invalid = 0;
  std::size_t transient = 0;
  std::size_t timeout = 0;
  std::size_t crashed = 0;
  std::size_t retries = 0;          ///< retry attempts issued
  std::size_t retry_successes = 0;  ///< retry chains that ended in ok/invalid
  double backoff_us = 0.0;          ///< total simulated backoff wait

  /// Anomalies only (excludes deterministic invalid configurations).
  [[nodiscard]] std::size_t faults() const noexcept {
    return transient + timeout + crashed;
  }
  /// True when the fault layer actually intervened (anomalies or retries);
  /// plain ok/invalid tallies do not count, so fault-free runs serialize
  /// byte-identically to the pre-fault format.
  [[nodiscard]] bool any() const noexcept {
    return faults() + retries > 0 || backoff_us > 0.0;
  }

  FailureCounters& operator+=(const FailureCounters& other) noexcept;
  void count(EvalStatus status) noexcept;
};

class Evaluator {
 public:
  Evaluator(const ParamSpace& space, Objective objective, std::size_t budget);

  /// Measure (or return the cached measurement of) a configuration.
  /// Throws BudgetExhausted when a fresh measurement would exceed budget;
  /// throws std::invalid_argument for configurations outside the parameter
  /// ranges (algorithms must clamp first). Transient failures are retried
  /// per the retry policy while budget remains; the final attempt's
  /// evaluation is returned either way.
  Evaluation evaluate(const Configuration& config);

  /// Retry behaviour for transient failures (default: no retries).
  void set_retry_policy(const RetryPolicy& policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept { return retry_; }

  /// Measurement tallies since construction (cached hits are not counted).
  [[nodiscard]] const FailureCounters& counters() const noexcept { return counters_; }

  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  /// Saturates at 0 — `used_` can never legitimately exceed `budget_`, but
  /// callers must not see a wrapped size_t if that invariant ever breaks.
  [[nodiscard]] std::size_t remaining() const noexcept {
    assert(used_ <= budget_);
    return used_ >= budget_ ? 0 : budget_ - used_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return used_ >= budget_; }

  /// Best *valid* measurement observed so far.
  [[nodiscard]] bool has_best() const noexcept { return has_best_; }
  [[nodiscard]] const Configuration& best_config() const noexcept { return best_config_; }
  [[nodiscard]] double best_value() const noexcept { return best_value_; }

  [[nodiscard]] const ParamSpace& space() const noexcept { return space_; }

  /// Cap the measurement cache at `capacity` entries (FIFO eviction; 0 =
  /// unbounded). Only fresh measurements insert — at most one per budget
  /// unit — so the budget-derived default (see default_cache_capacity)
  /// never evicts within one study; long-lived evaluators on huge spaces
  /// can lower it to bound memory. An evicted configuration re-proposed
  /// later is charged budget again, so heavy eviction churn silently burns
  /// budget — the evaluator logs a warning once when evictions exceed 10%
  /// of insertions.
  void set_cache_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t cache_capacity() const noexcept { return cache_capacity_; }
  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }

  /// Eviction-churn accounting for the warning above.
  [[nodiscard]] std::size_t cache_insertions() const noexcept { return cache_insertions_; }
  [[nodiscard]] std::size_t cache_evictions() const noexcept { return cache_evictions_; }

  /// Default cache capacity for a study with `budget` measurements: twice
  /// the budget (headroom for explicit re-warm patterns), floored so tiny
  /// smoke budgets keep a useful cache. Previously a fixed 2^20 regardless
  /// of budget — sized independently of the history it was meant to hold.
  [[nodiscard]] static std::size_t default_cache_capacity(std::size_t budget) noexcept {
    constexpr std::size_t kFloor = 1024;
    const std::size_t scaled = budget >= kFloor / 2 ? 2 * budget : kFloor;
    return std::max(scaled, kFloor);
  }

 private:
  /// One budget-charged call of the objective with status normalization.
  Evaluation measure_once(const Configuration& config);

  const ParamSpace& space_;
  Objective objective_;
  std::size_t budget_;
  std::size_t used_ = 0;
  RetryPolicy retry_;
  FailureCounters counters_;
  std::unordered_map<std::uint64_t, Evaluation> cache_;
  std::deque<std::uint64_t> cache_order_;  ///< insertion order for eviction
  std::size_t cache_capacity_;  ///< budget-derived in the constructor
  std::size_t cache_insertions_ = 0;
  std::size_t cache_evictions_ = 0;
  bool churn_warned_ = false;
  Configuration best_config_;
  double best_value_ = 0.0;
  bool has_best_ = false;
};

}  // namespace repro::tuner
