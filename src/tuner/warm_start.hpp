#pragma once
// Warm-started searches: seeding a model-based algorithm from prior
// observations of the *same* (benchmark, arch, space) tenant — history that
// another session, daemon or machine measured earlier (see
// store/results_store.hpp) — instead of starting from random init.
//
// The prior is a plain list of (config, value, valid) rows handed to the
// algorithm through its options struct. Contract, honored by BO GP, BO TPE
// and the RF tuner:
//   - A null or empty prior is byte-identical to the cold algorithm: every
//     branch the prior introduces is guarded by has_rows(), so disabled
//     warm start cannot perturb a single RNG draw.
//   - Prior rows seed the surrogate (GP training rows, TPE good/bad split,
//     RF training set) and replace most of the random-init phase, but they
//     never consume evaluation budget, never enter the dedup set (the
//     search may re-measure a promising prior config in-session), and never
//     count toward the reported best — TuneResult still reflects only
//     configurations this session actually evaluated.
//   - Given the same prior rows in the same order, the warm search is fully
//     deterministic (same RNG discipline as everything else).
//
// Rows are shared immutably (shared_ptr<const ...>) so one store snapshot
// can seed a session, ride its WAL open record, and be shipped to a standby
// without copies drifting apart.

#include <cstddef>
#include <memory>
#include <vector>

#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {

/// One prior observation from a compatible tenant history.
struct PriorObservation {
  Configuration config;
  double value = 0.0;  ///< observed runtime (µs); ignored when !valid
  bool valid = false;
};

using PriorHistory = std::vector<PriorObservation>;
/// Immutable shared prior; null or empty means cold start.
using PriorHandle = std::shared_ptr<const PriorHistory>;

namespace warm_start {

/// True when `prior` actually carries rows (the warm path is taken).
[[nodiscard]] inline bool has_rows(const PriorHandle& prior) noexcept {
  return prior != nullptr && !prior->empty();
}

/// Rows usable for seeding against `space`: dimensionality must match (a
/// fingerprint mismatch upstream should make this a no-op, but the
/// algorithms stay defensive), and a "valid" row must carry a positive
/// finite runtime to survive log-transforms.
[[nodiscard]] std::vector<PriorObservation> compatible_rows(const PriorHistory& prior,
                                                            const ParamSpace& space);

}  // namespace warm_start
}  // namespace repro::tuner
