#pragma once
// Ask/tell inversion of SearchAlgorithm::minimize().
//
// minimize() owns the control flow: it pulls measurements from an Evaluator
// until the budget runs out. Remote tuning needs the opposite — the caller
// owns the loop and the algorithm is a passive suggestion engine
// (Kernel Tuner-style ask() -> Configuration / tell(measurement)).
//
// AskTellSession performs the inversion without touching any algorithm:
// the algorithm runs unmodified on a dedicated thread against a normal
// Evaluator whose Objective is a blocking proxy. When the algorithm
// requests a fresh measurement, the proxy parks the search thread and
// surfaces the configuration through ask(); tell() delivers the
// measurement and resumes the search. Because the only substitution is
// the Objective closure — the Evaluator, its cache, its retry policy, and
// the algorithm's RNG stream are untouched — a session is bit-identical
// to an in-process minimize() run with the same seeds (proven by
// tests/service/test_ask_tell.cpp for all five paper algorithms).
//
// Threading contract: ask()/tell()/result()/cancel() may be called from
// any thread (the service serializes per session); the search thread only
// ever blocks inside the proxy, so cancel() can always unpark it.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "tuner/pipeline.hpp"
#include "tuner/tuner.hpp"

namespace repro::tuner {

/// Thrown inside the search thread (and out of ask()) when the session is
/// cancelled while a measurement is pending.
struct SessionCancelled : std::runtime_error {
  SessionCancelled() : std::runtime_error("ask/tell session cancelled") {}
};

/// ask() called while a previous ask() still awaits its tell().
struct AskPendingError : std::logic_error {
  AskPendingError() : std::logic_error("ask() while a measurement is outstanding") {}
};

/// tell() called with no outstanding ask() to answer.
struct TellMismatchError : std::logic_error {
  TellMismatchError() : std::logic_error("tell() without an outstanding ask()") {}
};

/// A timed ask_until()/result_until() expired before the search thread
/// produced what the caller was waiting for. Session state is untouched:
/// the proposal (once ready) is still unclaimed and the op can be retried.
struct DeadlineExceeded : std::runtime_error {
  DeadlineExceeded() : std::runtime_error("ask/tell deadline exceeded") {}
};

class AskTellSession {
 public:
  /// Starts the search thread immediately. `space` must outlive the
  /// session. `retry` mirrors Evaluator::set_retry_policy — each retry of
  /// a transient measurement surfaces as a fresh ask() of the same
  /// configuration and costs one unit of budget.
  AskTellSession(const ParamSpace& space, std::unique_ptr<SearchAlgorithm> algorithm,
                 std::size_t budget, std::uint64_t seed, RetryPolicy retry = {});
  /// Cancels and joins the search thread.
  ~AskTellSession();

  AskTellSession(const AskTellSession&) = delete;
  AskTellSession& operator=(const AskTellSession&) = delete;

  /// Block until the algorithm proposes a fresh measurement (returns the
  /// configuration) or terminates (returns nullopt; result() is ready).
  /// Throws AskPendingError if a proposal is already outstanding and
  /// SessionCancelled after cancel().
  [[nodiscard]] std::optional<Configuration> ask();

  /// ask() with a deadline (service deadline_ms support). Throws
  /// DeadlineExceeded on expiry without claiming the proposal, so a later
  /// ask()/ask_until() still observes it.
  [[nodiscard]] std::optional<Configuration> ask_until(
      std::chrono::steady_clock::time_point deadline);

  /// The proposal handed out by the last ask() and not yet answered, if
  /// any. Lets a reconnecting client resume an interrupted exchange
  /// idempotently instead of tripping AskPendingError.
  [[nodiscard]] std::optional<Configuration> outstanding_config() const;

  /// Deliver the measurement for the configuration returned by the last
  /// ask(). Throws TellMismatchError when nothing is outstanding.
  void tell(const Evaluation& evaluation);
  /// Shorthand for a successful measurement.
  void tell(double value) { tell(Evaluation{value, true, EvalStatus::kOk}); }

  [[nodiscard]] bool finished() const;
  /// True between an ask() and its tell().
  [[nodiscard]] bool ask_outstanding() const;
  [[nodiscard]] std::size_t asks() const;
  [[nodiscard]] std::size_t tells() const;
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] const std::string& algorithm_name() const noexcept { return name_; }

  /// Block until the search thread terminates and return its TuneResult.
  /// Rethrows whatever escaped minimize() (including SessionCancelled).
  [[nodiscard]] TuneResult result();

  /// result() with a deadline; throws DeadlineExceeded on expiry.
  [[nodiscard]] TuneResult result_until(std::chrono::steady_clock::time_point deadline);

  /// Evaluator measurement tallies; complete once finished() is true.
  [[nodiscard]] FailureCounters counters() const;

  /// Pipelined-ask activity since this session started: score batches run,
  /// batches overlapped with candidate generation, and asks that fell back
  /// to the serial loop (nested on a pool worker or too few candidates).
  /// Computed from the process-wide counters, so with concurrent sessions
  /// in one process the numbers include their activity too.
  [[nodiscard]] AskPipelineStats pipeline_stats() const;

  /// Unblock the search thread with SessionCancelled and refuse further
  /// asks. Idempotent; does not wait for the thread (the destructor joins).
  void cancel();

 private:
  Evaluation proxy_measure(const Configuration& config);
  void search_main(std::uint64_t seed);
  std::optional<Configuration> ask_impl(
      const std::chrono::steady_clock::time_point* deadline);

  const ParamSpace& space_;
  std::unique_ptr<SearchAlgorithm> algorithm_;
  const std::size_t budget_;
  const RetryPolicy retry_;
  std::string name_;

  mutable repro::Mutex mutex_;
  std::condition_variable cv_;
  /// Proposal the search thread is parked on.
  Configuration pending_ GUARDED_BY(mutex_);
  bool has_pending_ GUARDED_BY(mutex_) = false;
  /// pending_ was handed out via ask().
  bool outstanding_ GUARDED_BY(mutex_) = false;
  Evaluation reply_ GUARDED_BY(mutex_);
  bool has_reply_ GUARDED_BY(mutex_) = false;
  bool cancelled_ GUARDED_BY(mutex_) = false;
  bool finished_ GUARDED_BY(mutex_) = false;
  std::size_t asks_ GUARDED_BY(mutex_) = 0;
  std::size_t tells_ GUARDED_BY(mutex_) = 0;
  TuneResult result_ GUARDED_BY(mutex_);
  FailureCounters counters_ GUARDED_BY(mutex_);
  /// ask_pipeline_totals() snapshot at construction (atomics; no lock).
  AskPipelineStats pipeline_baseline_;
  std::exception_ptr error_ GUARDED_BY(mutex_);
  /// One dedicated search thread per session is the ask/tell design: it
  /// spends its life parked in proxy_measure, and a ThreadPool worker
  /// blocking there would deadlock the pool under concurrent sessions.
  std::thread thread_;  // NOLINT(reprolint-raw-thread) last member: starts after state is ready
};

}  // namespace repro::tuner
