#include "simgpu/launch.hpp"

#include <algorithm>

#include "common/fmt.hpp"

namespace repro::simgpu {
namespace {

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

bool KernelConfig::in_range() const noexcept {
  auto in = [](std::uint32_t v, std::uint32_t lo, std::uint32_t hi) {
    return v >= lo && v <= hi;
  };
  return in(coarsen_x, 1, 16) && in(coarsen_y, 1, 16) && in(coarsen_z, 1, 16) &&
         in(wg_x, 1, 8) && in(wg_y, 1, 8) && in(wg_z, 1, 8);
}

std::string KernelConfig::to_string() const {
  return repro::fmt("c=({},{},{}) wg=({},{},{})", coarsen_x, coarsen_y, coarsen_z,
                     wg_x, wg_y, wg_z);
}

KernelConfig clamp_to_extent(const KernelConfig& config, const GridExtent& extent) noexcept {
  KernelConfig eff = config;
  eff.coarsen_x = static_cast<std::uint32_t>(std::min<std::uint64_t>(config.coarsen_x, extent.x));
  eff.coarsen_y = static_cast<std::uint32_t>(std::min<std::uint64_t>(config.coarsen_y, extent.y));
  eff.coarsen_z = static_cast<std::uint32_t>(std::min<std::uint64_t>(config.coarsen_z, extent.z));
  eff.wg_x = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(eff.wg_x, ceil_div(extent.x, eff.coarsen_x)));
  eff.wg_y = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(eff.wg_y, ceil_div(extent.y, eff.coarsen_y)));
  eff.wg_z = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(eff.wg_z, ceil_div(extent.z, eff.coarsen_z)));
  return eff;
}

LaunchGeometry derive_geometry(const GridExtent& extent, const KernelConfig& config_in,
                               const GpuArch& arch) {
  const KernelConfig config = clamp_to_extent(config_in, extent);
  LaunchGeometry geometry;
  geometry.threads_x = ceil_div(extent.x, config.coarsen_x);
  geometry.threads_y = ceil_div(extent.y, config.coarsen_y);
  geometry.threads_z = ceil_div(extent.z, config.coarsen_z);
  geometry.wgs_x = ceil_div(geometry.threads_x, config.wg_x);
  geometry.wgs_y = ceil_div(geometry.threads_y, config.wg_y);
  geometry.wgs_z = ceil_div(geometry.threads_z, config.wg_z);
  geometry.wg_threads = config.wg_threads();
  geometry.warps_per_wg =
      static_cast<std::uint32_t>(ceil_div(geometry.wg_threads, arch.warp_size));
  geometry.lane_efficiency =
      static_cast<double>(geometry.wg_threads) /
      (static_cast<double>(geometry.warps_per_wg) * arch.warp_size);
  return geometry;
}

std::array<std::uint32_t, 3> lane_coords(std::uint32_t lane,
                                         const KernelConfig& config) noexcept {
  const std::uint32_t lx = lane % config.wg_x;
  const std::uint32_t ly = (lane / config.wg_x) % config.wg_y;
  const std::uint32_t lz = lane / (config.wg_x * config.wg_y);
  return {lx, ly, lz};
}

}  // namespace repro::simgpu
