#pragma once
// Memory-access trace recording for the Device execution engine.
//
// Accesses are grouped the way GPU hardware coalesces them: by (warp,
// buffer, access sequence number), where the k-th access a lane performs on
// a buffer is grouped with the other lanes' k-th accesses (our kernels are
// straight-line data-parallel loops, so this matches instruction grouping).
// The analyzer then produces the same CoalescingStats that the analytical
// model predicts, which the tests compare directly.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "simgpu/cache_sim.hpp"
#include "simgpu/coalescing.hpp"

namespace repro::simgpu {

class TraceRecorder {
 public:
  /// Record one access of `bytes` at `byte_address` on `buffer` performed by
  /// `lane` of `warp`. Not thread-safe; traced runs execute serially.
  void record(std::uint64_t warp, std::uint32_t lane, std::uint32_t buffer,
              std::uint64_t byte_address, std::uint32_t bytes);

  /// Coalescing statistics for one (warp, buffer) pair.
  [[nodiscard]] CoalescingStats warp_stats(std::uint64_t warp, std::uint32_t buffer,
                                           std::uint32_t sector_bytes) const;

  /// Aggregate statistics for a buffer across all warps.
  [[nodiscard]] CoalescingStats total_stats(std::uint32_t buffer,
                                            std::uint32_t sector_bytes) const;

  /// Replay every access of `buffer` (warp-major, then sequence order)
  /// through a cache simulator at sector granularity; returns hit rate.
  double replay_through_cache(std::uint32_t buffer, CacheSim& cache) const;

  [[nodiscard]] std::uint64_t total_accesses() const noexcept { return total_accesses_; }

 private:
  struct Access {
    std::uint64_t byte = 0;
    std::uint32_t bytes = 0;
    std::uint32_t seq = 0;
  };
  struct LaneKey {
    std::uint64_t warp;
    std::uint32_t lane;
    std::uint32_t buffer;
    auto operator<=>(const LaneKey&) const = default;
  };

  // (warp, buffer) -> flat access list annotated with per-lane sequence ids.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::vector<Access>> groups_;
  std::map<LaneKey, std::uint32_t> lane_counters_;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace repro::simgpu
