#pragma once
// Warp-level memory coalescing analysis.
//
// Instead of a hand-waved efficiency formula, we enumerate the addresses one
// representative warp issues over its whole coarsened loop for a given
// access pattern, and count 32-byte sectors two ways:
//
//  - `transactions`: unique sectors per *step* (one step = one load/store
//    instruction executed by all lanes), summed over steps. This measures
//    LSU/interconnect work; scattered lanes (e.g. blocked x-coarsening with
//    large coarsen_x) inflate it even when caches absorb the traffic.
//  - `dram_sectors`: unique sectors over the *entire* loop, modelling
//    perfect intra-warp L1 reuse. This measures compulsory DRAM traffic.
//
// The trace-based Device engine (device.hpp) performs the same counting on
// real executions, which the tests use to validate this analysis.

#include <cstdint>
#include <vector>

#include "simgpu/launch.hpp"

namespace repro::simgpu {

/// Relative element offsets a thread touches per coarsened element
/// (stencil footprint); {0,0,0} for a pure streaming access.
struct AccessOffset {
  std::int32_t dx = 0;
  std::int32_t dy = 0;
  std::int32_t dz = 0;
};

/// Describes one buffer access pattern of a kernel.
struct WarpAccessSpec {
  std::uint32_t element_bytes = 4;
  std::uint64_t pitch_x = 1;  ///< elements per row (row-major)
  std::uint64_t pitch_y = 1;  ///< rows per slice
  std::vector<AccessOffset> offsets{{0, 0, 0}};
  /// Column-major addressing: element (x, y) lives at x*pitch_x + y —
  /// the transposed-output pattern of matrix/image transpose kernels.
  /// Deliberately uncoalesced along warp lanes.
  bool column_major = false;
};

struct CoalescingStats {
  std::uint64_t useful_bytes = 0;   ///< bytes the lanes actually consume
  std::uint64_t transactions = 0;   ///< per-step unique sectors, summed
  std::uint64_t dram_sectors = 0;   ///< loop-wide unique sectors
  std::uint64_t steps = 0;          ///< load/store instructions issued

  /// Fraction of DRAM traffic that is useful (<= 1).
  [[nodiscard]] double dram_efficiency(std::uint32_t sector_bytes) const noexcept {
    const std::uint64_t moved = dram_sectors * sector_bytes;
    return moved == 0 ? 1.0 : static_cast<double>(useful_bytes) / static_cast<double>(moved);
  }
  /// Fraction of LSU transaction bandwidth that is useful (<= 1).
  [[nodiscard]] double transaction_efficiency(std::uint32_t sector_bytes) const noexcept {
    const std::uint64_t moved = transactions * sector_bytes;
    return moved == 0 ? 1.0 : static_cast<double>(useful_bytes) / static_cast<double>(moved);
  }
};

/// Analyze one representative full warp of the launch (lanes of warp 0 of a
/// work-group away from the grid edge) executing its blocked coarsening loop
/// against the given access pattern.
[[nodiscard]] CoalescingStats analyze_warp_accesses(const KernelConfig& config,
                                                    const GpuArch& arch,
                                                    const WarpAccessSpec& spec);

/// Fast equivalent of analyze_warp_accesses that exploits two structural
/// facts of blocked row-major patterns: (1) when the row pitch in bytes is a
/// multiple of the sector size, every y/z step of the coarsening loop issues
/// a sector pattern identical to the first (shifted whole sectors), so only
/// one step-row must be simulated; (2) a warp's loop-wide footprint in each
/// touched row is a contiguous byte range, so loop-unique sectors can be
/// counted per row without a set over every access. Falls back to the exact
/// routine when the pitch precondition does not hold. Tests assert equality
/// with the exact routine.
[[nodiscard]] CoalescingStats analyze_warp_accesses_fast(const KernelConfig& config,
                                                         const GpuArch& arch,
                                                         const WarpAccessSpec& spec);

}  // namespace repro::simgpu
