#pragma once
// Deterministic measurement-fault injection.
//
// The paper's SMBO methods search the unconstrained space and can propose
// *failing* configurations; real tuning sessions additionally contend with
// transient launch failures, hung kernels, and device resets (the reason
// Kernel Tuner persists a cache file across interrupted runs). This model
// turns a single measurement into one of those anomalies so the evaluation
// pipeline's retry / degradation / checkpoint machinery can be exercised
// deterministically. Disabled by default: a disabled injector never draws
// from its RNG, so every existing result stream is bit-identical.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace repro::simgpu {

/// Fate of one measurement attempt.
enum class FaultKind {
  kNone,         ///< measurement proceeds normally
  kTransient,    ///< spurious launch/readback failure; retryable
  kTimeout,      ///< hung kernel killed at the wall budget
  kDeviceReset,  ///< device reset; starts a sticky poisoned episode
  kPoisoned,     ///< measurement lost to an ongoing reset episode
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Immutable fault regime. Probabilities are per fresh measurement and are
/// mutually exclusive (sampled from one uniform draw); their sum must be
/// <= 1. A device reset poisons the next `reset_poison_count` measurements
/// of the same stream (they report kPoisoned).
struct FaultModel {
  bool enabled = false;
  double transient_probability = 0.0;
  double timeout_probability = 0.0;
  double reset_probability = 0.0;
  std::size_t reset_poison_count = 3;
  /// Wall budget (us) reported as the elapsed cost of a hung measurement.
  double timeout_wall_us = 1.0e6;

  /// Convenience regime: total failure rate split 70% transient,
  /// 20% timeout, 10% device reset. rate <= 0 disables the model.
  [[nodiscard]] static FaultModel with_rate(double rate) noexcept;
};

/// Stateful per-measurement-stream sampler: owns the episode state (device
/// resets are sticky) and a dedicated seeded RNG so fault decisions never
/// perturb the noise stream. One injector per sequential measurement stream
/// (one experiment, one dataset entry); not thread-safe.
class FaultInjector {
 public:
  /// Disabled injector: next() always returns kNone and never draws.
  FaultInjector() = default;

  FaultInjector(const FaultModel& model, std::uint64_t seed)
      : model_(model), rng_(seed) {}

  /// Decide the fate of the next measurement attempt.
  [[nodiscard]] FaultKind next();

  [[nodiscard]] const FaultModel& model() const noexcept { return model_; }
  [[nodiscard]] bool enabled() const noexcept { return model_.enabled; }
  [[nodiscard]] std::size_t poisoned_remaining() const noexcept {
    return poisoned_remaining_;
  }

 private:
  FaultModel model_{};
  repro::Rng rng_{0};
  std::size_t poisoned_remaining_ = 0;
};

}  // namespace repro::simgpu
