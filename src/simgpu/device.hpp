#pragma once
// Trace-based NDRange execution engine ("the simulated device").
//
// Functionally executes a kernel over a launch grid, work-group by
// work-group, on CPU threads. Kernels are C++ callables receiving a
// ThreadCtx (global thread coordinates plus lane/warp identity); data lives
// in TracedBuffer<T> objects whose reads/writes are optionally recorded into
// a TraceRecorder so the coalescing and cache behaviour of a real execution
// can be compared with the analytical model's predictions.
//
// Work-groups never need cross-lane synchronization in our kernels (the
// cost model handles shared-memory tiling analytically), so lanes execute
// sequentially within a work-group; untraced runs parallelize across
// work-groups.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "simgpu/arch.hpp"
#include "simgpu/launch.hpp"
#include "simgpu/trace.hpp"

namespace repro::simgpu {

struct ThreadCtx {
  std::uint64_t gx = 0;  ///< global thread coordinates
  std::uint64_t gy = 0;
  std::uint64_t gz = 0;
  std::uint32_t lane = 0;       ///< linear index within the work-group
  std::uint64_t wg_linear = 0;  ///< linear work-group index
  std::uint64_t warp = 0;       ///< global warp id
  TraceRecorder* trace = nullptr;
};

/// Iterate a thread's blocked coarsened elements, clamped to the extent:
/// thread t covers [t*coarsen, min((t+1)*coarsen, extent)) per dimension.
/// `body(x, y, z)` runs once per element.
template <typename Body>
void for_each_coarsened_element(const ThreadCtx& ctx, const KernelConfig& config,
                                const GridExtent& extent, Body&& body) {
  const std::uint64_t x0 = ctx.gx * config.coarsen_x;
  const std::uint64_t y0 = ctx.gy * config.coarsen_y;
  const std::uint64_t z0 = ctx.gz * config.coarsen_z;
  for (std::uint64_t k = 0; k < config.coarsen_z && z0 + k < extent.z; ++k) {
    for (std::uint64_t j = 0; j < config.coarsen_y && y0 + j < extent.y; ++j) {
      for (std::uint64_t i = 0; i < config.coarsen_x && x0 + i < extent.x; ++i) {
        body(x0 + i, y0 + j, z0 + k);
      }
    }
  }
}

/// Buffer with optional access tracing. Owns its storage.
template <typename T>
class TracedBuffer {
 public:
  TracedBuffer(std::uint32_t buffer_id, std::size_t size, T fill = T{})
      : id_(buffer_id), data_(size, fill) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::vector<T>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

  T read(const ThreadCtx& ctx, std::size_t index) const {
    if (ctx.trace) {
      ctx.trace->record(ctx.warp, ctx.lane, id_, index * sizeof(T), sizeof(T));
    }
    return data_[index];
  }

  void write(const ThreadCtx& ctx, std::size_t index, T value) {
    if (ctx.trace) {
      ctx.trace->record(ctx.warp, ctx.lane, id_, index * sizeof(T), sizeof(T));
    }
    data_[index] = value;
  }

 private:
  std::uint32_t id_;
  std::vector<T> data_;
};

using KernelFn = std::function<void(const ThreadCtx&)>;

class Device {
 public:
  explicit Device(GpuArch arch) : arch_(std::move(arch)) {}

  [[nodiscard]] const GpuArch& arch() const noexcept { return arch_; }

  /// Execute `kernel` once per in-grid thread of the launch defined by
  /// (extent, config). With `trace` non-null the run is serialized and every
  /// buffer access is recorded; otherwise work-groups run in parallel on the
  /// global thread pool. Throws std::invalid_argument for configurations
  /// that violate parameter ranges or the work-group constraint — mirroring
  /// a failed kernel launch.
  void run(const GridExtent& extent, const KernelConfig& config, const KernelFn& kernel,
           TraceRecorder* trace = nullptr) const;

 private:
  GpuArch arch_;
};

}  // namespace repro::simgpu
