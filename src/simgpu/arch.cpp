#include "simgpu/arch.hpp"

#include <stdexcept>

namespace repro::simgpu {

GpuArch gtx980() {
  GpuArch arch;
  arch.name = "gtx980";
  arch.sm_count = 16;
  arch.max_threads_per_sm = 2048;
  arch.max_wgs_per_sm = 32;
  arch.max_wg_threads = 1024;
  arch.regs_per_sm = 65536;
  arch.shared_per_sm = 98304;        // 96 KiB
  arch.shared_per_wg_max = 49152;    // 48 KiB
  arch.fp32_gflops = 4612.0;
  arch.dram_bw_gbps = 224.0;
  arch.l2_bw_multiplier = 2.6;
  arch.core_clock_ghz = 1.216;
  arch.l2_bytes = 2ull * 1024 * 1024;
  arch.launch_overhead_us = 8.0;     // older driver stack, PCIe 3
  arch.occupancy_for_peak_compute = 0.60;
  arch.mem_latency_cycles = 368.0;
  arch.mem_parallelism = 4.0;
  arch.noise_sigma = 0.020;
  return arch;
}

GpuArch titan_v() {
  GpuArch arch;
  arch.name = "titanv";
  arch.sm_count = 80;
  arch.max_threads_per_sm = 2048;
  arch.max_wgs_per_sm = 32;
  arch.max_wg_threads = 1024;
  arch.regs_per_sm = 65536;
  arch.shared_per_sm = 98304;
  arch.shared_per_wg_max = 49152;
  arch.fp32_gflops = 13800.0;
  arch.dram_bw_gbps = 652.8;         // HBM2
  arch.l2_bw_multiplier = 3.2;
  arch.core_clock_ghz = 1.455;
  arch.l2_bytes = 4608ull * 1024;    // 4.5 MiB
  arch.launch_overhead_us = 6.0;
  arch.occupancy_for_peak_compute = 0.50;
  arch.mem_latency_cycles = 425.0;
  arch.mem_parallelism = 5.0;
  arch.noise_sigma = 0.012;
  return arch;
}

GpuArch rtx_titan() {
  GpuArch arch;
  arch.name = "rtxtitan";
  arch.sm_count = 72;
  arch.max_threads_per_sm = 1024;    // Turing halves resident threads per SM
  arch.max_wgs_per_sm = 16;
  arch.max_wg_threads = 1024;
  arch.regs_per_sm = 65536;
  arch.shared_per_sm = 65536;
  arch.shared_per_wg_max = 65536;
  arch.fp32_gflops = 16312.0;
  arch.dram_bw_gbps = 672.0;         // GDDR6
  arch.l2_bw_multiplier = 3.0;
  arch.core_clock_ghz = 1.770;
  arch.l2_bytes = 6ull * 1024 * 1024;
  arch.launch_overhead_us = 5.0;
  arch.occupancy_for_peak_compute = 0.45;
  arch.mem_latency_cycles = 440.0;
  arch.mem_parallelism = 5.0;
  arch.noise_sigma = 0.012;
  return arch;
}

const std::vector<GpuArch>& testbed() {
  static const std::vector<GpuArch> archs = {gtx980(), titan_v(), rtx_titan()};
  return archs;
}

const GpuArch& arch_by_name(const std::string& name) {
  for (const auto& arch : testbed()) {
    if (arch.name == name) return arch;
  }
  throw std::out_of_range("unknown architecture: " + name);
}

}  // namespace repro::simgpu
