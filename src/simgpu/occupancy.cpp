#include "simgpu/occupancy.hpp"

#include <algorithm>

namespace repro::simgpu {

OccupancyResult compute_occupancy(const GpuArch& arch, const LaunchGeometry& geometry,
                                  std::uint32_t regs_per_thread,
                                  std::uint64_t shared_bytes_per_wg) {
  OccupancyResult result;
  if (geometry.wg_threads == 0) {
    result.launchable = false;
    result.limiter = "threads";
    return result;
  }
  if (geometry.wg_threads > arch.max_wg_threads ||
      shared_bytes_per_wg > arch.shared_per_wg_max) {
    result.launchable = false;
    result.limiter = geometry.wg_threads > arch.max_wg_threads ? "threads" : "shared";
    return result;
  }

  // Threads are allocated at warp granularity.
  const std::uint32_t padded_threads = geometry.warps_per_wg * arch.warp_size;

  const std::uint32_t by_threads = arch.max_threads_per_sm / padded_threads;
  const std::uint32_t by_slots = arch.max_wgs_per_sm;
  // Registers allocate per padded thread, rounded to a 256-register bank.
  const std::uint32_t regs_per_wg =
      ((std::max(regs_per_thread, 1u) * padded_threads + 255u) / 256u) * 256u;
  const std::uint32_t by_regs = arch.regs_per_sm / std::max(regs_per_wg, 1u);
  const std::uint32_t by_shared =
      shared_bytes_per_wg == 0
          ? arch.max_wgs_per_sm
          : static_cast<std::uint32_t>(arch.shared_per_sm / shared_bytes_per_wg);

  result.active_wgs_per_sm = std::min({by_threads, by_slots, by_regs, by_shared});
  if (result.active_wgs_per_sm == 0) {
    // A single work-group over-subscribes a per-SM resource: not launchable.
    result.launchable = false;
    result.limiter = by_regs == 0 ? "registers" : "shared";
    return result;
  }
  if (result.active_wgs_per_sm == by_threads && by_threads <= by_slots &&
      by_threads <= by_regs && by_threads <= by_shared) {
    result.limiter = "threads";
  } else if (result.active_wgs_per_sm == by_slots) {
    result.limiter = "wg_slots";
  } else if (result.active_wgs_per_sm == by_regs) {
    result.limiter = "registers";
  } else {
    result.limiter = "shared";
  }

  result.active_warps_per_sm = result.active_wgs_per_sm * geometry.warps_per_wg;
  const std::uint32_t max_warps = arch.max_warps_per_sm();
  if (result.active_warps_per_sm > max_warps) {
    result.active_warps_per_sm = max_warps;
  }
  result.occupancy =
      static_cast<double>(result.active_warps_per_sm) / static_cast<double>(max_warps);
  return result;
}

}  // namespace repro::simgpu
