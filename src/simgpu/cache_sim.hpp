#pragma once
// Set-associative LRU cache simulator. Used by the trace-based engine to
// cross-check the analytical L2-reuse model and directly unit-tested.

#include <cstdint>
#include <vector>

namespace repro::simgpu {

class CacheSim {
 public:
  /// `capacity_bytes` total, `line_bytes` per line, `ways` associativity.
  /// capacity must be divisible by line_bytes * ways and the set count must
  /// be a power of two; throws std::invalid_argument otherwise.
  CacheSim(std::uint64_t capacity_bytes, std::uint32_t line_bytes, std::uint32_t ways);

  /// Access one byte address; returns true on hit. Misses fill the line.
  bool access(std::uint64_t address);

  void reset();

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    return accesses() == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(accesses());
  }
  [[nodiscard]] std::uint32_t num_sets() const noexcept { return num_sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint32_t line_bytes() const noexcept { return line_bytes_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace repro::simgpu
