#include "simgpu/faults.hpp"

namespace repro::simgpu {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kDeviceReset: return "device_reset";
    case FaultKind::kPoisoned: return "poisoned";
  }
  return "?";
}

FaultModel FaultModel::with_rate(double rate) noexcept {
  FaultModel model;
  if (rate <= 0.0) return model;
  model.enabled = true;
  model.transient_probability = 0.7 * rate;
  model.timeout_probability = 0.2 * rate;
  model.reset_probability = 0.1 * rate;
  return model;
}

FaultKind FaultInjector::next() {
  if (!model_.enabled) return FaultKind::kNone;
  if (poisoned_remaining_ > 0) {
    --poisoned_remaining_;
    return FaultKind::kPoisoned;
  }
  const double u = rng_.uniform();
  if (u < model_.transient_probability) return FaultKind::kTransient;
  if (u < model_.transient_probability + model_.timeout_probability) {
    return FaultKind::kTimeout;
  }
  if (u < model_.transient_probability + model_.timeout_probability +
              model_.reset_probability) {
    poisoned_remaining_ = model_.reset_poison_count;
    return FaultKind::kDeviceReset;
  }
  return FaultKind::kNone;
}

}  // namespace repro::simgpu
