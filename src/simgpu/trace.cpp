#include "simgpu/trace.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace repro::simgpu {

void TraceRecorder::record(std::uint64_t warp, std::uint32_t lane, std::uint32_t buffer,
                           std::uint64_t byte_address, std::uint32_t bytes) {
  const std::uint32_t seq = lane_counters_[LaneKey{warp, lane, buffer}]++;
  groups_[{warp, buffer}].push_back(Access{byte_address, bytes, seq});
  ++total_accesses_;
}

CoalescingStats TraceRecorder::warp_stats(std::uint64_t warp, std::uint32_t buffer,
                                          std::uint32_t sector_bytes) const {
  CoalescingStats stats;
  const auto it = groups_.find({warp, buffer});
  if (it == groups_.end()) return stats;

  std::unordered_set<std::uint64_t> loop_sectors;
  std::map<std::uint32_t, std::unordered_set<std::uint64_t>> per_step;
  for (const Access& access : it->second) {
    stats.useful_bytes += access.bytes;
    const std::uint64_t first = access.byte / sector_bytes;
    const std::uint64_t last = (access.byte + access.bytes - 1) / sector_bytes;
    for (std::uint64_t s = first; s <= last; ++s) {
      loop_sectors.insert(s);
      per_step[access.seq].insert(s);
    }
  }
  stats.dram_sectors = loop_sectors.size();
  stats.steps = per_step.size();
  for (const auto& [seq, sectors] : per_step) stats.transactions += sectors.size();
  return stats;
}

CoalescingStats TraceRecorder::total_stats(std::uint32_t buffer,
                                           std::uint32_t sector_bytes) const {
  CoalescingStats total;
  for (const auto& [key, accesses] : groups_) {
    if (key.second != buffer) continue;
    const CoalescingStats stats = warp_stats(key.first, buffer, sector_bytes);
    total.useful_bytes += stats.useful_bytes;
    total.transactions += stats.transactions;
    total.dram_sectors += stats.dram_sectors;
    total.steps += stats.steps;
  }
  return total;
}

double TraceRecorder::replay_through_cache(std::uint32_t buffer, CacheSim& cache) const {
  for (const auto& [key, accesses] : groups_) {
    if (key.second != buffer) continue;
    // Within a warp, replay in sequence order (stable by seq).
    std::vector<Access> ordered = accesses;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Access& a, const Access& b) { return a.seq < b.seq; });
    for (const Access& access : ordered) cache.access(access.byte);
  }
  return cache.hit_rate();
}

}  // namespace repro::simgpu
