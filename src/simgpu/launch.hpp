#pragma once
// Kernel launch configuration and derived geometry.
//
// The paper's 6-parameter search space (Section V-C): thread coarsening
// factors threads_{x,y,z} in [1..16] (how many data elements each thread
// processes per dimension) and work-group sizes wg_{x,y,z} in [1..8].
// Executable configurations additionally satisfy wg_x*wg_y*wg_z <= 256
// ("prior knowledge" constraint used for the non-SMBO sample generator).

#include <array>
#include <cstdint>
#include <string>

#include "simgpu/arch.hpp"

namespace repro::simgpu {

struct KernelConfig {
  // Thread coarsening factors (elements per thread per dimension), [1..16].
  std::uint32_t coarsen_x = 1;
  std::uint32_t coarsen_y = 1;
  std::uint32_t coarsen_z = 1;
  // Work-group dimensions, [1..8].
  std::uint32_t wg_x = 1;
  std::uint32_t wg_y = 1;
  std::uint32_t wg_z = 1;

  [[nodiscard]] std::uint32_t wg_threads() const noexcept { return wg_x * wg_y * wg_z; }
  [[nodiscard]] std::uint64_t coarsening() const noexcept {
    return std::uint64_t{coarsen_x} * coarsen_y * coarsen_z;
  }

  /// Paper constraint: work-group size product must not exceed 256.
  [[nodiscard]] bool satisfies_wg_constraint() const noexcept { return wg_threads() <= 256; }

  /// All six parameters within their declared ranges.
  [[nodiscard]] bool in_range() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const KernelConfig&, const KernelConfig&) = default;
};

/// Problem extents in elements (the data grid the kernel covers).
struct GridExtent {
  std::uint64_t x = 1;
  std::uint64_t y = 1;
  std::uint64_t z = 1;
  [[nodiscard]] std::uint64_t elements() const noexcept { return x * y * z; }
};

/// Geometry derived from extents + config: global thread counts, work-group
/// counts, warps, and partial-warp lane efficiency.
struct LaunchGeometry {
  std::uint64_t threads_x = 0;     ///< ceil(extent.x / coarsen_x)
  std::uint64_t threads_y = 0;
  std::uint64_t threads_z = 0;
  std::uint64_t wgs_x = 0;         ///< ceil(threads_x / wg_x)
  std::uint64_t wgs_y = 0;
  std::uint64_t wgs_z = 0;
  std::uint32_t wg_threads = 0;
  std::uint32_t warps_per_wg = 0;  ///< ceil(wg_threads / warp_size)
  double lane_efficiency = 1.0;    ///< wg_threads / (warps_per_wg * warp_size)

  [[nodiscard]] std::uint64_t total_threads() const noexcept {
    return threads_x * threads_y * threads_z;
  }
  [[nodiscard]] std::uint64_t total_wgs() const noexcept { return wgs_x * wgs_y * wgs_z; }
  [[nodiscard]] std::uint64_t total_warps() const noexcept {
    return total_wgs() * warps_per_wg;
  }
};

/// Clamp a configuration to the launch grid: coarsening factors cannot
/// exceed the extent, and work-group dimensions cannot exceed the resulting
/// global thread counts (the runtime clamps local size to global size, as
/// an OpenCL launch would otherwise be illegal). For 2-D kernels this makes
/// coarsen_z and wg_z *dead parameters* — present in the search space but
/// without effect — exactly as in the paper's 6-parameter space applied to
/// image kernels.
[[nodiscard]] KernelConfig clamp_to_extent(const KernelConfig& config,
                                           const GridExtent& extent) noexcept;

[[nodiscard]] LaunchGeometry derive_geometry(const GridExtent& extent,
                                             const KernelConfig& config,
                                             const GpuArch& arch);

/// Lane -> (lx, ly, lz) within a work-group (x-fastest linearization, the
/// OpenCL convention). `lane` is the linear index within the work-group.
[[nodiscard]] std::array<std::uint32_t, 3> lane_coords(std::uint32_t lane,
                                                       const KernelConfig& config) noexcept;

}  // namespace repro::simgpu
