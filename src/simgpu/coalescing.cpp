#include "simgpu/coalescing.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace repro::simgpu {

CoalescingStats analyze_warp_accesses(const KernelConfig& config, const GpuArch& arch,
                                      const WarpAccessSpec& spec) {
  CoalescingStats stats;
  const std::uint32_t lanes_in_warp =
      std::min<std::uint32_t>(config.wg_threads(), arch.warp_size);

  std::unordered_set<std::uint64_t> loop_sectors;
  std::unordered_set<std::uint64_t> step_sectors;
  loop_sectors.reserve(256);

  // One coarsened element step = one iteration of the per-thread loop; for
  // each step every lane issues one access per stencil offset.
  for (std::uint32_t k = 0; k < config.coarsen_z; ++k) {
    for (std::uint32_t j = 0; j < config.coarsen_y; ++j) {
      for (std::uint32_t i = 0; i < config.coarsen_x; ++i) {
        for (const AccessOffset& offset : spec.offsets) {
          step_sectors.clear();
          for (std::uint32_t lane = 0; lane < lanes_in_warp; ++lane) {
            const auto [lx, ly, lz] = lane_coords(lane, config);
            // Blocked coarsening: thread t covers elements
            // [t*coarsen, t*coarsen + coarsen). Place the warp away from the
            // origin so negative stencil offsets stay in-bounds.
            const std::int64_t x = static_cast<std::int64_t>(
                                       (std::uint64_t{lx} + 64) * config.coarsen_x + i) +
                                   offset.dx;
            const std::int64_t y = static_cast<std::int64_t>(
                                       (std::uint64_t{ly} + 64) * config.coarsen_y + j) +
                                   offset.dy;
            const std::int64_t z = static_cast<std::int64_t>(
                                       (std::uint64_t{lz} + 4) * config.coarsen_z + k) +
                                   offset.dz;
            const std::uint64_t element =
                spec.column_major
                    ? static_cast<std::uint64_t>(x) * spec.pitch_x +
                          static_cast<std::uint64_t>(y) +
                          static_cast<std::uint64_t>(z) * spec.pitch_x * spec.pitch_y
                    : (static_cast<std::uint64_t>(z) * spec.pitch_y +
                       static_cast<std::uint64_t>(y)) *
                              spec.pitch_x +
                          static_cast<std::uint64_t>(x);
            const std::uint64_t byte = element * spec.element_bytes;
            const std::uint64_t sector = byte / arch.sector_bytes;
            // An element may straddle a sector boundary; account both.
            const std::uint64_t last_sector =
                (byte + spec.element_bytes - 1) / arch.sector_bytes;
            for (std::uint64_t s = sector; s <= last_sector; ++s) {
              step_sectors.insert(s);
              loop_sectors.insert(s);
            }
            stats.useful_bytes += spec.element_bytes;
          }
          stats.transactions += step_sectors.size();
          ++stats.steps;
        }
      }
    }
  }
  stats.dram_sectors = loop_sectors.size();
  return stats;
}

namespace {

/// The fast path requires: row pitch a whole number of sectors (so y/z loop
/// steps shift the sector pattern rigidly) and a "rectangular" stencil (the
/// set of dx offsets is identical for every (dy, dz) row, so each touched
/// row's footprint is one contiguous x-range).
bool fast_path_applicable(const GpuArch& arch, const WarpAccessSpec& spec) {
  if (spec.column_major) return false;  // handled by the exact path
  if ((spec.pitch_x * spec.element_bytes) % arch.sector_bytes != 0) return false;
  std::map<std::pair<std::int32_t, std::int32_t>, std::set<std::int32_t>> dx_by_row;
  for (const AccessOffset& o : spec.offsets) dx_by_row[{o.dy, o.dz}].insert(o.dx);
  const std::set<std::int32_t>* first = nullptr;
  for (const auto& [row, dxs] : dx_by_row) {
    if (!first) {
      first = &dxs;
    } else if (dxs != *first) {
      return false;
    }
  }
  if (first && first->size() > 1) {
    // Contiguity of the merged x-range requires stencil dx gaps not to
    // exceed the block width; our stencils are dense so gap == 1 suffices.
    std::int32_t prev = *first->begin();
    for (std::int32_t dx : *first) {
      if (dx - prev > 1) return false;
      prev = dx;
    }
  }
  return true;
}

}  // namespace

CoalescingStats analyze_warp_accesses_fast(const KernelConfig& config, const GpuArch& arch,
                                           const WarpAccessSpec& spec) {
  if (!fast_path_applicable(arch, spec)) {
    return analyze_warp_accesses(config, arch, spec);
  }
  CoalescingStats stats;
  const std::uint32_t lanes_in_warp =
      std::min<std::uint32_t>(config.wg_threads(), arch.warp_size);
  const std::uint64_t total_steps =
      std::uint64_t{config.coarsen_x} * config.coarsen_y * config.coarsen_z;
  stats.steps = total_steps * spec.offsets.size();
  stats.useful_bytes = std::uint64_t{lanes_in_warp} * stats.steps * spec.element_bytes;

  // Transactions: simulate only the first y/z step (j = k = 0); every other
  // (j, k) shifts all addresses by whole sectors.
  std::unordered_set<std::uint64_t> step_sectors;
  std::uint64_t transactions_first_row = 0;
  for (std::uint32_t i = 0; i < config.coarsen_x; ++i) {
    for (const AccessOffset& offset : spec.offsets) {
      step_sectors.clear();
      for (std::uint32_t lane = 0; lane < lanes_in_warp; ++lane) {
        const auto [lx, ly, lz] = lane_coords(lane, config);
        const std::int64_t x =
            static_cast<std::int64_t>((std::uint64_t{lx} + 64) * config.coarsen_x + i) +
            offset.dx;
        const std::int64_t y =
            static_cast<std::int64_t>((std::uint64_t{ly} + 64) * config.coarsen_y) +
            offset.dy;
        const std::int64_t z =
            static_cast<std::int64_t>((std::uint64_t{lz} + 4) * config.coarsen_z) +
            offset.dz;
        const std::uint64_t element =
            (static_cast<std::uint64_t>(z) * spec.pitch_y + static_cast<std::uint64_t>(y)) *
                spec.pitch_x +
            static_cast<std::uint64_t>(x);
        const std::uint64_t byte = element * spec.element_bytes;
        const std::uint64_t first = byte / arch.sector_bytes;
        const std::uint64_t last = (byte + spec.element_bytes - 1) / arch.sector_bytes;
        for (std::uint64_t s = first; s <= last; ++s) step_sectors.insert(s);
      }
      transactions_first_row += step_sectors.size();
    }
  }
  stats.transactions =
      transactions_first_row * config.coarsen_y * config.coarsen_z;

  // Loop-unique sectors: each touched (z, y) row holds one contiguous x-byte
  // range; rows are sector-aligned (pitch precondition), so counts add up.
  std::int32_t min_dx = 0, max_dx = 0, min_dy = 0, max_dy = 0, min_dz = 0, max_dz = 0;
  for (const AccessOffset& o : spec.offsets) {
    min_dx = std::min(min_dx, o.dx);
    max_dx = std::max(max_dx, o.dx);
    min_dy = std::min(min_dy, o.dy);
    max_dy = std::max(max_dy, o.dy);
    min_dz = std::min(min_dz, o.dz);
    max_dz = std::max(max_dz, o.dz);
  }
  std::set<std::uint32_t> lx_set, ly_set, lz_set;
  for (std::uint32_t lane = 0; lane < lanes_in_warp; ++lane) {
    const auto [lx, ly, lz] = lane_coords(lane, config);
    lx_set.insert(lx);
    ly_set.insert(ly);
    lz_set.insert(lz);
  }
  const std::int64_t x_lo =
      static_cast<std::int64_t>((std::uint64_t{*lx_set.begin()} + 64) * config.coarsen_x) +
      min_dx;
  const std::int64_t x_hi =
      static_cast<std::int64_t>((std::uint64_t{*lx_set.rbegin()} + 64) * config.coarsen_x +
                                config.coarsen_x - 1) +
      max_dx;

  std::set<std::int64_t> y_rows, z_slices;
  for (std::uint32_t ly : ly_set) {
    for (std::uint32_t j = 0; j < config.coarsen_y; ++j) {
      for (std::int32_t dy = min_dy; dy <= max_dy; ++dy) {
        y_rows.insert(static_cast<std::int64_t>((std::uint64_t{ly} + 64) * config.coarsen_y + j) + dy);
      }
    }
  }
  for (std::uint32_t lz : lz_set) {
    for (std::uint32_t k = 0; k < config.coarsen_z; ++k) {
      for (std::int32_t dz = min_dz; dz <= max_dz; ++dz) {
        z_slices.insert(static_cast<std::int64_t>((std::uint64_t{lz} + 4) * config.coarsen_z + k) + dz);
      }
    }
  }
  // Note: the dy range inserted above is the full [min_dy, max_dy] span even
  // though the stencil may be sparse in y; for rectangular stencils (the
  // fast-path precondition) the span *is* the set.
  std::uint64_t dram_sectors = 0;
  for (std::int64_t z : z_slices) {
    for (std::int64_t y : y_rows) {
      const std::uint64_t row_base =
          (static_cast<std::uint64_t>(z) * spec.pitch_y + static_cast<std::uint64_t>(y)) *
          spec.pitch_x;
      const std::uint64_t lo_byte = (row_base + static_cast<std::uint64_t>(x_lo)) *
                                    spec.element_bytes;
      const std::uint64_t hi_byte = (row_base + static_cast<std::uint64_t>(x_hi)) *
                                        spec.element_bytes +
                                    spec.element_bytes - 1;
      dram_sectors += hi_byte / arch.sector_bytes - lo_byte / arch.sector_bytes + 1;
    }
  }
  stats.dram_sectors = dram_sectors;
  return stats;
}

}  // namespace repro::simgpu
