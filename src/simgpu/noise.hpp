#pragma once
// Measurement noise model.
//
// The paper measures each configuration once during search ("to better
// represent real use cases and test the models for how well they handle
// noise", Section VI-A) and re-measures the final configuration 10 times.
// Real GPU timings vary with clock/boost state, OS scheduling and caching;
// we model this as a multiplicative lognormal jitter plus occasional
// positive outliers (preemption / clock-drop events).

#include "common/rng.hpp"

namespace repro::simgpu {

struct NoiseModel {
  double sigma = 0.015;          ///< lognormal sigma of the base jitter
  double outlier_probability = 0.02;
  double outlier_max_fraction = 0.10;  ///< outliers add U(0, this) of the runtime

  /// One noisy measurement of a kernel with true runtime `true_us`.
  [[nodiscard]] double sample(double true_us, repro::Rng& rng) const {
    double measured = true_us * rng.lognormal(0.0, sigma);
    if (rng.bernoulli(outlier_probability)) {
      measured *= 1.0 + rng.uniform(0.0, outlier_max_fraction);
    }
    return measured;
  }
};

}  // namespace repro::simgpu
