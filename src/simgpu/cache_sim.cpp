#include "simgpu/cache_sim.hpp"

#include <stdexcept>

namespace repro::simgpu {
namespace {

constexpr bool is_power_of_two(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

CacheSim::CacheSim(std::uint64_t capacity_bytes, std::uint32_t line_bytes, std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  if (line_bytes == 0 || ways == 0 || !is_power_of_two(line_bytes)) {
    throw std::invalid_argument("CacheSim: line size must be a power of two, ways > 0");
  }
  const std::uint64_t lines = capacity_bytes / line_bytes;
  if (lines == 0 || lines % ways != 0) {
    throw std::invalid_argument("CacheSim: capacity not divisible into sets");
  }
  const std::uint64_t sets = lines / ways;
  if (!is_power_of_two(sets)) {
    throw std::invalid_argument("CacheSim: set count must be a power of two");
  }
  num_sets_ = static_cast<std::uint32_t>(sets);
  lines_.resize(num_sets_ * std::size_t{ways_});
}

bool CacheSim::access(std::uint64_t address) {
  ++clock_;
  const std::uint64_t line_addr = address / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  const std::uint64_t tag = line_addr >> __builtin_ctz(num_sets_);
  Line* base = &lines_[std::size_t{set} * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = clock_;
      ++hits_;
      return true;
    }
  }
  // Miss: evict the first invalid line, otherwise the least recently used.
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.last_use < victim->last_use) victim = &line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

void CacheSim::reset() {
  for (auto& line : lines_) line = Line{};
  clock_ = hits_ = misses_ = 0;
}

}  // namespace repro::simgpu
