#pragma once
// GPU architecture descriptors for the simulated testbed.
//
// The paper evaluates on three NVIDIA GPUs spanning three architecture
// generations: GTX 980 (Maxwell, 2014), Titan V (Volta, 2017) and RTX Titan
// (Turing, 2019). We model each with published microarchitectural
// parameters; the differences that matter for the tuning landscape are SM
// count, threads-per-SM limits (Turing halves Maxwell/Volta's 2048),
// register file and shared-memory capacity, L2 size, and the
// bandwidth/compute balance.

#include <cstdint>
#include <string>
#include <vector>

namespace repro::simgpu {

struct GpuArch {
  std::string name;

  // Execution resources.
  std::uint32_t sm_count = 0;
  std::uint32_t warp_size = 32;
  std::uint32_t max_threads_per_sm = 2048;
  std::uint32_t max_wgs_per_sm = 32;          ///< resident work-group limit
  std::uint32_t max_wg_threads = 1024;        ///< per-launch work-group limit
  std::uint32_t regs_per_sm = 65536;          ///< 32-bit registers per SM
  std::uint32_t max_regs_per_thread = 255;
  std::uint32_t shared_per_sm = 98304;        ///< bytes
  std::uint32_t shared_per_wg_max = 49152;    ///< bytes

  // Throughput (peak).
  double fp32_gflops = 0.0;                   ///< peak single-precision GFLOP/s
  double dram_bw_gbps = 0.0;                  ///< peak DRAM bandwidth, GB/s
  double l2_bw_multiplier = 3.0;              ///< L2 bandwidth relative to DRAM
  double l1_bw_multiplier = 9.0;              ///< L1/LSU service rate vs DRAM
  double core_clock_ghz = 1.0;

  // Latency-hiding behaviour. Compute: occupancy (active warps / max warps)
  // needed to reach peak FLOP issue; below it, achieved throughput scales
  // ~linearly with occupancy * ILP. Memory: achieved bandwidth follows
  // Little's law from the number of outstanding sectors the resident warps
  // can keep in flight against `mem_latency_cycles` of DRAM latency.
  double occupancy_for_peak_compute = 0.55;
  double mem_latency_cycles = 400.0;
  double mem_parallelism = 4.0;  ///< outstanding sectors per warp

  // Memory system.
  std::uint64_t l2_bytes = 0;
  std::uint32_t sector_bytes = 32;            ///< DRAM transaction granularity

  // Fixed cost of a kernel launch (driver + dispatch), microseconds.
  double launch_overhead_us = 6.0;

  // Measurement noise (multiplicative lognormal sigma) observed on this
  // host; models clocks/OS jitter the paper compensates for with repeats.
  double noise_sigma = 0.015;

  [[nodiscard]] std::uint32_t max_warps_per_sm() const noexcept {
    return max_threads_per_sm / warp_size;
  }
};

/// NVIDIA GTX 980 (Maxwell GM204, 2014).
[[nodiscard]] GpuArch gtx980();
/// NVIDIA Titan V (Volta GV100, 2017).
[[nodiscard]] GpuArch titan_v();
/// NVIDIA Titan RTX (Turing TU102, 2019) — "RTX Titan" in the paper.
[[nodiscard]] GpuArch rtx_titan();

/// The paper's three-GPU testbed, oldest first.
[[nodiscard]] const std::vector<GpuArch>& testbed();

/// Lookup by name ("gtx980", "titanv", "rtxtitan"); throws std::out_of_range.
[[nodiscard]] const GpuArch& arch_by_name(const std::string& name);

}  // namespace repro::simgpu
