#pragma once
// Warp divergence / load-imbalance model.
//
// A warp retires only when its slowest lane finishes, so for kernels whose
// per-element work varies across the image (Mandelbrot's escape-iteration
// count), the effective compute cost of a warp is max-over-lanes rather than
// mean-over-lanes. The kernel supplies a normalized *work intensity field*
// w(x, y) (relative work per element at normalized image coordinates); we
// evaluate how the launch configuration maps lanes onto the field and return
// the ratio E[max lane work] / E[mean lane work] >= 1, averaged over a
// deterministic grid of warp placements.
//
// Thread coarsening *reduces* divergence (each lane averages a block of
// elements), while tall-skinny warp footprints on high-gradient fields
// increase it — exactly the coupling that makes Mandelbrot's landscape
// architecture- and configuration-sensitive.

#include <functional>

#include "simgpu/launch.hpp"

namespace repro::simgpu {

/// Relative per-element work at normalized coordinates in [0,1)^2.
using IntensityField = std::function<double(double x, double y)>;

/// E[max lane work] / E[mean lane work] for warp 0's lane footprint,
/// averaged over `placements_per_axis`^2 warp positions. Returns 1.0 when
/// `field` is empty. Deterministic (no RNG).
[[nodiscard]] double warp_divergence_factor(const KernelConfig& config,
                                            const GpuArch& arch,
                                            const GridExtent& extent,
                                            const IntensityField& field,
                                            unsigned placements_per_axis = 6);

}  // namespace repro::simgpu
