#include "simgpu/divergence.hpp"

#include <algorithm>
#include <cmath>

namespace repro::simgpu {

double warp_divergence_factor(const KernelConfig& config, const GpuArch& arch,
                              const GridExtent& extent, const IntensityField& field,
                              unsigned placements_per_axis) {
  if (!field) return 1.0;
  const std::uint32_t lanes_in_warp =
      std::min<std::uint32_t>(config.wg_threads(), arch.warp_size);
  if (lanes_in_warp <= 1) return 1.0;

  const double ext_x = static_cast<double>(extent.x);
  const double ext_y = static_cast<double>(std::max<std::uint64_t>(extent.y, 1));

  double sum_max = 0.0;
  double sum_mean = 0.0;
  for (unsigned py = 0; py < placements_per_axis; ++py) {
    for (unsigned px = 0; px < placements_per_axis; ++px) {
      // Warp anchor in element space, spread across the image interior.
      const double anchor_x =
          (static_cast<double>(px) + 0.5) / placements_per_axis * ext_x * 0.9;
      const double anchor_y =
          (static_cast<double>(py) + 0.5) / placements_per_axis * ext_y * 0.9;
      double warp_max = 0.0;
      double warp_sum = 0.0;
      for (std::uint32_t lane = 0; lane < lanes_in_warp; ++lane) {
        const auto [lx, ly, lz] = lane_coords(lane, config);
        (void)lz;  // the intensity field is two-dimensional
        // Lane's coarsened block: average the field over a 2x2 sample of it,
        // modelling the intra-thread serialization of the block's elements.
        double lane_work = 0.0;
        for (int sy = 0; sy < 2; ++sy) {
          for (int sx = 0; sx < 2; ++sx) {
            const double ex = anchor_x +
                              (static_cast<double>(lx) + (sx + 0.5) / 2.0) *
                                  config.coarsen_x;
            const double ey = anchor_y +
                              (static_cast<double>(ly) + (sy + 0.5) / 2.0) *
                                  config.coarsen_y;
            const double nx = std::clamp(ex / ext_x, 0.0, 0.999999);
            const double ny = std::clamp(ey / ext_y, 0.0, 0.999999);
            lane_work += std::max(0.0, field(nx, ny));
          }
        }
        lane_work *= 0.25;
        warp_max = std::max(warp_max, lane_work);
        warp_sum += lane_work;
      }
      sum_max += warp_max;
      sum_mean += warp_sum / lanes_in_warp;
    }
  }
  if (sum_mean <= 0.0) return 1.0;
  return std::max(1.0, sum_max / sum_mean);
}

}  // namespace repro::simgpu
