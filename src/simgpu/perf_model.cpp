#include "simgpu/perf_model.hpp"

#include <algorithm>
#include <atomic>
#include "common/rng.hpp"
#include <cmath>
#include <limits>
#include <vector>

namespace repro::simgpu {
namespace {

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

PerfModel::PerfModel(KernelCostSpec spec) : spec_(std::move(spec)) {}

KernelConfig PerfModel::effective_config(const KernelConfig& config) const noexcept {
  return clamp_to_extent(config, spec_.extent);
}

PerfBreakdown PerfModel::evaluate(const GpuArch& arch, const KernelConfig& config) const {
  PerfBreakdown out;
  if (!config.in_range()) {
    out.invalid_reason = "parameter out of range";
    return out;
  }
  if (!config.satisfies_wg_constraint()) {
    // The kernels require wg_x*wg_y*wg_z <= 256 (paper Section V-C); larger
    // work-groups fail to build/launch, which is what SMBO methods observe.
    out.invalid_reason = "work-group constraint violated";
    return out;
  }

  const KernelConfig eff = effective_config(config);
  const LaunchGeometry geometry = derive_geometry(spec_.extent, eff, arch);
  out.total_wgs = geometry.total_wgs();
  out.lane_efficiency = geometry.lane_efficiency;

  // --- Register and shared-memory usage --------------------------------
  const std::uint64_t unrolled =
      std::min<std::uint64_t>(eff.coarsening(), spec_.unroll_cap);
  const double regs_raw =
      spec_.regs_base + spec_.regs_per_extra_element * static_cast<double>(unrolled - 1);
  out.regs_per_thread = static_cast<std::uint32_t>(
      std::min<double>(regs_raw, arch.max_regs_per_thread));

  std::uint64_t shared_bytes = 0;
  bool tiled = false;
  if (spec_.shared_tiling_available) {
    const std::uint64_t tile_w =
        std::uint64_t{eff.wg_x} * eff.coarsen_x + 2ull * spec_.stencil_radius;
    const std::uint64_t tile_h =
        std::uint64_t{eff.wg_y} * eff.coarsen_y + 2ull * spec_.stencil_radius;
    const std::uint64_t tile_bytes =
        tile_w * tile_h * spec_.element_bytes * spec_.tiled_buffers;
    if (tile_bytes <= arch.shared_per_wg_max) {
      tiled = true;
      shared_bytes = tile_bytes;
    }
  }
  out.used_shared_tiling = tiled;
  out.shared_bytes_per_wg = shared_bytes;

  // --- Occupancy --------------------------------------------------------
  const OccupancyResult occ =
      compute_occupancy(arch, geometry, out.regs_per_thread, shared_bytes);
  if (!occ.launchable) {
    out.invalid_reason = "not launchable (per-SM resources)";
    return out;
  }
  out.occupancy = occ.occupancy;
  out.occupancy_limiter = occ.limiter;

  // --- Divergence -------------------------------------------------------
  out.divergence = warp_divergence_factor(eff, arch, spec_.extent, spec_.intensity);

  // --- Work totals ------------------------------------------------------
  const double elements = static_cast<double>(spec_.extent.elements());
  const std::uint64_t total_warps = geometry.total_warps();

  // Fraction of resident lanes doing useful work: partial warps inside the
  // work-group plus edge work-groups that overhang the grid.
  const double grid_eff =
      static_cast<double>(geometry.total_threads()) /
      (static_cast<double>(geometry.total_wgs()) * geometry.wg_threads);
  const double util_lanes = grid_eff * geometry.lane_efficiency;

  // --- Memory traffic ---------------------------------------------------
  double load_dram_bytes = 0.0;
  double transaction_bytes = 0.0;
  double l2_hit_accum = 0.0;
  double l2_hit_weight = 0.0;

  // L2 residency: does one full wave's unique footprint fit in L2?
  const std::uint64_t wave_wgs =
      std::uint64_t{std::max<std::uint32_t>(occ.active_wgs_per_sm, 1)} * arch.sm_count;

  if (tiled) {
    const std::uint64_t tile_w =
        std::uint64_t{eff.wg_x} * eff.coarsen_x + 2ull * spec_.stencil_radius;
    const std::uint64_t tile_h =
        std::uint64_t{eff.wg_y} * eff.coarsen_y + 2ull * spec_.stencil_radius;
    const double tile_bytes_d = static_cast<double>(
        tile_w * tile_h * spec_.element_bytes * spec_.tiled_buffers);
    const double interior_bytes = static_cast<double>(
        std::uint64_t{eff.wg_x} * eff.coarsen_x * eff.wg_y * eff.coarsen_y *
        spec_.element_bytes * spec_.tiled_buffers);
    const double redundancy = std::max(0.0, 1.0 - interior_bytes / tile_bytes_d);
    const double wave_bytes = interior_bytes * static_cast<double>(wave_wgs);
    const double residency =
        std::min(1.0, static_cast<double>(arch.l2_bytes) / std::max(wave_bytes, 1.0));
    const double l2_hit = redundancy * residency;
    l2_hit_accum += l2_hit;
    l2_hit_weight += 1.0;
    const double total_tile_bytes =
        tile_bytes_d * static_cast<double>(geometry.total_wgs());
    load_dram_bytes += total_tile_bytes * (1.0 - l2_hit);
    // Tile loads are fully coalesced rows: transactions ~ bytes moved.
    transaction_bytes += total_tile_bytes;
  } else {
    for (const WarpAccessSpec& pattern : spec_.loads) {
      const CoalescingStats stats = analyze_warp_accesses_fast(eff, arch, pattern);
      const double warp_dram_bytes =
          static_cast<double>(stats.dram_sectors) * arch.sector_bytes;
      const double interior_bytes =
          static_cast<double>(std::min<std::uint32_t>(geometry.wg_threads,
                                                      arch.warp_size)) *
          static_cast<double>(eff.coarsening()) * spec_.element_bytes;
      const double redundancy =
          std::max(0.0, 1.0 - interior_bytes / std::max(warp_dram_bytes, 1.0));
      const double wave_bytes = interior_bytes *
                                static_cast<double>(wave_wgs) * geometry.warps_per_wg;
      const double residency =
          std::min(1.0, static_cast<double>(arch.l2_bytes) / std::max(wave_bytes, 1.0));
      const double l2_hit = redundancy * residency;
      l2_hit_accum += l2_hit;
      l2_hit_weight += 1.0;
      load_dram_bytes += warp_dram_bytes * static_cast<double>(total_warps) * (1.0 - l2_hit);
      transaction_bytes += static_cast<double>(stats.transactions) * arch.sector_bytes *
                           static_cast<double>(total_warps);
    }
  }

  double store_dram_bytes = 0.0;
  for (const WarpAccessSpec& pattern : spec_.stores) {
    const CoalescingStats stats = analyze_warp_accesses_fast(eff, arch, pattern);
    store_dram_bytes += static_cast<double>(stats.dram_sectors) * arch.sector_bytes *
                        static_cast<double>(total_warps);
    transaction_bytes += static_cast<double>(stats.transactions) * arch.sector_bytes *
                         static_cast<double>(total_warps);
  }
  out.l2_hit_rate = l2_hit_weight > 0.0 ? l2_hit_accum / l2_hit_weight : 0.0;

  // --- Roofline ---------------------------------------------------------
  // Compute issue: scales with occupancy * ILP up to the peak threshold.
  const double compute_eff = std::min(
      1.0, occ.occupancy * spec_.ilp / (2.0 * arch.occupancy_for_peak_compute));
  const double achieved_gflops =
      std::max(1e-3, arch.fp32_gflops * compute_eff * std::max(util_lanes, 0.05));
  const double total_flops = elements * spec_.flops_per_element * out.divergence;
  out.compute_us = total_flops / (achieved_gflops * 1e3);

  // DRAM bandwidth via Little's law on outstanding sectors.
  const double aw = static_cast<double>(occ.active_warps_per_sm);
  const double bw_little = arch.sm_count * aw * arch.mem_parallelism *
                           arch.sector_bytes * arch.core_clock_ghz /
                           arch.mem_latency_cycles;  // GB/s
  const double achieved_dram = std::max(1.0, std::min(arch.dram_bw_gbps, bw_little));
  out.dram_us = (load_dram_bytes + store_dram_bytes) / (achieved_dram * 1e3);

  // Transaction/LSU service: re-touched lines hit L1, so the issue-side
  // cost of strided (coarsened) access patterns is paid at L1 throughput,
  // far above DRAM bandwidth; it only binds for heavily scattered warps.
  const double l1_bw = arch.dram_bw_gbps * arch.l1_bw_multiplier;
  const double bw_little_l1 = bw_little * 6.0;
  const double achieved_l1 = std::max(1.0, std::min(l1_bw, bw_little_l1));
  out.transaction_us = transaction_bytes / (achieved_l1 * 1e3);

  double kernel_us = std::max({out.compute_us, out.dram_us, out.transaction_us});

  // Shared-memory staging adds a barrier + store/load pass per tile.
  if (tiled) kernel_us *= 1.06;

  // --- Wave quantization / device fill ----------------------------------
  const std::uint64_t slots = wave_wgs;
  const std::uint64_t waves = ceil_div(geometry.total_wgs(), std::max<std::uint64_t>(slots, 1));
  out.utilization = static_cast<double>(geometry.total_wgs()) /
                    (static_cast<double>(waves) * static_cast<double>(slots));
  kernel_us /= std::max(out.utilization, 1e-3);

  // Codegen lottery: stable per-(kernel, arch, config) perturbation.
  if (spec_.codegen_lottery_sigma > 0.0) {
    std::uint64_t h = repro::seed_from_string(spec_.name) ^
                      (repro::seed_from_string(arch.name) * 0x9e3779b97f4a7c15ULL);
    h = repro::seed_combine(h, (std::uint64_t{eff.coarsen_x} << 40) ^
                                   (std::uint64_t{eff.coarsen_y} << 32) ^
                                   (std::uint64_t{eff.coarsen_z} << 24) ^
                                   (std::uint64_t{eff.wg_x} << 16) ^
                                   (std::uint64_t{eff.wg_y} << 8) ^ eff.wg_z);
    // Hash bits -> approximately standard normal (Box-Muller).
    const double u1 =
        (static_cast<double>(h >> 40) + 0.5) / static_cast<double>(1ull << 24);
    const double u2 =
        (static_cast<double>(h & 0xffffff) + 0.5) / static_cast<double>(1ull << 24);
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    kernel_us *= std::exp(spec_.codegen_lottery_sigma * z);
  }

  // Pipeline drain floor: even a trivial kernel costs a couple of
  // microseconds of scheduling and memory latency.
  const double floor_us = 1.5 + arch.mem_latency_cycles / (arch.core_clock_ghz * 1e3);

  out.time_us = arch.launch_overhead_us + std::max(kernel_us, floor_us);
  out.valid = true;
  return out;
}

// ---------------------------------------------------------------------------

struct CachedPerfModel::Impl {
  // Memo slots hold a pure function of the index; racing stores write
  // identical bits (no accumulation), so reads are deterministic.
  std::vector<std::atomic<float>> table;  // NOLINT(reprolint-nondet-reduction)
  explicit Impl(std::size_t n) : table(n) {
    for (auto& slot : table) slot.store(kUnset, std::memory_order_relaxed);
  }
  static constexpr float kUnset = -2.0f;
  static constexpr float kInvalid = -1.0f;
};

CachedPerfModel::CachedPerfModel(const PerfModel& model, const GpuArch& arch)
    : model_(model), arch_(arch), impl_(new Impl(table_size())) {}

CachedPerfModel::~CachedPerfModel() { delete impl_; }

std::size_t CachedPerfModel::pack(const KernelConfig& config) noexcept {
  return (config.coarsen_x - 1) + 16ull * (config.coarsen_y - 1) +
         256ull * (config.coarsen_z - 1) +
         4096ull * ((config.wg_x - 1) + 8ull * (config.wg_y - 1) + 64ull * (config.wg_z - 1));
}

KernelConfig CachedPerfModel::unpack(std::size_t index) noexcept {
  KernelConfig config;
  config.coarsen_x = static_cast<std::uint32_t>(index % 16) + 1;
  config.coarsen_y = static_cast<std::uint32_t>((index / 16) % 16) + 1;
  config.coarsen_z = static_cast<std::uint32_t>((index / 256) % 16) + 1;
  config.wg_x = static_cast<std::uint32_t>((index / 4096) % 8) + 1;
  config.wg_y = static_cast<std::uint32_t>((index / 32768) % 8) + 1;
  config.wg_z = static_cast<std::uint32_t>((index / 262144) % 8) + 1;
  return config;
}

double CachedPerfModel::time_us(const KernelConfig& config) const {
  // Validity is a property of the *requested* configuration: a work-group
  // declared as 8x8x8 fails to build regardless of how the launch would
  // clamp it. Only valid requests proceed to the clamped equivalence class.
  if (!config.in_range() || !config.satisfies_wg_constraint()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Configurations sharing an effective (clamped) form share one slot, so
  // the expensive evaluation runs once per equivalence class.
  const KernelConfig eff = model_.effective_config(config);
  const std::size_t index = pack(eff);
  float cached = impl_->table[index].load(std::memory_order_relaxed);
  if (cached == Impl::kUnset) {
    const PerfBreakdown breakdown = model_.evaluate(arch_, eff);
    cached = breakdown.valid ? static_cast<float>(breakdown.time_us) : Impl::kInvalid;
    impl_->table[index].store(cached, std::memory_order_relaxed);
  }
  if (cached == Impl::kInvalid) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(cached);
}

}  // namespace repro::simgpu
