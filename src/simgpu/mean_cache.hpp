#pragma once
// Sharded, mutex-striped memo table for deterministic per-configuration
// quantities — concretely, the summed-over-passes noiseless model mean a
// BenchmarkContext computes in true_time_us. One instance is shared by every
// evaluator (and every run_study worker) on the same context, so a
// configuration's pass-summation loop runs once per context instead of once
// per evaluator cache.
//
// Striping: keys hash onto independent shards, each an unordered_map behind
// its own mutex, so concurrent lookups from study workers contend only when
// they collide on a shard. Values are deterministic functions of the key;
// a racing duplicate store writes the same bits and is harmless. NaN is a
// legal value (it memoizes "invalid configuration").

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace repro::simgpu {

class MeanCache {
 public:
  /// `shards` is rounded up to a power of two (default 16).
  explicit MeanCache(std::size_t shards = 16);
  ~MeanCache();
  MeanCache(const MeanCache&) = delete;
  MeanCache& operator=(const MeanCache&) = delete;

  /// True (and `value` set) when `key` is memoized.
  bool lookup(std::uint64_t key, double& value) const;

  /// Memoize `value` for `key`; later stores of the same key keep the first
  /// value (all callers compute the same bits, so which one lands is moot).
  void store(std::uint64_t key, double value);

  /// Total entries across shards (snapshot; shards are locked one by one).
  [[nodiscard]] std::size_t size() const;

  /// Hit-rate counters for the perf report.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;
  [[nodiscard]] Shard& shard_for(std::uint64_t key) const noexcept;

  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_mask_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace repro::simgpu
