#pragma once
// Sharded, mutex-striped memo table for deterministic per-configuration
// quantities — concretely, the summed-over-passes noiseless model mean a
// BenchmarkContext computes in true_time_us. One instance is shared by every
// evaluator (and every run_study worker) on the same context, so a
// configuration's pass-summation loop runs once per context instead of once
// per evaluator cache.
//
// Striping: keys hash onto independent shards, each an unordered_map behind
// its own mutex, so concurrent lookups from study workers contend only when
// they collide on a shard. Values are deterministic functions of the key;
// a racing duplicate store writes the same bits and is harmless. NaN is a
// legal value (it memoizes "invalid configuration").
//
// Capacity: unbounded by default (the historical behaviour). set_capacity
// installs an approximate total cap, enforced per shard in FIFO insertion
// order. Evicting a memoized mean is always correct — the value is
// recomputed bit-identically on the next miss — but heavy churn turns the
// memo table into pure overhead, so the cache warns once when evictions
// exceed 10% of insertions. run_study derives a capacity from the study's
// budget instead of letting the table grow with unrelated history.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace repro::simgpu {

class MeanCache {
 public:
  /// `shards` is rounded up to a power of two (default 16).
  explicit MeanCache(std::size_t shards = 16);
  ~MeanCache();
  MeanCache(const MeanCache&) = delete;
  MeanCache& operator=(const MeanCache&) = delete;

  /// True (and `value` set) when `key` is memoized.
  bool lookup(std::uint64_t key, double& value) const;

  /// Memoize `value` for `key`; later stores of the same key keep the first
  /// value (all callers compute the same bits, so which one lands is moot).
  void store(std::uint64_t key, double value);

  /// Total entries across shards (snapshot; shards are locked one by one).
  [[nodiscard]] std::size_t size() const;

  /// Hit-rate counters for the perf report.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return lookups_.load(std::memory_order_relaxed);
  }

  /// Approximate total entry cap, split evenly across shards and enforced
  /// in per-shard FIFO insertion order (0 = unbounded, the default). Does
  /// not shrink already-full shards retroactively; the cap applies from the
  /// next store.
  void set_capacity(std::size_t capacity) noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Churn accounting (insertions exclude duplicate-key stores).
  [[nodiscard]] std::uint64_t insertions() const noexcept {
    return insertions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;
  [[nodiscard]] Shard& shard_for(std::uint64_t key) const noexcept;
  [[nodiscard]] std::size_t per_shard_capacity() const noexcept;

  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::size_t> capacity_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<bool> churn_warned_{false};
};

}  // namespace repro::simgpu
