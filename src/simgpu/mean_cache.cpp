#include "simgpu/mean_cache.hpp"

#include <mutex>
#include <unordered_map>

#include "common/thread_annotations.hpp"

namespace repro::simgpu {

struct MeanCache::Shard {
  mutable repro::Mutex mutex;
  std::unordered_map<std::uint64_t, double> entries GUARDED_BY(mutex);
};

namespace {

/// splitmix64 finalizer: decorrelates the shard index from low key bits
/// (config encodings are dense in the low bits).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

MeanCache::MeanCache(std::size_t shards) {
  std::size_t n = 1;
  while (n < shards) n <<= 1;
  shards_ = std::make_unique<Shard[]>(n);
  shard_mask_ = n - 1;
}

MeanCache::~MeanCache() = default;

MeanCache::Shard& MeanCache::shard_for(std::uint64_t key) const noexcept {
  return shards_[mix(key) & shard_mask_];
}

bool MeanCache::lookup(std::uint64_t key, double& value) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(key);
  repro::MutexLock lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  value = it->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MeanCache::store(std::uint64_t key, double value) {
  Shard& shard = shard_for(key);
  repro::MutexLock lock(shard.mutex);
  shard.entries.emplace(key, value);
}

std::size_t MeanCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    repro::MutexLock lock(shards_[i].mutex);
    total += shards_[i].entries.size();
  }
  return total;
}

}  // namespace repro::simgpu
