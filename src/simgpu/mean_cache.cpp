#include "simgpu/mean_cache.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/log.hpp"
#include "common/thread_annotations.hpp"

namespace repro::simgpu {

struct MeanCache::Shard {
  mutable repro::Mutex mutex;
  std::unordered_map<std::uint64_t, double> entries GUARDED_BY(mutex);
  std::deque<std::uint64_t> order GUARDED_BY(mutex);  ///< FIFO for eviction
};

namespace {

/// splitmix64 finalizer: decorrelates the shard index from low key bits
/// (config encodings are dense in the low bits).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

MeanCache::MeanCache(std::size_t shards) {
  std::size_t n = 1;
  while (n < shards) n <<= 1;
  shards_ = std::make_unique<Shard[]>(n);
  shard_mask_ = n - 1;
}

MeanCache::~MeanCache() = default;

MeanCache::Shard& MeanCache::shard_for(std::uint64_t key) const noexcept {
  return shards_[mix(key) & shard_mask_];
}

bool MeanCache::lookup(std::uint64_t key, double& value) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(key);
  repro::MutexLock lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  value = it->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t MeanCache::per_shard_capacity() const noexcept {
  const std::size_t total = capacity_.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  const std::size_t shards = shard_mask_ + 1;
  return std::max<std::size_t>(1, total / shards);
}

void MeanCache::set_capacity(std::size_t capacity) noexcept {
  capacity_.store(capacity, std::memory_order_relaxed);
}

void MeanCache::store(std::uint64_t key, double value) {
  std::uint64_t evicted = 0;
  {
    Shard& shard = shard_for(key);
    repro::MutexLock lock(shard.mutex);
    const std::size_t cap = per_shard_capacity();
    if (cap > 0) {
      while (shard.entries.size() >= cap && !shard.order.empty()) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        ++evicted;
      }
    }
    if (!shard.entries.emplace(key, value).second) return;  // duplicate store
    shard.order.push_back(key);
  }
  const std::uint64_t inserts =
      insertions_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t evicts =
      evictions_.fetch_add(evicted, std::memory_order_relaxed) + evicted;
  // >10% churn means the table is undersized for this workload: each
  // evicted mean is a pass-summation loop some evaluator will redo.
  if (evicts * 10 > inserts && inserts >= 1000 &&
      !churn_warned_.exchange(true, std::memory_order_relaxed)) {
    repro::log_warn("mean cache churn: {} evictions over {} insertions "
                    "(capacity {}); memoization is thrashing",
                    evicts, inserts, capacity_.load(std::memory_order_relaxed));
  }
}

std::size_t MeanCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    repro::MutexLock lock(shards_[i].mutex);
    total += shards_[i].entries.size();
  }
  return total;
}

}  // namespace repro::simgpu
