#include "simgpu/device.hpp"

namespace repro::simgpu {

void Device::run(const GridExtent& extent, const KernelConfig& config_in,
                 const KernelFn& kernel, TraceRecorder* trace) const {
  if (!config_in.in_range()) {
    throw std::invalid_argument("Device::run: configuration out of range");
  }
  if (!config_in.satisfies_wg_constraint()) {
    throw std::invalid_argument("Device::run: work-group constraint violated");
  }
  const KernelConfig config = clamp_to_extent(config_in, extent);
  const LaunchGeometry geometry = derive_geometry(extent, config, arch_);
  const std::uint64_t total_wgs = geometry.total_wgs();

  auto run_wg = [&](std::uint64_t wg) {
    const std::uint64_t wgx = wg % geometry.wgs_x;
    const std::uint64_t wgy = (wg / geometry.wgs_x) % geometry.wgs_y;
    const std::uint64_t wgz = wg / (geometry.wgs_x * geometry.wgs_y);
    for (std::uint32_t lane = 0; lane < geometry.wg_threads; ++lane) {
      const auto [lx, ly, lz] = lane_coords(lane, config);
      ThreadCtx ctx;
      ctx.gx = wgx * config.wg_x + lx;
      ctx.gy = wgy * config.wg_y + ly;
      ctx.gz = wgz * config.wg_z + lz;
      if (ctx.gx >= geometry.threads_x || ctx.gy >= geometry.threads_y ||
          ctx.gz >= geometry.threads_z) {
        continue;  // padding thread outside the grid
      }
      ctx.lane = lane;
      ctx.wg_linear = wg;
      ctx.warp = wg * geometry.warps_per_wg + lane / arch_.warp_size;
      ctx.trace = trace;
      kernel(ctx);
    }
  };

  if (trace != nullptr) {
    for (std::uint64_t wg = 0; wg < total_wgs; ++wg) run_wg(wg);
  } else {
    repro::parallel_for(0, total_wgs, [&](std::size_t wg) { run_wg(wg); });
  }
}

}  // namespace repro::simgpu
