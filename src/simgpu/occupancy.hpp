#pragma once
// SM occupancy calculator, following the CUDA occupancy rules: the number of
// simultaneously resident work-groups per SM is bounded by the thread limit,
// the work-group slot limit, the register file, and shared memory. Thread
// and register allocation happen at warp granularity.

#include <cstdint>

#include "simgpu/arch.hpp"
#include "simgpu/launch.hpp"

namespace repro::simgpu {

struct OccupancyResult {
  std::uint32_t active_wgs_per_sm = 0;
  std::uint32_t active_warps_per_sm = 0;
  double occupancy = 0.0;          ///< active warps / max warps per SM
  /// Which resource bound the residency ("threads", "wg_slots", "registers",
  /// "shared", or "none" when the launch itself fits entirely).
  const char* limiter = "none";
  bool launchable = true;          ///< false if a single wg exceeds a hard limit
};

/// Compute occupancy for a work-group shape using `regs_per_thread` 32-bit
/// registers per thread and `shared_bytes_per_wg` bytes of shared memory.
[[nodiscard]] OccupancyResult compute_occupancy(const GpuArch& arch,
                                                const LaunchGeometry& geometry,
                                                std::uint32_t regs_per_thread,
                                                std::uint64_t shared_bytes_per_wg);

}  // namespace repro::simgpu
