#pragma once
// Analytical GPU kernel performance model.
//
// Combines the sub-models into a runtime estimate for (kernel, architecture,
// launch configuration):
//
//   geometry   -> threads / work-groups / warps / partial-warp waste
//   occupancy  -> resident warps per SM from threads/slots/registers/shared
//   coalescing -> DRAM sectors + LSU transactions per warp (coalescing.hpp)
//   L2 reuse   -> inter-work-group halo reuse gated by L2 residency
//   divergence -> warp max/mean work ratio from the kernel intensity field
//   roofline   -> time = max(compute, DRAM, transaction) with Little's-law
//                 bandwidth, occupancy-scaled issue rate, wave quantization
//                 and launch overhead
//
// The model is noiseless and deterministic; NoiseModel adds measurement
// jitter on top. It is intentionally mechanistic rather than calibrated:
// the paper's study needs a *landscape* with the right structure (occupancy
// cliffs, coalescing steps, shared-memory capacity knees, invalid regions,
// heavy tails), not absolute microsecond fidelity.

#include <cstdint>
#include <string>
#include <vector>

#include "simgpu/arch.hpp"
#include "simgpu/coalescing.hpp"
#include "simgpu/divergence.hpp"
#include "simgpu/launch.hpp"
#include "simgpu/occupancy.hpp"

namespace repro::simgpu {

/// Static cost description of one kernel, provided by the kernel author
/// (see src/imagecl/kernels/*). All per-element quantities refer to one
/// output element.
struct KernelCostSpec {
  std::string name;
  GridExtent extent;

  double flops_per_element = 1.0;
  std::uint32_t element_bytes = 4;

  /// Global-memory access patterns when no shared-memory tiling is used.
  std::vector<WarpAccessSpec> loads;
  std::vector<WarpAccessSpec> stores;

  /// Stencil kernels may stage a tile in shared memory: loads collapse to
  /// the unique tile footprint when the tile fits in shared memory.
  bool shared_tiling_available = false;
  std::uint32_t stencil_radius = 0;
  std::uint32_t tiled_buffers = 1;  ///< input buffers staged per tile

  /// Register model: base registers plus growth with the (effective)
  /// coarsening unroll, capped at `unroll_cap` unrolled elements.
  std::uint32_t regs_base = 16;
  double regs_per_extra_element = 2.0;
  std::uint32_t unroll_cap = 32;

  double ilp = 2.0;  ///< instruction-level parallelism within a thread

  /// Optional relative work-per-element field (divergence); empty => uniform.
  IntensityField intensity;

  /// "Codegen lottery": deterministic per-configuration multiplicative
  /// perturbation, exp(sigma * z(config)) with z a hash-derived standard
  /// normal. Models the idiosyncratic register-allocation / instruction-
  /// scheduling effects real compilers attach to individual configurations —
  /// the high-frequency landscape component surrogate models cannot learn.
  /// Unlike measurement noise it is stable across repeated measurements.
  double codegen_lottery_sigma = 0.05;
};

struct PerfBreakdown {
  bool valid = false;
  const char* invalid_reason = "";

  double time_us = 0.0;         ///< total, including launch overhead
  double compute_us = 0.0;      ///< roofline components (pre-quantization)
  double dram_us = 0.0;
  double transaction_us = 0.0;

  double occupancy = 0.0;
  const char* occupancy_limiter = "none";
  double divergence = 1.0;
  double utilization = 1.0;     ///< wave-quantization / device-fill factor
  double lane_efficiency = 1.0;
  double l2_hit_rate = 0.0;
  bool used_shared_tiling = false;
  std::uint32_t regs_per_thread = 0;
  std::uint64_t shared_bytes_per_wg = 0;
  std::uint64_t total_wgs = 0;
};

class PerfModel {
 public:
  explicit PerfModel(KernelCostSpec spec);

  [[nodiscard]] const KernelCostSpec& spec() const noexcept { return spec_; }

  /// clamp_to_extent for this kernel's grid: coarsening factors cannot
  /// exceed the extent and work-group dims cannot exceed the thread grid.
  /// Work, memory traffic and register usage all follow the effective
  /// configuration; the extents are known when the kernel is specialized,
  /// so the generated code is too.
  [[nodiscard]] KernelConfig effective_config(const KernelConfig& config) const noexcept;

  /// Noiseless runtime estimate with full component breakdown.
  [[nodiscard]] PerfBreakdown evaluate(const GpuArch& arch, const KernelConfig& config) const;

 private:
  KernelCostSpec spec_;
};

/// Thread-safe memoizing wrapper over PerfModel::evaluate for one
/// architecture: a flat table over the whole 16^3 * 8^3 configuration space
/// storing the noiseless runtime (microseconds; negative = invalid).
/// Lazily filled; concurrent duplicate fills are benign (same value).
class CachedPerfModel {
 public:
  CachedPerfModel(const PerfModel& model, const GpuArch& arch);
  ~CachedPerfModel();
  CachedPerfModel(const CachedPerfModel&) = delete;
  CachedPerfModel& operator=(const CachedPerfModel&) = delete;

  /// Noiseless runtime in microseconds; NaN when the configuration is
  /// invalid (out of range, violates the work-group constraint, or not
  /// launchable on this architecture).
  [[nodiscard]] double time_us(const KernelConfig& config) const;

  [[nodiscard]] const GpuArch& arch() const noexcept { return arch_; }
  [[nodiscard]] const PerfModel& model() const noexcept { return model_; }

  /// Pack a (range-checked) configuration into its table index.
  [[nodiscard]] static std::size_t pack(const KernelConfig& config) noexcept;
  [[nodiscard]] static KernelConfig unpack(std::size_t index) noexcept;
  [[nodiscard]] static constexpr std::size_t table_size() noexcept {
    return 16ull * 16 * 16 * 8 * 8 * 8;
  }

 private:
  const PerfModel& model_;
  GpuArch arch_;
  struct Impl;
  Impl* impl_;
};

}  // namespace repro::simgpu
