#pragma once
// Minimal leveled logger. Harness code logs progress to stderr so bench
// binaries can keep stdout clean for the tables/series they print.

#include <string>
#include <string_view>

#include "common/fmt.hpp"

namespace repro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Thread-safe write of one formatted line to stderr.
void log_message(LogLevel level, std::string_view message);

template <typename... Args>
void log_debug(std::string_view format, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, fmt(format, std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(std::string_view format, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, fmt(format, std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(std::string_view format, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, fmt(format, std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(std::string_view format, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, fmt(format, std::forward<Args>(args)...));
}

}  // namespace repro
