#pragma once
// Clang thread-safety annotation shim + annotated mutex wrappers.
//
// Under clang, `-Wthread-safety -Werror=thread-safety` (enabled by the
// build when the compiler supports it) statically proves that every access
// to a GUARDED_BY member happens with its capability held — lock-handoff
// bugs become compile errors instead of TSan reports. Under GCC the macros
// expand to nothing and the wrappers are zero-cost shims over std::mutex,
// so the annotated tree builds everywhere.
//
// Usage pattern (see common/thread_pool.hpp for a full example):
//
//   mutable repro::Mutex mutex_;
//   std::deque<Task> queue_ GUARDED_BY(mutex_);
//   ...
//   repro::MutexLock lock(mutex_);           // RAII, SCOPED_CAPABILITY
//   while (queue_.empty()) cv_.wait(lock.native());
//
// Condition variables: std::condition_variable needs the underlying
// std::unique_lock — MutexLock::native() exposes it. Write wait loops as
// plain `while (!pred) cv_.wait(lock.native());` in the locking function's
// own scope (not a lambda predicate) so the analysis can see the guarded
// reads under the held capability.

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define REPRO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REPRO_THREAD_ANNOTATION(x)  // GCC/MSVC: annotations are documentation
#endif

#define CAPABILITY(x) REPRO_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY REPRO_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) REPRO_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) REPRO_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) REPRO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) REPRO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) REPRO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) REPRO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) REPRO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) REPRO_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) REPRO_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS REPRO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace repro {

/// std::mutex with the `capability` attribute so GUARDED_BY(mutex_) members
/// participate in clang's analysis. Same size and cost as std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Underlying std::mutex, for condition-variable interop only.
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII scoped lock over repro::Mutex (std::lock_guard / std::unique_lock
/// replacement the analysis understands). native() exposes the underlying
/// std::unique_lock for std::condition_variable::wait — the wait's
/// unlock/relock is invisible to the analysis, which is sound because the
/// capability is held again whenever wait returns.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace repro
