#pragma once
// Blocking TCP socket helpers for the tuning service. Deliberately
// poll/epoll-free: the daemon's concurrency model is
// one-blocking-connection-per-pool-worker, with short SO_RCVTIMEO read
// timeouts standing in for readiness notification so accept/read loops can
// observe shutdown flags. POSIX only (the repo's CI platform); all calls
// retry EINTR.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace repro {

/// Minimal byte-stream interface implemented by Socket and by fault-injecting
/// wrappers (service::ChaosSocket). The frame layer reads and writes through
/// this interface so a chaos wrapper can sit between the protocol and the
/// kernel without the protocol knowing.
class ByteIo {
 public:
  /// Outcome of a read/accept attempt on a blocking socket.
  enum class Io { kOk, kClosed, kTimeout, kError };

  virtual ~ByteIo() = default;

  /// Read up to `capacity` bytes. kTimeout only fires when a read timeout
  /// is set; kClosed reports orderly peer shutdown.
  [[nodiscard]] virtual Io read_some(void* buffer, std::size_t capacity,
                                     std::size_t* got) = 0;

  /// Write the whole buffer (loops over partial writes; SIGPIPE suppressed).
  [[nodiscard]] virtual bool write_all(const void* buffer, std::size_t length) = 0;
};

/// RAII wrapper over a connected stream socket file descriptor.
///
/// The descriptor is atomic because shutdown crosses threads by design:
/// the server's stop() shuts a connection (or the listener) down while the
/// owning worker is parked in recv()/accept() on it. close() claims the fd
/// with an exchange, so concurrent closes cannot double-close.
class Socket : public ByteIo {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() override { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_.load() >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_.load(); }

  [[nodiscard]] Io read_some(void* buffer, std::size_t capacity,
                             std::size_t* got) override;

  [[nodiscard]] bool write_all(const void* buffer, std::size_t length) override;

  /// Write at most `length` bytes in one send() attempt (partial writes are
  /// the caller's problem — used by fault injection to tear frames).
  /// Returns the byte count actually sent, or -1 on error.
  [[nodiscard]] long write_some(const void* buffer, std::size_t length);

  /// SO_RCVTIMEO; zero disables (reads block indefinitely).
  void set_read_timeout(std::chrono::milliseconds timeout);

  /// SO_SNDTIMEO; zero disables (writes block indefinitely). With a timeout
  /// set, write_all fails instead of blocking forever on a peer that stops
  /// draining its receive window (slow-loris protection for responses).
  void set_write_timeout(std::chrono::milliseconds timeout);

  /// Shut down both directions, unblocking any reader on this socket.
  void shutdown_both() noexcept;

  void close() noexcept;

  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure.
  [[nodiscard]] static Socket connect_loopback(std::uint16_t port);
  /// Connect to host:port (numeric or resolvable name). Throws on failure.
  [[nodiscard]] static Socket connect_tcp(const std::string& host, std::uint16_t port);

 private:
  std::atomic<int> fd_{-1};
};

/// RAII listening socket bound to the loopback interface. The fd is atomic
/// for the same reason as Socket's: stop() closes the listener while the
/// accept thread is parked in accept() on it.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;

  /// Bind and listen on 127.0.0.1:port (0 = kernel-assigned ephemeral
  /// port, readable via port()). Throws std::runtime_error on failure.
  [[nodiscard]] static ListenSocket listen_loopback(std::uint16_t port, int backlog = 64);

  [[nodiscard]] bool valid() const noexcept { return fd_.load() >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// SO_RCVTIMEO on the listener: accept() then returns kTimeout
  /// periodically so the accept loop can poll a stop flag.
  void set_accept_timeout(std::chrono::milliseconds timeout);

  /// Accept one connection. kClosed reports a closed/invalid listener.
  [[nodiscard]] Socket::Io accept(Socket* out);

  void close() noexcept;

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace repro
