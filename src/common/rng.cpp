#include "common/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace repro {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : next_below(weights.size());
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace repro
