#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include "common/fmt.hpp"
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"

namespace repro {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table requires at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument(fmt("Table row has {} cells, expected {}",
                                cells.size(), columns_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<long long>(&cell)) return std::to_string(*integer);
  const double value = std::get<double>(cell);
  if (std::isnan(value)) return "nan";
  return fmt_double(value, precision_);
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out << ',';
    out << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(render_cell(row[c]));
    }
    out << '\n';
  }
}

bool Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    log_warn("failed to open {} for writing", path);
    return false;
  }
  write_csv(out);
  return static_cast<bool>(out);
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? " | " : "| ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(columns_);
  out << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& cells : rendered) emit_row(cells);
  return out.str();
}

std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values, int precision) {
  static constexpr char kShades[] = {' ', '.', ':', '*', '#', '@'};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& row : values) {
    for (double v : row) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) { lo = 0.0; hi = 1.0; }
  const double range = (hi > lo) ? (hi - lo) : 1.0;

  std::size_t label_width = 0;
  for (const auto& label : row_labels) label_width = std::max(label_width, label.size());

  std::vector<std::size_t> col_width(col_labels.size());
  std::vector<std::vector<std::string>> cells(values.size());
  for (std::size_t c = 0; c < col_labels.size(); ++c) col_width[c] = col_labels[c].size();
  for (std::size_t r = 0; r < values.size(); ++r) {
    cells[r].resize(values[r].size());
    for (std::size_t c = 0; c < values[r].size(); ++c) {
      const double v = values[r][c];
      std::string body = std::isnan(v) ? std::string("--")
                                       : fmt_double(v, precision);
      const int shade_index = std::isnan(v)
          ? 0
          : static_cast<int>(std::min(5.0, std::floor((v - lo) / range * 5.999)));
      cells[r][c] = body + ' ' + kShades[shade_index];
      if (c < col_width.size()) col_width[c] = std::max(col_width[c], cells[r][c].size());
    }
  }

  std::ostringstream out;
  out << title << '\n';
  out << std::string(label_width + 2, ' ');
  for (std::size_t c = 0; c < col_labels.size(); ++c) {
    out << pad(col_labels[c], col_width[c], Align::kRight) << "  ";
  }
  out << '\n';
  for (std::size_t r = 0; r < values.size(); ++r) {
    const std::string& label = r < row_labels.size() ? row_labels[r] : std::string{};
    out << pad(label, label_width, Align::kLeft) << "  ";
    for (std::size_t c = 0; c < cells[r].size(); ++c) {
      out << pad(cells[r][c], col_width[c], Align::kRight) << "  ";
    }
    out << '\n';
  }
  return out.str();
}

std::string render_line_chart(const std::string& title,
                              const std::vector<std::string>& x_labels,
                              const std::vector<std::string>& series_names,
                              const std::vector<std::vector<double>>& series,
                              std::size_t height) {
  static constexpr char kGlyphs[] = {'o', 'x', '+', '*', '^', '%', '$', '~'};
  const std::size_t points = x_labels.size();
  const std::size_t col_step = 8;
  const std::size_t width = points * col_step + 2;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (double v : s) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) { lo = 0.0; hi = 1.0; }
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (std::size_t p = 0; p < std::min(points, series[s].size()); ++p) {
      const double v = series[s][p];
      if (std::isnan(v)) continue;
      const double t = (v - lo) / (hi - lo);
      const std::size_t row = height - 1 -
          static_cast<std::size_t>(std::lround(t * static_cast<double>(height - 1)));
      const std::size_t col = p * col_step + col_step / 2;
      if (row < height && col < width) canvas[row][col] = glyph;
    }
  }

  std::ostringstream out;
  out << title << '\n';
  for (std::size_t r = 0; r < height; ++r) {
    const double axis_value = hi - (hi - lo) * static_cast<double>(r) / static_cast<double>(height - 1);
    out << pad(fmt_double(axis_value, 2), 8, Align::kRight) << " |" << canvas[r] << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(width, '-') << '\n';
  out << std::string(10, ' ');
  for (const auto& label : x_labels) out << pad(label, 8, Align::kCenter);
  out << '\n' << "  legend: ";
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    out << kGlyphs[s % sizeof(kGlyphs)] << '=' << series_names[s]
        << (s + 1 < series_names.size() ? "  " : "");
  }
  out << '\n';
  return out.str();
}

}  // namespace repro
