#pragma once
// Runtime-dispatched SIMD primitives for the surrogate/ask hot path, built
// around one non-negotiable constraint: *reduction order is part of the
// result*. The paper's statistics assume bit-repeatable experiments, and the
// reprolint float rules forbid reductions whose accumulation order depends
// on the execution environment. A naive `_mm256_hadd_pd`-style horizontal
// sum gives a different dot product on an AVX2 host than the scalar loop
// gives on a machine without one — silent cross-host nondeterminism.
//
// The fix is a *fixed-blocking* scheme: every reduction here maintains
// exactly kLanes (= 4) independent partial sums, with element i assigned to
// lane i % kLanes, combined as (s0 + s1) + (s2 + s3), and the tail folded
// sequentially afterwards. All dispatch tiers implement that same logical
// schedule:
//
//   kScalar — four named accumulators, plain loops (the portable reference)
//   kSse2   — two __m128d accumulators (lanes {0,1} and {2,3})
//   kAvx2   — one __m256d accumulator
//
// so a blocked dot product is **bit-identical across tiers** (asserted by
// tests/common/test_simd.cpp). It is *not* bit-identical to a sequential
// left-to-right sum — which is why the legacy small-history GP/linalg paths
// keep their sequential loops (see the `seq` namespace: the canonical
// sequential kernels, centralized so the decision-tree and TPE inner loops
// share one implementation) and only the large-history sparse-GP mode
// switches to the blocked kernels.
//
// simd.cpp is compiled with -ffp-contract=off so the scalar tier cannot be
// fused into FMAs under -march=native while the intrinsic tiers stay
// mul+add — contraction would break tier bit-identity.

#include <cstddef>
#include <string>

namespace repro::simd {

/// Logical lane count of the fixed-blocking scheme (independent of the
/// physical register width of the active tier).
inline constexpr std::size_t kLanes = 4;

enum class Tier {
  kScalar = 0,  ///< blocked reference implementation, any hardware
  kSse2 = 1,    ///< 2x128-bit accumulators (x86-64 baseline)
  kAvx2 = 2,    ///< 1x256-bit accumulator
};

/// Best tier supported by this process' CPU (cached after the first call).
[[nodiscard]] Tier detected_tier() noexcept;

/// Tier used by the blocked kernels below: the detected tier, unless
/// overridden by set_tier() or the REPRO_SIMD environment variable
/// ("scalar" | "sse2" | "avx2", read once at first use; requesting an
/// unsupported tier clamps down to the detected one).
[[nodiscard]] Tier active_tier() noexcept;

/// Force a tier (clamped to detected_tier()); for tests and benchmarks.
/// Returns the tier actually activated.
Tier set_tier(Tier tier) noexcept;

[[nodiscard]] const char* tier_name(Tier tier) noexcept;

// --- blocked kernels (bit-identical across tiers, NOT sequential-order) ----

/// sum_i a[i] * b[i] under the fixed-blocking schedule.
[[nodiscard]] double dot(const double* a, const double* b, std::size_t n) noexcept;

/// sum_i (a[i] - b[i])^2 under the fixed-blocking schedule.
[[nodiscard]] double squared_distance(const double* a, const double* b,
                                      std::size_t n) noexcept;

/// sum_i x[i]^2 under the fixed-blocking schedule.
[[nodiscard]] double sum_squares(const double* x, std::size_t n) noexcept;

/// sum_i x[i] under the fixed-blocking schedule.
[[nodiscard]] double sum(const double* x, std::size_t n) noexcept;

namespace seq {

// --- canonical sequential kernels ------------------------------------------
// Strict left-to-right accumulation: the order every pre-existing hot loop
// in this repository uses. These exist so callers that must preserve legacy
// byte-streams (exact-GP linalg, RF node statistics, TPE log-ratios) share
// one audited implementation instead of re-rolling the loop per call site.

[[nodiscard]] double dot(const double* a, const double* b, std::size_t n) noexcept;
[[nodiscard]] double squared_distance(const double* a, const double* b,
                                      std::size_t n) noexcept;
[[nodiscard]] double sum_squares(const double* x, std::size_t n) noexcept;
[[nodiscard]] double sum(const double* x, std::size_t n) noexcept;

/// Sequential sum and sum-of-squares of y[indices[i]] for i in [begin, end)
/// — the random-forest node-statistics gather loop.
void gathered_sum_and_squares(const double* y, const std::size_t* indices,
                              std::size_t begin, std::size_t end, double& sum,
                              double& sum_squares) noexcept;

}  // namespace seq

}  // namespace repro::simd
