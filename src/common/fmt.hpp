#pragma once
// Minimal std::format substitute (the toolchain is GCC 12, which lacks
// <format>). Supports positional "{}" substitution with an optional spec:
//
//   {}           default rendering
//   {:.3f}       fixed floating point with precision
//   {:8}         right-pad... no: minimum width, right-aligned for numbers,
//                left-aligned for strings (matching common expectations)
//   {:<8} {:>8} {:^8}   explicit alignment with width
//   {:>8.2f}     combined
//   {{ and }}    literal braces
//
// Width and precision must be literals (no nested "{}"), which keeps the
// parser trivial; call sites needing dynamic width use pad()/fmt_double().

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace repro {

namespace detail {

using FmtValue = std::variant<std::string, double, std::int64_t, std::uint64_t, bool, char>;

template <typename T>
FmtValue to_fmt_value(T&& value) {
  using U = std::decay_t<T>;
  if constexpr (std::is_same_v<U, bool>) {
    return FmtValue{std::in_place_type<bool>, value};
  } else if constexpr (std::is_same_v<U, char>) {
    return FmtValue{std::in_place_type<char>, value};
  } else if constexpr (std::is_floating_point_v<U>) {
    return FmtValue{std::in_place_type<double>, static_cast<double>(value)};
  } else if constexpr (std::is_integral_v<U> && std::is_signed_v<U>) {
    return FmtValue{std::in_place_type<std::int64_t>, static_cast<std::int64_t>(value)};
  } else if constexpr (std::is_integral_v<U>) {
    return FmtValue{std::in_place_type<std::uint64_t>, static_cast<std::uint64_t>(value)};
  } else if constexpr (std::is_convertible_v<U, std::string_view>) {
    return FmtValue{std::in_place_type<std::string>,
                    std::string(std::string_view(value))};
  } else {
    static_assert(std::is_convertible_v<U, std::string_view>,
                  "repro::fmt: unsupported argument type");
    return FmtValue{std::in_place_type<std::string>, std::string{}};
  }
}

std::string vformat(std::string_view format, const std::vector<FmtValue>& args);

}  // namespace detail

/// Format `format` with positional `{}` placeholders.
template <typename... Args>
[[nodiscard]] std::string fmt(std::string_view format, Args&&... args) {
  std::vector<detail::FmtValue> values;
  values.reserve(sizeof...(Args));
  (values.push_back(detail::to_fmt_value(std::forward<Args>(args))), ...);
  return detail::vformat(format, values);
}

enum class Align { kLeft, kRight, kCenter };

/// Pad `text` to at least `width` columns.
[[nodiscard]] std::string pad(std::string_view text, std::size_t width,
                              Align align = Align::kLeft);

/// Fixed-point rendering with `precision` decimals.
[[nodiscard]] std::string fmt_double(double value, int precision);

}  // namespace repro
