#pragma once
// Deterministic, platform-independent random number generation.
//
// The standard <random> engines are portable but the *distributions* are
// implementation-defined, which would make experiment results differ between
// standard libraries. Every stochastic component in this repository therefore
// draws through this header: a xoshiro256++ engine seeded via splitmix64,
// plus hand-rolled distributions (Lemire bounded integers, polar-method
// normals) that produce identical streams on every platform.

#include <array>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace repro {

/// splitmix64 step; used for seeding and for hashing seed material.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine an existing seed with additional material (FNV-like mixing through
/// splitmix64). Used to derive independent per-experiment streams from a
/// master seed and structured coordinates (algorithm, benchmark, run index).
[[nodiscard]] constexpr std::uint64_t seed_combine(std::uint64_t seed, std::uint64_t value) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL + (value << 6) + (value >> 2));
  return splitmix64(s);
}

/// Hash a string into seed material (FNV-1a folded through splitmix64).
[[nodiscard]] constexpr std::uint64_t seed_from_string(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

/// xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed with splitmix64 expansion so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<std::uint64_t>::max(); }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator (for parallel sub-tasks).
  [[nodiscard]] Rng split() noexcept { return Rng{(*this)() ^ 0xa3ec647659359acdULL}; }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift with rejection.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method (portable, no std::normal_distribution).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal multiplicative factor: exp(normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Index drawn from the (unnormalized, nonnegative) weight vector.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle (portable; std::shuffle order is unspecified across libs).
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices from [0, n), uniformly at random (partial Fisher-Yates).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace repro
