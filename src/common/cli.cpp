#include "common/cli.hpp"

#include <cstdio>
#include "common/fmt.hpp"
#include <stdexcept>

namespace repro {

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  options_[name] = Option{help, default_value, /*is_flag=*/false, /*seen=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "", /*is_flag=*/true, /*seen=*/false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), usage().c_str());
      return false;
    }
    Option& opt = it->second;
    opt.seen = true;
    if (opt.is_flag) {
      if (has_inline) {
        std::fprintf(stderr, "flag --%s does not take a value\n", name.c_str());
        return false;
      }
      // clear+push_back sidesteps a GCC 12 -Wrestrict false positive
      // (PR105329) on literal assignment after the substr calls above.
      opt.value.clear();
      opt.value.push_back('1');
    } else if (has_inline) {
      opt.value = std::move(inline_value);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) throw std::out_of_range("unregistered option: " + name);
  return it->second.value;
}

std::optional<std::string> CliParser::get_optional(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end() || (!it->second.seen && it->second.value.empty())) return std::nullopt;
  return it->second.value;
}

bool CliParser::get_flag(const std::string& name) const {
  auto it = options_.find(name);
  return it != options_.end() && it->second.seen;
}

long long CliParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

std::string CliParser::usage() const {
  std::string out = fmt("{} — {}\n\noptions:\n", program_, description_);
  for (const auto& [name, opt] : options_) {
    out += fmt("  --{:<18} {}{}\n", name, opt.help,
               (!opt.is_flag && !opt.value.empty())
                   ? fmt(" (default: {})", opt.value)
                   : std::string{});
  }
  out += "  --help               show this message\n";
  return out;
}

}  // namespace repro
