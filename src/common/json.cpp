#include "common/json.hpp"

#include <array>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace repro {
namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw JsonError(std::string("json: expected ") + wanted + ", got kind " +
                  std::to_string(static_cast<int>(got)));
}

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; protocol layers map these explicitly
    return;
  }
  std::array<char, 32> buffer{};
  const auto [ptr, ec] = std::to_chars(buffer.data(), buffer.data() + buffer.size(), v);
  out.append(buffer.data(), ptr);
}

void dump_value(const Json& value, std::string& out) {
  switch (value.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Json::Type::kInt: out += std::to_string(value.as_int64()); break;
    case Json::Type::kUint: out += std::to_string(value.as_uint64()); break;
    case Json::Type::kDouble: append_double(out, value.as_double()); break;
    case Json::Type::kString: append_escaped(out, value.as_string()); break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : value.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, item] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        dump_value(item, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    if (++depth_ > max_depth_) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Json value;
    switch (c) {
      case '{': value = parse_object(); break;
      case '[': value = parse_array(); break;
      case '"': value = Json(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value = Json(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value = Json(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        value = Json(nullptr);
        break;
      default: value = parse_number(); break;
    }
    --depth_;
    return value;
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return Json(std::move(object));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return Json(std::move(array));
      }
      fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool has_digits = false;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        has_digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!has_digits) fail("invalid number");
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      if (token[0] == '-') {
        std::int64_t value = 0;
        const auto [ptr, ec] = std::from_chars(token.begin(), token.end(), value);
        // "-0" must stay a double: int64 cannot carry the sign of zero, and
        // the writer emits negative zero as "-0".
        if (ec == std::errc() && ptr == token.end()) {
          return value == 0 ? Json(-0.0) : Json(value);
        }
      } else {
        std::uint64_t value = 0;
        const auto [ptr, ec] = std::from_chars(token.begin(), token.end(), value);
        if (ec == std::errc() && ptr == token.end()) return Json(value);
      }
      // Out-of-range integer: fall through to double (lossy but accepted).
    }
    const std::string owned(token);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::size_t max_depth_;
};

}  // namespace

bool Json::as_bool() const {
  if (const bool* v = std::get_if<bool>(&value_)) return *v;
  type_error("bool", type());
}

double Json::as_double() const {
  switch (type()) {
    case Type::kInt: return static_cast<double>(std::get<std::int64_t>(value_));
    case Type::kUint: return static_cast<double>(std::get<std::uint64_t>(value_));
    case Type::kDouble: return std::get<double>(value_);
    default: type_error("number", type());
  }
}

std::int64_t Json::as_int64() const {
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return *v;
  if (const auto* v = std::get_if<std::uint64_t>(&value_)) {
    if (*v > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      throw JsonError("json: integer out of int64 range");
    }
    return static_cast<std::int64_t>(*v);
  }
  type_error("integer", type());
}

std::uint64_t Json::as_uint64() const {
  if (const auto* v = std::get_if<std::uint64_t>(&value_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&value_)) {
    if (*v < 0) throw JsonError("json: negative integer where unsigned expected");
    return static_cast<std::uint64_t>(*v);
  }
  type_error("integer", type());
}

const std::string& Json::as_string() const {
  if (const auto* v = std::get_if<std::string>(&value_)) return *v;
  type_error("string", type());
}

const Json::Array& Json::as_array() const {
  if (const auto* v = std::get_if<Array>(&value_)) return *v;
  type_error("array", type());
}

Json::Array& Json::as_array() {
  if (auto* v = std::get_if<Array>(&value_)) return *v;
  type_error("array", type());
}

const Json::Object& Json::as_object() const {
  if (const auto* v = std::get_if<Object>(&value_)) return *v;
  type_error("object", type());
}

Json::Object& Json::as_object() {
  if (auto* v = std::get_if<Object>(&value_)) return *v;
  type_error("object", type());
}

Json& Json::set(std::string key, Json value) {
  Object& object = as_object();
  for (auto& [existing, item] : object) {
    if (existing == key) {
      item = std::move(value);
      return *this;
    }
  }
  object.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [existing, item] : as_object()) {
    if (existing == key) return &item;
  }
  return nullptr;
}

Json& Json::push_back(Json value) {
  as_array().push_back(std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace repro
