#pragma once
// Fixed-size worker pool with a shared task queue, plus a chunked
// parallel_for built on top of it. Experiments in the harness are
// embarrassingly parallel (independent seeded runs), so a simple FIFO pool
// is sufficient; tasks must not throw across the pool boundary unless the
// caller collects the exception through the returned future.
//
// parallel_for is safe to nest: when called from inside a worker of the
// same pool it degrades to an inline sequential loop instead of submitting
// chunks the (fully occupied) pool could never schedule — the classic
// nested fork-join deadlock. Single-worker pools also run inline, skipping
// queue traffic entirely. Chunks are enqueued in one batch under one lock
// (not one future per chunk), so a parallel_for over tiny bodies pays one
// dispatch per chunk, not per index, and one wakeup per batch.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace repro {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Enqueue a batch of tasks under one lock with one wakeup broadcast.
  /// Exceptions must be handled inside the tasks themselves.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Process-wide shared pool (created lazily, sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
};

/// Run body(i) for i in [begin, end) across the pool, blocking until done.
/// Iterations are split into contiguous chunks, one batch-enqueued task
/// each. `chunks` overrides the chunk count (0 = pool size x 4); `grain`
/// caps the split so no chunk holds fewer than `grain` iterations — tiny
/// loops then run in fewer (or zero) dispatches. Runs inline when nested
/// inside a worker of the same pool or when the pool has a single worker.
/// The first exception thrown by any chunk is rethrown on the caller.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunks = 0, std::size_t grain = 1);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunks = 0, std::size_t grain = 1);

}  // namespace repro
