#pragma once
// Fixed-size worker pool with a shared task queue, plus a static-chunked
// parallel_for built on top of it. Experiments in the harness are
// embarrassingly parallel (independent seeded runs), so a simple FIFO pool
// is sufficient; tasks must not throw across the pool boundary unless the
// caller collects the exception through the returned future.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace repro {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide shared pool (created lazily, sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run body(i) for i in [begin, end) across the pool, blocking until done.
/// Iterations are split into contiguous chunks, one per worker by default.
/// The first exception thrown by any chunk is rethrown on the caller.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunks = 0);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunks = 0);

}  // namespace repro
