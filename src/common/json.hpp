#pragma once
// Minimal self-contained JSON value, parser, and writer for the tuning
// service's wire protocol. No external dependency: the repo's rule is zero
// runtime deps, and the protocol only needs objects, arrays, strings,
// integers (64-bit exact — seeds must round-trip), doubles, bools, null.
//
// Numbers: integer tokens parse to kInt (int64) or kUint (uint64) so that
// 64-bit seeds and budgets survive the wire bit-exactly; tokens with a
// fraction or exponent parse to kDouble and are emitted with shortest
// round-trip formatting (std::to_chars). Non-finite doubles have no JSON
// representation and serialize as null — protocol code maps NaN explicitly.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace repro {

struct JsonError : std::runtime_error {
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs (stable output, duplicate-free by
  /// construction through set()).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}
  Json(bool b) noexcept : value_(b) {}
  Json(int v) noexcept : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) noexcept : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) noexcept : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) noexcept : value_(static_cast<std::uint64_t>(v)) {}
  Json(unsigned long v) noexcept : value_(static_cast<std::uint64_t>(v)) {}
  Json(unsigned long long v) noexcept : value_(static_cast<std::uint64_t>(v)) {}
  Json(double v) noexcept : value_(v) {}
  Json(std::string s) noexcept : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(Array a) noexcept : value_(std::move(a)) {}
  Json(Object o) noexcept : value_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(value_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kInt || type() == Type::kUint || type() == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  [[nodiscard]] bool as_bool() const;
  /// Any numeric kind coerced to double.
  [[nodiscard]] double as_double() const;
  /// Integer kinds only (doubles would silently truncate); range-checked.
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object field write (replaces an existing key). Throws unless object.
  Json& set(std::string key, Json value);
  /// Object field lookup; nullptr when absent. Throws unless object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array append. Throws unless array.
  Json& push_back(Json value);

  /// Compact single-line serialization (the wire format).
  [[nodiscard]] std::string dump() const;

  /// Parse one complete JSON document; trailing non-whitespace is an error.
  /// `max_depth` bounds nesting to keep hostile input from overflowing the
  /// stack.
  [[nodiscard]] static Json parse(std::string_view text, std::size_t max_depth = 64);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      value_;
};

}  // namespace repro
