#pragma once
// Column-oriented result table with CSV output and fixed-width ASCII
// rendering. The bench binaries use this for every figure/table so the
// printed rows and the CSV artifacts always agree.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace repro {

/// One table cell: text, integer, or floating point (rendered with precision).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  [[nodiscard]] std::size_t num_columns() const noexcept { return columns_.size(); }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept { return columns_; }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const { return rows_.at(i); }

  /// Append a row; must have exactly num_columns() cells.
  void add_row(std::vector<Cell> cells);

  /// Decimal places used when rendering double cells (default 4).
  void set_precision(int digits) noexcept { precision_ = digits; }

  /// RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  void write_csv(std::ostream& out) const;
  /// Write CSV to a file path; returns false (and logs) on IO failure.
  bool write_csv_file(const std::string& path) const;

  /// Fixed-width, pipe-separated ASCII rendering with a header rule.
  [[nodiscard]] std::string to_ascii() const;

 private:
  [[nodiscard]] std::string render_cell(const Cell& cell) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Render a matrix of values in [lo, hi] as an ASCII heatmap with row and
/// column labels; each cell shows the numeric value plus a shade glyph
/// (' ', '.', ':', '*', '#', '@' from cold to hot). Used to mimic the
/// paper's heatmap figures in terminal output.
[[nodiscard]] std::string render_heatmap(const std::string& title,
                                         const std::vector<std::string>& row_labels,
                                         const std::vector<std::string>& col_labels,
                                         const std::vector<std::vector<double>>& values,
                                         int precision = 1);

/// Render series as an ASCII line chart (one glyph per series) on a
/// width x height character canvas; x positions are indices into `x_labels`.
[[nodiscard]] std::string render_line_chart(const std::string& title,
                                            const std::vector<std::string>& x_labels,
                                            const std::vector<std::string>& series_names,
                                            const std::vector<std::vector<double>>& series,
                                            std::size_t height = 20);

}  // namespace repro
