#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace repro {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Small sequential per-thread id (first logging thread is 0): long-campaign
/// hang/retry diagnostics need to attribute interleaved lines to workers,
/// and pthread ids are unreadably wide.
int thread_log_id() noexcept {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm parts{};
  localtime_r(&seconds, &parts);
  char stamp[24];
  std::snprintf(stamp, sizeof stamp, "%02d:%02d:%02d.%03d", parts.tm_hour,
                parts.tm_min, parts.tm_sec, static_cast<int>(millis));

  MutexLock lock(g_mutex);
  if (log_level() <= LogLevel::kDebug) {
    std::fprintf(stderr, "[%s] [%s] [t%d] %.*s\n", stamp, level_name(level),
                 thread_log_id(), static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "[%s] [%s] %.*s\n", stamp, level_name(level),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace repro
