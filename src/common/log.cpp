#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace repro {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace repro
