#include "common/fmt.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace repro {

std::string pad(std::string_view text, std::size_t width, Align align) {
  if (text.size() >= width) return std::string(text);
  const std::size_t fill = width - text.size();
  switch (align) {
    case Align::kLeft:
      return std::string(text) + std::string(fill, ' ');
    case Align::kRight:
      return std::string(fill, ' ') + std::string(text);
    case Align::kCenter: {
      const std::size_t left = fill / 2;
      return std::string(left, ' ') + std::string(text) + std::string(fill - left, ' ');
    }
  }
  return std::string(text);
}

std::string fmt_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

namespace detail {
namespace {

struct Spec {
  Align align = Align::kLeft;
  bool align_set = false;
  std::size_t width = 0;
  int precision = -1;
  char type = '\0';
};

Spec parse_spec(std::string_view spec) {
  Spec out;
  std::size_t i = 0;
  if (i < spec.size() && (spec[i] == '<' || spec[i] == '>' || spec[i] == '^')) {
    out.align = spec[i] == '<' ? Align::kLeft : spec[i] == '>' ? Align::kRight : Align::kCenter;
    out.align_set = true;
    ++i;
  }
  while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
    out.width = out.width * 10 + static_cast<std::size_t>(spec[i] - '0');
    ++i;
  }
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    out.precision = 0;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
      out.precision = out.precision * 10 + (spec[i] - '0');
      ++i;
    }
  }
  if (i < spec.size()) {
    out.type = spec[i];
    ++i;
  }
  if (i != spec.size()) throw std::invalid_argument("repro::fmt: bad format spec");
  return out;
}

std::string render(const FmtValue& value, const Spec& spec) {
  std::string body;
  bool numeric = true;
  if (const auto* s = std::get_if<std::string>(&value)) {
    body = *s;
    numeric = false;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    body = *b ? "true" : "false";
    numeric = false;
  } else if (const auto* c = std::get_if<char>(&value)) {
    body = std::string(1, *c);
    numeric = false;
  } else if (const auto* d = std::get_if<double>(&value)) {
    if (spec.precision >= 0 || spec.type == 'f') {
      body = fmt_double(*d, spec.precision >= 0 ? spec.precision : 6);
    } else if (std::isnan(*d)) {
      body = "nan";
    } else {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%g", *d);
      body = buffer;
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    body = std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    body = std::to_string(*u);
  }
  const Align align =
      spec.align_set ? spec.align : (numeric ? Align::kRight : Align::kLeft);
  return spec.width > 0 ? pad(body, spec.width, align) : body;
}

}  // namespace

std::string vformat(std::string_view format, const std::vector<FmtValue>& args) {
  std::string out;
  out.reserve(format.size() + args.size() * 8);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < format.size(); ++i) {
    const char c = format[i];
    if (c == '{') {
      if (i + 1 < format.size() && format[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      const std::size_t close = format.find('}', i);
      if (close == std::string_view::npos) {
        throw std::invalid_argument("repro::fmt: unbalanced '{'");
      }
      std::string_view field = format.substr(i + 1, close - i - 1);
      Spec spec;
      if (!field.empty()) {
        if (field[0] != ':') throw std::invalid_argument("repro::fmt: expected ':' in field");
        spec = parse_spec(field.substr(1));
      }
      if (next_arg >= args.size()) {
        throw std::invalid_argument("repro::fmt: not enough arguments");
      }
      out += render(args[next_arg++], spec);
      i = close;
    } else if (c == '}') {
      if (i + 1 < format.size() && format[i + 1] == '}') ++i;
      out += '}';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace detail
}  // namespace repro
