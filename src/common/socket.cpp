#include "common/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace repro {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_timeout_option(int fd, int option, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Latency over throughput: protocol frames are tiny request/response
/// pairs, so Nagle coalescing only adds round-trip delay.
void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

Socket::Io Socket::read_some(void* buffer, std::size_t capacity, std::size_t* got) {
  *got = 0;
  const int fd = fd_.load();
  if (fd < 0) return Io::kClosed;
  while (true) {
    const ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n > 0) {
      *got = static_cast<std::size_t>(n);
      return Io::kOk;
    }
    if (n == 0) return Io::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kTimeout;
    return Io::kError;
  }
}

bool Socket::write_all(const void* buffer, std::size_t length) {
  const int fd = fd_.load();
  if (fd < 0) return false;
  const char* data = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < length) {
    const ssize_t n = ::send(fd, data + sent, length - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::write_some(const void* buffer, std::size_t length) {
  const int fd = fd_.load();
  if (fd < 0) return -1;
  while (true) {
    const ssize_t n = ::send(fd, buffer, length, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

void Socket::set_read_timeout(std::chrono::milliseconds timeout) {
  const int fd = fd_.load();
  if (fd >= 0) set_timeout_option(fd, SO_RCVTIMEO, timeout);
}

void Socket::set_write_timeout(std::chrono::milliseconds timeout) {
  const int fd = fd_.load();
  if (fd >= 0) set_timeout_option(fd, SO_SNDTIMEO, timeout);
}

void Socket::shutdown_both() noexcept {
  const int fd = fd_.load();
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void Socket::close() noexcept {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) (void)::close(fd);
}

Socket Socket::connect_loopback(std::uint16_t port) {
  return connect_tcp("127.0.0.1", port);
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    throw std::runtime_error("connect_tcp: cannot resolve " + host + ": " +
                             gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    int connected;
    do {
      connected = ::connect(fd, entry->ai_addr, entry->ai_addrlen);
    } while (connected < 0 && errno == EINTR);
    if (connected == 0) break;
    saved_errno = errno;
    (void)::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    errno = saved_errno;
    throw_errno("connect_tcp: cannot connect to " + host + ":" + service);
  }
  set_nodelay(fd);
  return Socket(fd);
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
    other.port_ = 0;
  }
  return *this;
}

ListenSocket ListenSocket::listen_loopback(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("listen_loopback: socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    const int saved = errno;
    (void)::close(fd);
    errno = saved;
    throw_errno("listen_loopback: bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    (void)::close(fd);
    errno = saved;
    throw_errno("listen_loopback: listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const int saved = errno;
    (void)::close(fd);
    errno = saved;
    throw_errno("listen_loopback: getsockname");
  }

  ListenSocket listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

void ListenSocket::set_accept_timeout(std::chrono::milliseconds timeout) {
  const int fd = fd_.load();
  if (fd >= 0) set_timeout_option(fd, SO_RCVTIMEO, timeout);
}

Socket::Io ListenSocket::accept(Socket* out) {
  *out = Socket();
  while (true) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return Socket::Io::kClosed;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      *out = Socket(fd);
      return Socket::Io::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket::Io::kTimeout;
    // EBADF/EINVAL after a concurrent close() is the shutdown path.
    return Socket::Io::kClosed;
  }
}

void ListenSocket::close() noexcept {
  // shutdown() first so a thread blocked in accept() wakes immediately
  // instead of waiting out its timeout; exchange claims the fd so only one
  // closer (stop() vs. destructor) actually closes it.
  const int fd = fd_.load();
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
  const int claimed = fd_.exchange(-1);
  if (claimed >= 0) (void)::close(claimed);
}

}  // namespace repro
