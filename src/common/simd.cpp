#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define REPRO_SIMD_X86 1
#include <immintrin.h>
#else
#define REPRO_SIMD_X86 0
#endif

// Every kernel in this file follows the fixed-blocking contract documented
// in simd.hpp: four logical lanes, element i -> lane i % 4, lanes combined
// as (s0 + s1) + (s2 + s3), tail folded sequentially. The SSE2/AVX2 bodies
// are transcriptions of the scalar one onto wider registers, not
// re-associations of it — which is what makes the tiers bit-identical.

namespace repro::simd {
namespace {

// --- scalar tier (blocked reference) ---------------------------------------

double dot_scalar(const double* a, const double* b, std::size_t n) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double total = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double sqdist_scalar(const double* a, const double* b, std::size_t n) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double total = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double sum_scalar(const double* x, std::size_t n) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    s0 += x[i];
    s1 += x[i + 1];
    s2 += x[i + 2];
    s3 += x[i + 3];
  }
  double total = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) total += x[i];
  return total;
}

double sumsq_scalar(const double* x, std::size_t n) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    s0 += x[i] * x[i];
    s1 += x[i + 1] * x[i + 1];
    s2 += x[i + 2] * x[i + 2];
    s3 += x[i + 3] * x[i + 3];
  }
  double total = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) total += x[i] * x[i];
  return total;
}

#if REPRO_SIMD_X86

// --- SSE2 tier: lanes {0,1} and {2,3} as two __m128d accumulators ----------

/// Combine two 2-lane accumulators as (s0 + s1) + (s2 + s3). `_mm_hadd_pd`
/// is exactly that pairwise add (lane0 + lane1 of each operand) — a fixed,
/// tier-independent order, unlike the tree-shaped reduce intrinsics the
/// reprolint nondet-reduction rule rejects. The horizontal add is SSE3, so
/// the "sse2" tier actually gates on sse3 (universal on x86-64 since 2005).
__attribute__((target("sse3"))) double combine_sse2(__m128d acc01,
                                                    __m128d acc23) noexcept {
  const __m128d pair =
      _mm_hadd_pd(acc01, acc23);  // NOLINT(reprolint-nondet-reduction) fixed (s0+s1),(s2+s3) pairwise combine; tier bit-identity asserted by tests/common/test_simd.cpp
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

__attribute__((target("sse3"))) double dot_sse2(const double* a, const double* b,
                                                std::size_t n) noexcept {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(acc23,
                       _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double total = combine_sse2(acc01, acc23);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("sse3"))) double sqdist_sse2(const double* a, const double* b,
                                                   std::size_t n) noexcept {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 = _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  double total = combine_sse2(acc01, acc23);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("sse3"))) double sum_sse2(const double* x,
                                                std::size_t n) noexcept {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(x + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(x + i + 2));
  }
  double total = combine_sse2(acc01, acc23);
  for (; i < n; ++i) total += x[i];
  return total;
}

__attribute__((target("sse3"))) double sumsq_sse2(const double* x,
                                                  std::size_t n) noexcept {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m128d x01 = _mm_loadu_pd(x + i);
    const __m128d x23 = _mm_loadu_pd(x + i + 2);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(x01, x01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(x23, x23));
  }
  double total = combine_sse2(acc01, acc23);
  for (; i < n; ++i) total += x[i] * x[i];
  return total;
}

// --- AVX2 tier: one __m256d accumulator ------------------------------------

/// Extract the four lanes and combine as (s0 + s1) + (s2 + s3) — the same
/// scalar expression the other tiers use, so no re-association sneaks in.
__attribute__((target("avx2"))) double combine_avx2(__m256d acc) noexcept {
  alignas(32) double lane[kLanes];
  _mm256_store_pd(lane, acc);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) double dot_avx2(const double* a, const double* b,
                                                std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                           _mm256_loadu_pd(b + i)));
  }
  double total = combine_avx2(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2"))) double sqdist_avx2(const double* a, const double* b,
                                                   std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = combine_avx2(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2"))) double sum_avx2(const double* x,
                                                std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double total = combine_avx2(acc);
  for (; i < n; ++i) total += x[i];
  return total;
}

__attribute__((target("avx2"))) double sumsq_avx2(const double* x,
                                                  std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  double total = combine_avx2(acc);
  for (; i < n; ++i) total += x[i] * x[i];
  return total;
}

#endif  // REPRO_SIMD_X86

Tier detect() noexcept {
#if REPRO_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse3")) return Tier::kSse2;
#endif
#endif
  return Tier::kScalar;
}

Tier initial_tier() noexcept {
  Tier tier = detect();
  if (const char* env = std::getenv("REPRO_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      tier = Tier::kScalar;
    } else if (std::strcmp(env, "sse2") == 0 && detect() >= Tier::kSse2) {
      tier = Tier::kSse2;
    } else if (std::strcmp(env, "avx2") == 0 && detect() >= Tier::kAvx2) {
      tier = Tier::kAvx2;
    }
  }
  return tier;
}

std::atomic<Tier>& active_tier_slot() noexcept {
  static std::atomic<Tier> tier{initial_tier()};
  return tier;
}

}  // namespace

Tier detected_tier() noexcept {
  static const Tier tier = detect();
  return tier;
}

Tier active_tier() noexcept {
  return active_tier_slot().load(std::memory_order_relaxed);
}

Tier set_tier(Tier tier) noexcept {
  if (tier > detected_tier()) tier = detected_tier();
  active_tier_slot().store(tier, std::memory_order_relaxed);
  return tier;
}

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
  }
  return "unknown";
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
#if REPRO_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx2: return dot_avx2(a, b, n);
    case Tier::kSse2: return dot_sse2(a, b, n);
    case Tier::kScalar: break;
  }
#endif
  return dot_scalar(a, b, n);
}

double squared_distance(const double* a, const double* b, std::size_t n) noexcept {
#if REPRO_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx2: return sqdist_avx2(a, b, n);
    case Tier::kSse2: return sqdist_sse2(a, b, n);
    case Tier::kScalar: break;
  }
#endif
  return sqdist_scalar(a, b, n);
}

double sum_squares(const double* x, std::size_t n) noexcept {
#if REPRO_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx2: return sumsq_avx2(x, n);
    case Tier::kSse2: return sumsq_sse2(x, n);
    case Tier::kScalar: break;
  }
#endif
  return sumsq_scalar(x, n);
}

double sum(const double* x, std::size_t n) noexcept {
#if REPRO_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx2: return sum_avx2(x, n);
    case Tier::kSse2: return sum_sse2(x, n);
    case Tier::kScalar: break;
  }
#endif
  return sum_scalar(x, n);
}

namespace seq {

double dot(const double* a, const double* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

double squared_distance(const double* a, const double* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double sum_squares(const double* x, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += x[i] * x[i];
  return total;
}

double sum(const double* x, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += x[i];
  return total;
}

void gathered_sum_and_squares(const double* y, const std::size_t* indices,
                              std::size_t begin, std::size_t end, double& sum,
                              double& sum_squares) noexcept {
  double s = 0.0;
  double sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    s += y[indices[i]];
    sq += y[indices[i]] * y[indices[i]];
  }
  sum = s;
  sum_squares = sq;
}

}  // namespace seq

}  // namespace repro::simd
