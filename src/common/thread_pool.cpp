#include "common/thread_pool.hpp"

#include <algorithm>

namespace repro {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t chunks) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (chunks == 0) chunks = std::min(n, pool.size() * 4);
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  if (chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t cursor = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t lo = cursor;
    const std::size_t hi = cursor + len;
    cursor = hi;
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Propagate the first failure after all chunks have completed.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t chunks) {
  parallel_for(ThreadPool::global(), begin, end, body, chunks);
}

}  // namespace repro
