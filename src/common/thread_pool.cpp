#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace repro {

namespace {
/// Pool whose worker is executing on this thread (nullptr on non-workers).
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Shutdown handoff: the flag flips under the lock, the broadcast happens
  // outside it, and workers drain the remaining queue before exiting — a
  // worker that wakes between the unlock and the join re-checks both
  // `stopping_` and the queue under the lock, so no task is dropped.
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const noexcept { return t_worker_pool == this; }

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock.native());
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    MutexLock lock(mutex_);
    for (auto& task : tasks) queue_.emplace_back(std::move(task));
  }
  cv_.notify_all();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t chunks,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline when parallelism cannot help: a single worker adds only queue
  // latency, and a nested call from one of this pool's own workers would
  // block a worker on chunks that are queued behind other blocked workers.
  if (pool.size() <= 1 || pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (chunks == 0) chunks = std::min(n, pool.size() * 4);
  grain = std::max<std::size_t>(1, grain);
  chunks = std::max<std::size_t>(1, std::min({chunks, n, n / grain}));
  if (chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // One shared completion latch instead of one future per chunk: the whole
  // batch costs a single queue lock and a single broadcast.
  struct Latch {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr first_error;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining.store(chunks, std::memory_order_relaxed);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t cursor = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t lo = cursor;
    const std::size_t hi = cursor + len;
    cursor = hi;
    tasks.push_back([lo, hi, &body, latch] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(latch->mutex);
        if (!latch->first_error) latch->first_error = std::current_exception();
      }
      if (latch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(latch->mutex);
        latch->done.notify_all();
      }
    });
  }
  pool.submit_batch(std::move(tasks));

  std::unique_lock lock(latch->mutex);
  latch->done.wait(lock, [&] {
    return latch->remaining.load(std::memory_order_acquire) == 0;
  });
  if (latch->first_error) std::rethrow_exception(latch->first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t chunks,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, chunks, grain);
}

}  // namespace repro
