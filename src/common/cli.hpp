#pragma once
// Tiny command-line flag parser shared by bench binaries and examples.
// Supports `--name value`, `--name=value`, boolean `--flag`, and collects
// positionals. Unknown flags are an error so typos fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace repro {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register a value-taking option. `help` shows in usage.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");
  /// Register a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get_optional(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept { return positionals_; }

  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positionals_;
};

}  // namespace repro
