#pragma once
// Multi-group nonparametric tests complementing the pairwise Mann-Whitney U
// the paper uses: Kruskal-Wallis (k independent samples — "is any algorithm
// different?") and Friedman (k treatments over b blocks — "do algorithms
// rank consistently across benchmark/architecture panels?"). Both reduce to
// a chi-squared tail probability, provided here via the regularized upper
// incomplete gamma function.

#include <span>
#include <vector>

namespace repro::stats {

/// Survival function of the chi-squared distribution with `dof` degrees of
/// freedom: P(X >= x). Throws std::invalid_argument for dof < 1 or x < 0.
[[nodiscard]] double chi_squared_sf(double x, unsigned dof);

/// Regularized upper incomplete gamma Q(a, x) = Gamma(a, x) / Gamma(a).
[[nodiscard]] double regularized_gamma_q(double a, double x);

struct KruskalWallisResult {
  double h = 0.0;        ///< tie-corrected H statistic
  double p_value = 1.0;  ///< chi-squared approximation, k-1 dof
  unsigned dof = 0;
};

/// Kruskal-Wallis H test over k >= 2 groups (each non-empty).
[[nodiscard]] KruskalWallisResult kruskal_wallis(
    std::span<const std::vector<double>> groups);

struct FriedmanResult {
  double chi2 = 0.0;     ///< tie-corrected Friedman statistic
  double p_value = 1.0;  ///< chi-squared approximation, k-1 dof
  unsigned dof = 0;
  std::vector<double> mean_ranks;  ///< per treatment (1 = best/lowest)
};

/// Friedman test on a blocks x treatments matrix (each row one block, all
/// rows the same length >= 2; at least 2 blocks).
[[nodiscard]] FriedmanResult friedman(
    std::span<const std::vector<double>> blocks);

}  // namespace repro::stats
