#pragma once
// Descriptive statistics used throughout the harness: mean/median/variance,
// quantiles, and confidence intervals. All functions take read-only spans
// and never mutate caller data (sorting happens on internal copies).

#include <cstddef>
#include <span>
#include <vector>

namespace repro::stats {

[[nodiscard]] double mean(std::span<const double> xs);
/// Unbiased (n-1) sample variance; 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double median(std::span<const double> xs);
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Linear-interpolation quantile (type 7, the numpy/R default), q in [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Two-sided confidence interval for the mean using the normal approximation
/// with a small-sample Student-t correction (lookup up to 30 dof, then z).
[[nodiscard]] Interval mean_confidence_interval(std::span<const double> xs,
                                                double confidence = 0.95);

/// Distribution-free CI for the median from binomial order statistics.
[[nodiscard]] Interval median_confidence_interval(std::span<const double> xs,
                                                  double confidence = 0.95);

/// Standard normal CDF (used by MWU approximation and CI construction).
[[nodiscard]] double normal_cdf(double z);
/// Inverse standard normal CDF (Acklam's rational approximation, |err|<1e-9).
[[nodiscard]] double normal_quantile(double p);

/// Ranks (1-based) with ties replaced by their average rank, as required by
/// the Mann-Whitney U statistic. Returns ranks aligned with the input order.
[[nodiscard]] std::vector<double> ranks_with_ties(std::span<const double> xs);

}  // namespace repro::stats
