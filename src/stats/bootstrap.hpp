#pragma once
// Percentile bootstrap confidence intervals. The paper rejected bootstrap
// for its main significance machinery on cost grounds (Section V-A); we
// provide it anyway for cross-checking the MWU conclusions in tests and in
// the ablation benches.

#include <functional>
#include <span>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace repro::stats {

/// Statistic evaluated on a resample.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap CI of `statistic` over `xs` with `resamples` draws.
[[nodiscard]] Interval bootstrap_confidence_interval(std::span<const double> xs,
                                                     const Statistic& statistic,
                                                     repro::Rng& rng,
                                                     std::size_t resamples = 2000,
                                                     double confidence = 0.95);

/// Bootstrap two-sample test: p-value for H0 "mean(a) == mean(b)" via the
/// difference-of-means permutation-style bootstrap.
[[nodiscard]] double bootstrap_mean_difference_p(std::span<const double> a,
                                                 std::span<const double> b,
                                                 repro::Rng& rng,
                                                 std::size_t resamples = 2000);

}  // namespace repro::stats
