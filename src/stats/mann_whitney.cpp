#include "stats/mann_whitney.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace repro::stats {
namespace {

bool has_ties(std::span<const double> a, std::span<const double> b) {
  std::vector<double> all(a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  return std::adjacent_find(all.begin(), all.end()) != all.end();
}

/// Exact null distribution of U for tie-free samples: the number of
/// arrangements with statistic u equals the number of integer partitions of
/// u into at most n1 parts, each at most n2 (a Gaussian binomial
/// coefficient). dp[a][u] counts partitions of u into at most `a` parts
/// each bounded by the current outer value of b, built with the recurrence
///   p(u; a, b) = p(u; a, b-1) + p(u-b; a-1, b)
/// (largest part is either < b, or exactly b and removable).
/// Returns P(U <= u_obs).
double exact_cdf(std::size_t n1, std::size_t n2, double u_obs) {
  const std::size_t max_u = n1 * n2;
  std::vector<std::vector<double>> dp(n1 + 1, std::vector<double>(max_u + 1, 0.0));
  for (std::size_t a = 0; a <= n1; ++a) dp[a][0] = 1.0;  // b = 0 base case
  for (std::size_t b = 1; b <= n2; ++b) {
    // In-place update: dp[a-1] has already been raised to level b when row
    // a is processed, dp[a][u] still holds level b-1 — exactly the terms
    // the recurrence needs.
    for (std::size_t a = 1; a <= n1; ++a) {
      for (std::size_t u = b; u <= max_u; ++u) {
        dp[a][u] += dp[a - 1][u - b];
      }
    }
  }
  double total = 0.0;
  for (double c : dp[n1]) total += c;
  double cumulative = 0.0;
  const auto limit = static_cast<std::size_t>(std::floor(u_obs + 1e-9));
  for (std::size_t u = 0; u <= std::min(limit, max_u); ++u) cumulative += dp[n1][u];
  return cumulative / total;
}

}  // namespace

MannWhitneyResult mann_whitney_u(std::span<const double> a, std::span<const double> b,
                                 Alternative alternative) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mann_whitney_u: samples must be non-empty");
  }
  const auto n1 = static_cast<double>(a.size());
  const auto n2 = static_cast<double>(b.size());

  std::vector<double> all(a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  const std::vector<double> ranks = ranks_with_ties(all);

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) rank_sum_a += ranks[i];

  MannWhitneyResult result;
  result.u_a = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
  result.u_b = n1 * n2 - result.u_a;

  const bool tied = has_ties(a, b);
  const bool small = a.size() * b.size() <= 400 && a.size() <= 25 && b.size() <= 25;
  if (!tied && small) {
    result.exact = true;
    // Exact p-values. P(U <= u) from the DP; symmetric null distribution.
    auto cdf = [&](double u) { return exact_cdf(a.size(), b.size(), u); };
    switch (alternative) {
      case Alternative::kLess:
        result.p_value = cdf(result.u_a);
        break;
      case Alternative::kGreater:
        result.p_value = cdf(result.u_b);
        break;
      case Alternative::kTwoSided: {
        const double tail = cdf(std::min(result.u_a, result.u_b));
        result.p_value = std::min(1.0, 2.0 * tail);
        break;
      }
    }
    return result;
  }

  // Normal approximation with tie correction.
  const double mean_u = n1 * n2 / 2.0;
  const double n = n1 + n2;
  double tie_term = 0.0;
  {
    std::vector<double> sorted(all);
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {  // all observations identical
    result.p_value = 1.0;
    return result;
  }
  const double sd = std::sqrt(var_u);
  auto tail_p = [&](double u) {
    // Upper tail with continuity correction: P(U >= u).
    const double z = (u - mean_u - 0.5) / sd;
    return 1.0 - normal_cdf(z);
  };
  switch (alternative) {
    case Alternative::kGreater:
      result.p_value = tail_p(result.u_a);
      break;
    case Alternative::kLess:
      result.p_value = tail_p(result.u_b);
      break;
    case Alternative::kTwoSided:
      result.p_value = std::min(1.0, 2.0 * tail_p(std::max(result.u_a, result.u_b)));
      break;
  }
  result.p_value = std::clamp(result.p_value, 0.0, 1.0);
  return result;
}

bool significantly_different(std::span<const double> a, std::span<const double> b,
                             double alpha) {
  return mann_whitney_u(a, b, Alternative::kTwoSided).p_value < alpha;
}

}  // namespace repro::stats
