#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace repro::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return accum / static_cast<double>(n - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(std::floor(pos));
  const std::size_t upper = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lower);
  return sorted[lower] * (1.0 - frac) + sorted[upper] * frac;
}

namespace {

// Two-sided 95%/99% t critical values for 1..30 dof, then the normal limit.
double t_critical(std::size_t dof, double confidence) {
  static constexpr double k95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr double k99[] = {
      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
  if (dof == 0) dof = 1;
  if (confidence >= 0.985) {
    return dof <= 30 ? k99[dof - 1] : 2.576;
  }
  return dof <= 30 ? k95[dof - 1] : 1.960;
}

}  // namespace

Interval mean_confidence_interval(std::span<const double> xs, double confidence) {
  if (xs.empty()) return {};
  const double m = mean(xs);
  if (xs.size() == 1) return {m, m};
  const double se = stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
  const double t = t_critical(xs.size() - 1, confidence);
  return {m - t * se, m + t * se};
}

Interval median_confidence_interval(std::span<const double> xs, double confidence) {
  if (xs.empty()) return {};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  if (sorted.size() < 6) return {sorted.front(), sorted.back()};
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double half = z * std::sqrt(n) / 2.0;
  auto clamp_index = [&](double idx) {
    return static_cast<std::size_t>(std::clamp(idx, 0.0, n - 1.0));
  };
  const std::size_t lo = clamp_index(std::floor(n / 2.0 - half) - 1.0);
  const std::size_t hi = clamp_index(std::ceil(n / 2.0 + half) - 1.0);
  return {sorted[lo], sorted[hi]};
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::invalid_argument("normal_quantile: p outside (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q = 0.0, r = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

std::vector<double> ranks_with_ties(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace repro::stats
