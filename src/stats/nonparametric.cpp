#include "stats/nonparametric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace repro::stats {
namespace {

/// Lower regularized incomplete gamma P(a, x) by series expansion
/// (Numerical Recipes "gser"), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double delta = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    delta *= x / ap;
    sum += delta;
    if (std::abs(delta) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper regularized incomplete gamma Q(a, x) by continued fraction
/// (Numerical Recipes "gcf"), valid for x >= a + 1.
double gamma_q_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double factor = d * c;
    h *= factor;
    if (std::abs(factor - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::invalid_argument("regularized_gamma_q: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_fraction(a, x);
}

double chi_squared_sf(double x, unsigned dof) {
  if (dof < 1) throw std::invalid_argument("chi_squared_sf: dof must be >= 1");
  if (x < 0.0) throw std::invalid_argument("chi_squared_sf: x must be >= 0");
  return regularized_gamma_q(static_cast<double>(dof) / 2.0, x / 2.0);
}

KruskalWallisResult kruskal_wallis(std::span<const std::vector<double>> groups) {
  if (groups.size() < 2) {
    throw std::invalid_argument("kruskal_wallis: need at least 2 groups");
  }
  std::vector<double> pooled;
  for (const auto& group : groups) {
    if (group.empty()) throw std::invalid_argument("kruskal_wallis: empty group");
    pooled.insert(pooled.end(), group.begin(), group.end());
  }
  const std::vector<double> ranks = ranks_with_ties(pooled);
  const auto n = static_cast<double>(pooled.size());

  double h = 0.0;
  std::size_t cursor = 0;
  for (const auto& group : groups) {
    double rank_sum = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) rank_sum += ranks[cursor + i];
    cursor += group.size();
    h += rank_sum * rank_sum / static_cast<double>(group.size());
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction.
  std::vector<double> sorted(pooled);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double correction = 1.0 - tie_term / (n * n * n - n);
  if (correction > 0.0) h /= correction;

  KruskalWallisResult result;
  result.h = h;
  result.dof = static_cast<unsigned>(groups.size() - 1);
  result.p_value = chi_squared_sf(std::max(h, 0.0), result.dof);
  return result;
}

FriedmanResult friedman(std::span<const std::vector<double>> blocks) {
  if (blocks.size() < 2) throw std::invalid_argument("friedman: need >= 2 blocks");
  const std::size_t k = blocks.front().size();
  if (k < 2) throw std::invalid_argument("friedman: need >= 2 treatments");
  for (const auto& block : blocks) {
    if (block.size() != k) throw std::invalid_argument("friedman: ragged blocks");
  }
  const auto b = static_cast<double>(blocks.size());
  const auto kd = static_cast<double>(k);

  std::vector<double> rank_sums(k, 0.0);
  double tie_correction_sum = 0.0;  // sum over blocks of (t^3 - t) terms
  for (const auto& block : blocks) {
    const std::vector<double> ranks = ranks_with_ties(block);
    for (std::size_t j = 0; j < k; ++j) rank_sums[j] += ranks[j];
    std::vector<double> sorted(block);
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_correction_sum += t * t * t - t;
      i = j + 1;
    }
  }

  double sum_sq = 0.0;
  for (double rank_sum : rank_sums) sum_sq += rank_sum * rank_sum;
  double chi2 = 12.0 / (b * kd * (kd + 1.0)) * sum_sq - 3.0 * b * (kd + 1.0);
  const double correction = 1.0 - tie_correction_sum / (b * (kd * kd * kd - kd));
  if (correction > 0.0) chi2 /= correction;

  FriedmanResult result;
  result.chi2 = chi2;
  result.dof = static_cast<unsigned>(k - 1);
  result.p_value = chi_squared_sf(std::max(chi2, 0.0), result.dof);
  result.mean_ranks.resize(k);
  for (std::size_t j = 0; j < k; ++j) result.mean_ranks[j] = rank_sums[j] / b;
  return result;
}

}  // namespace repro::stats
