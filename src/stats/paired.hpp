#pragma once
// Paired and rank-correlation statistics complementing the study toolkit:
//
//  - Wilcoxon signed-rank test: the paired counterpart of the rank-sum
//    test (Table I's Akiba et al. row reports a "Paired MWU", which is
//    this test). Right tool when the same benchmark/architecture panels
//    are measured under two algorithms.
//  - Spearman rank correlation: monotone-association measure; used here to
//    quantify how faithfully a low-fidelity proxy ranks configurations.
//  - Holm-Bonferroni step-down correction: family-wise error control for
//    the many per-cell hypothesis tests heatmap studies run at once.

#include <span>
#include <vector>

namespace repro::stats {

struct WilcoxonResult {
  double w = 0.0;        ///< min of positive/negative signed-rank sums
  double p_value = 1.0;  ///< normal approximation (tie/zero corrected)
  std::size_t n_effective = 0;  ///< pairs with non-zero difference
};

/// Two-sided Wilcoxon signed-rank test on paired samples (equal length,
/// length >= 1). Zero differences are dropped (Wilcoxon's convention);
/// throws std::invalid_argument on size mismatch or empty input. With
/// fewer than 6 effective pairs significance is unattainable and p = 1.
[[nodiscard]] WilcoxonResult wilcoxon_signed_rank(std::span<const double> a,
                                                  std::span<const double> b);

/// Spearman's rho: Pearson correlation of tie-averaged ranks, in [-1, 1].
/// Throws std::invalid_argument on size mismatch or n < 2.
[[nodiscard]] double spearman_rho(std::span<const double> a, std::span<const double> b);

/// Holm-Bonferroni step-down adjustment: returns adjusted p-values aligned
/// with the input (each clamped to [p_raw, 1]); reject H0_i at level alpha
/// iff adjusted[i] <= alpha, controlling the family-wise error rate.
[[nodiscard]] std::vector<double> holm_bonferroni(std::span<const double> p_values);

}  // namespace repro::stats
