#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace repro::stats {

Interval bootstrap_confidence_interval(std::span<const double> xs, const Statistic& statistic,
                                       repro::Rng& rng, std::size_t resamples,
                                       double confidence) {
  if (xs.empty()) throw std::invalid_argument("bootstrap: empty sample");
  std::vector<double> resample(xs.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& value : resample) {
      value = xs[static_cast<std::size_t>(rng.next_below(xs.size()))];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = 1.0 - confidence;
  return {quantile(stats, alpha / 2.0), quantile(stats, 1.0 - alpha / 2.0)};
}

double bootstrap_mean_difference_p(std::span<const double> a, std::span<const double> b,
                                   repro::Rng& rng, std::size_t resamples) {
  if (a.empty() || b.empty()) throw std::invalid_argument("bootstrap: empty sample");
  const double observed = std::abs(mean(a) - mean(b));
  // Pool under H0 and resample both groups from the pooled data.
  std::vector<double> pooled(a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  std::vector<double> ra(a.size()), rb(b.size());
  std::size_t extreme = 0;
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : ra) v = pooled[static_cast<std::size_t>(rng.next_below(pooled.size()))];
    for (auto& v : rb) v = pooled[static_cast<std::size_t>(rng.next_below(pooled.size()))];
    if (std::abs(mean(ra) - mean(rb)) >= observed) ++extreme;
  }
  // Add-one smoothing keeps the p-value away from an impossible exact zero.
  return (static_cast<double>(extreme) + 1.0) / (static_cast<double>(resamples) + 1.0);
}

}  // namespace repro::stats
