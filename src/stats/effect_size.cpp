#include "stats/effect_size.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace repro::stats {

double cles_greater(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("cles: samples must be non-empty");
  }
  // Rank-based identity: A = (R1/n1 - (n1+1)/2) / n2, where R1 is the rank
  // sum of sample a in the pooled ranking with average ranks for ties.
  std::vector<double> all(a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  const std::vector<double> ranks = ranks_with_ties(all);
  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) rank_sum_a += ranks[i];
  const auto n1 = static_cast<double>(a.size());
  const auto n2 = static_cast<double>(b.size());
  return (rank_sum_a / n1 - (n1 + 1.0) / 2.0) / n2;
}

double cles_less(std::span<const double> a, std::span<const double> b) {
  return cles_greater(b, a);
}

const char* vargha_delaney_magnitude(double a_measure) {
  const double scaled = std::abs(a_measure - 0.5) + 0.5;
  if (scaled < 0.56) return "negligible";
  if (scaled < 0.64) return "small";
  if (scaled < 0.71) return "medium";
  return "large";
}

}  // namespace repro::stats
