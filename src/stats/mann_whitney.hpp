#pragma once
// Mann-Whitney U test (a.k.a. Wilcoxon rank-sum), the significance test the
// paper uses with threshold alpha = 0.01 (Section II-C, V-A).
//
// Two implementations are provided and selected automatically:
//  - exact: dynamic-programming enumeration of the null U distribution,
//    valid when there are no ties and n1*n2 is small;
//  - approximate: normal approximation with tie correction and continuity
//    correction, matching scipy.stats.mannwhitneyu(method="asymptotic").

#include <cstddef>
#include <span>

namespace repro::stats {

enum class Alternative {
  kTwoSided,
  kLess,     // H1: distribution of A is stochastically less than B
  kGreater,  // H1: distribution of A is stochastically greater than B
};

struct MannWhitneyResult {
  double u_a = 0.0;     ///< U statistic attributed to sample A.
  double u_b = 0.0;     ///< U statistic attributed to sample B (u_a + u_b = n1*n2).
  double p_value = 1.0;
  bool exact = false;   ///< true if the exact null distribution was used.
};

/// Run the MWU test between samples a and b.
/// Throws std::invalid_argument when either sample is empty.
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b,
                                               Alternative alternative = Alternative::kTwoSided);

/// Convenience: true when the two-sided MWU p-value is below alpha.
[[nodiscard]] bool significantly_different(std::span<const double> a,
                                           std::span<const double> b,
                                           double alpha = 0.01);

}  // namespace repro::stats
