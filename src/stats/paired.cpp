#include "stats/paired.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace repro::stats {

WilcoxonResult wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("wilcoxon_signed_rank: size mismatch");
  }
  if (a.empty()) throw std::invalid_argument("wilcoxon_signed_rank: empty input");

  std::vector<double> magnitudes;
  std::vector<int> signs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double difference = a[i] - b[i];
    if (difference == 0.0) continue;  // Wilcoxon drops exact zeros
    magnitudes.push_back(std::abs(difference));
    signs.push_back(difference > 0.0 ? 1 : -1);
  }

  WilcoxonResult result;
  result.n_effective = magnitudes.size();
  if (magnitudes.empty()) return result;  // all pairs tied: p = 1

  const std::vector<double> ranks = ranks_with_ties(magnitudes);
  double positive = 0.0;
  double negative = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    (signs[i] > 0 ? positive : negative) += ranks[i];
  }
  result.w = std::min(positive, negative);

  const auto n = static_cast<double>(result.n_effective);
  if (result.n_effective < 6) return result;  // too few pairs for significance

  // Normal approximation with tie correction and continuity correction.
  const double mean_w = n * (n + 1.0) / 4.0;
  double tie_term = 0.0;
  {
    std::vector<double> sorted(magnitudes);
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double var_w = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_term / 48.0;
  if (var_w <= 0.0) return result;
  const double z = (result.w - mean_w + 0.5) / std::sqrt(var_w);
  result.p_value = std::clamp(2.0 * normal_cdf(z), 0.0, 1.0);
  return result;
}

double spearman_rho(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("spearman_rho: size mismatch");
  if (a.size() < 2) throw std::invalid_argument("spearman_rho: need n >= 2");
  const std::vector<double> rank_a = ranks_with_ties(a);
  const std::vector<double> rank_b = ranks_with_ties(b);
  const double mean_rank = (static_cast<double>(a.size()) + 1.0) / 2.0;
  double covariance = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = rank_a[i] - mean_rank;
    const double db = rank_b[i] - mean_rank;
    covariance += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;  // a constant input has no ranking
  return covariance / std::sqrt(var_a * var_b);
}

std::vector<double> holm_bonferroni(std::span<const double> p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return p_values[x] < p_values[y]; });
  std::vector<double> adjusted(m, 1.0);
  double running_max = 0.0;
  for (std::size_t rank = 0; rank < m; ++rank) {
    const std::size_t index = order[rank];
    const double scaled =
        p_values[index] * static_cast<double>(m - rank);  // (m - rank) tests remain
    running_max = std::max(running_max, scaled);
    adjusted[index] = std::min(1.0, running_max);
  }
  return adjusted;
}

}  // namespace repro::stats
