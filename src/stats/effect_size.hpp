#pragma once
// Common Language Effect Size (McGraw & Wong 1992) with the Vargha-Delaney
// tie handling the paper cites (Eq. 1):
//   A(X_A, X_B) = P(X_A > X_B) + 0.5 * P(X_A = X_B)
// Interpreted as the probability that a random draw from A exceeds a random
// draw from B. The paper's Fig. 4b plots this for "algorithm outperforms
// Random Search", where outperform means *lower runtime*.

#include <span>

namespace repro::stats {

/// Exact CLES / Vargha-Delaney A computed from all |A|*|B| pairs via ranks
/// (O((n+m) log(n+m))). Throws std::invalid_argument on empty input.
[[nodiscard]] double cles_greater(std::span<const double> a, std::span<const double> b);

/// CLES that a draw from `a` is *smaller* than a draw from `b` — the
/// "lower runtime wins" direction used for autotuning outcomes.
[[nodiscard]] double cles_less(std::span<const double> a, std::span<const double> b);

/// Vargha-Delaney magnitude labels ("negligible", "small", "medium",
/// "large") from the customary 0.56/0.64/0.71 thresholds on |A - 0.5| + 0.5.
[[nodiscard]] const char* vargha_delaney_magnitude(double a_measure);

}  // namespace repro::stats
