#pragma once
// Row-major image container plus PGM/PPM output used by the examples.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace repro::imagecl {

template <typename T>
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, T fill = T{})
      : width_(width), height_(height), data_(width * height, fill) {}

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T& at(std::size_t x, std::size_t y) { return data_[y * width_ + x]; }
  [[nodiscard]] const T& at(std::size_t x, std::size_t y) const {
    return data_[y * width_ + x];
  }

  /// Border-clamped read (stencil kernels clamp at image edges).
  [[nodiscard]] T at_clamped(std::int64_t x, std::int64_t y) const {
    const std::int64_t cx = x < 0 ? 0 : (x >= static_cast<std::int64_t>(width_)
                                             ? static_cast<std::int64_t>(width_) - 1
                                             : x);
    const std::int64_t cy = y < 0 ? 0 : (y >= static_cast<std::int64_t>(height_)
                                             ? static_cast<std::int64_t>(height_) - 1
                                             : y);
    return data_[static_cast<std::size_t>(cy) * width_ + static_cast<std::size_t>(cx)];
  }

  [[nodiscard]] std::vector<T>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<T> data_;
};

/// Write a grayscale image as binary PGM, linearly normalizing values to
/// 0..255. Returns false on IO failure.
bool write_pgm(const Image<float>& image, const std::string& path);

/// Write a false-color (iteration-count style) image as binary PPM using a
/// smooth blue-orange colormap. Returns false on IO failure.
bool write_ppm_colormap(const Image<float>& image, const std::string& path);

}  // namespace repro::imagecl
