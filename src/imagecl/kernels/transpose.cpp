#include "imagecl/kernels/transpose.hpp"

#include <stdexcept>

namespace repro::imagecl {

Image<float> transpose_reference(const Image<float>& input) {
  Image<float> out(input.height(), input.width());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      out.at(y, x) = input.at(x, y);
    }
  }
  return out;
}

void run_transpose(const simgpu::Device& device, const simgpu::KernelConfig& config,
                   const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
                   simgpu::TracedBuffer<float>& out_buffer, simgpu::TraceRecorder* trace) {
  const std::uint64_t width = input.width();
  const std::uint64_t height = input.height();
  if (in_buffer.size() != width * height || out_buffer.size() != width * height) {
    throw std::invalid_argument("run_transpose: buffer size mismatch");
  }
  const simgpu::GridExtent extent{width, height, 1};
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const float value = in_buffer.read(ctx, y * width + x);
          out_buffer.write(ctx, x * height + y, value);
        });
  }, trace);
}

simgpu::KernelCostSpec transpose_cost_spec(std::uint64_t width, std::uint64_t height) {
  simgpu::KernelCostSpec spec;
  spec.name = "transpose";
  spec.extent = {width, height, 1};
  spec.flops_per_element = 1.0;  // pure data movement
  spec.element_bytes = 4;

  simgpu::WarpAccessSpec load;
  load.element_bytes = 4;
  load.pitch_x = width;
  load.pitch_y = height;
  spec.loads = {load};

  // The store writes out[x * height + y]: column-major relative to the
  // thread grid — the scattered half of the transpose.
  simgpu::WarpAccessSpec store;
  store.element_bytes = 4;
  store.pitch_x = height;  // column stride of the output
  store.pitch_y = width;
  store.column_major = true;
  spec.stores = {store};

  spec.regs_base = 14;
  spec.regs_per_extra_element = 1.5;
  spec.ilp = 4.0;
  return spec;
}

}  // namespace repro::imagecl
