#pragma once
// The ImageCL "Harris" benchmark: Harris corner detection on an X-by-Y image
// (paper Section V-D; 8192x8192 by default).
//
// Per output pixel the kernel computes the structure tensor over a 5x5
// window of Sobel gradients (gradients recomputed in-window, single-pass
// ImageCL style) and the Harris response R = det(M) - k*trace(M)^2 with
// k = 0.04. The stencil halo is radius 3 (window radius 2 + Sobel radius 1);
// the cost model exposes both a direct-read path and a shared-memory tile
// path whose capacity knee is a central landscape feature.

#include <cstdint>

#include "imagecl/image.hpp"
#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

inline constexpr double kHarrisK = 0.04;
inline constexpr std::uint32_t kHarrisWindowRadius = 2;  ///< 5x5 window
inline constexpr std::uint32_t kHarrisSobelRadius = 1;
inline constexpr std::uint32_t kHarrisHaloRadius = kHarrisWindowRadius + kHarrisSobelRadius;

/// Scalar reference Harris response (border-clamped).
[[nodiscard]] Image<float> harris_reference(const Image<float>& input);

/// Run the Harris kernel on the simulated device.
void run_harris(const simgpu::Device& device, const simgpu::KernelConfig& config,
                const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
                simgpu::TracedBuffer<float>& out_buffer,
                simgpu::TraceRecorder* trace = nullptr);

/// Analytical cost description for a width-by-height image.
[[nodiscard]] simgpu::KernelCostSpec harris_cost_spec(std::uint64_t width,
                                                      std::uint64_t height);

}  // namespace repro::imagecl
