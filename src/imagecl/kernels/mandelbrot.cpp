#include "imagecl/kernels/mandelbrot.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace repro::imagecl {
namespace {

constexpr std::size_t kFieldResolution = 1024;

/// Cached render of the viewport used for the intensity field and
/// mean-iteration statistics. 1024^2 keeps enough of the boundary's
/// high-frequency structure that warp-footprint-sized windows see real
/// iteration variance (the divergence model samples it with *nearest*
/// lookup for the same reason). Immutable after construction.
const Image<float>& field_map() {
  static const Image<float> map = mandelbrot_reference(kFieldResolution, kFieldResolution);
  return map;
}

}  // namespace

std::uint32_t mandelbrot_iterations(std::uint64_t x, std::uint64_t y, std::uint64_t width,
                                    std::uint64_t height, std::uint32_t max_iter) {
  const double cr = kMandelbrotMinX + (kMandelbrotMaxX - kMandelbrotMinX) *
                                          (static_cast<double>(x) + 0.5) /
                                          static_cast<double>(width);
  const double ci = kMandelbrotMinY + (kMandelbrotMaxY - kMandelbrotMinY) *
                                          (static_cast<double>(y) + 0.5) /
                                          static_cast<double>(height);
  double zr = 0.0;
  double zi = 0.0;
  std::uint32_t iter = 0;
  while (iter < max_iter && zr * zr + zi * zi <= 4.0) {
    const double next_zr = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = next_zr;
    ++iter;
  }
  return iter;
}

Image<float> mandelbrot_reference(std::size_t width, std::size_t height,
                                  std::uint32_t max_iter) {
  Image<float> out(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      out.at(x, y) = static_cast<float>(
          mandelbrot_iterations(x, y, width, height, max_iter));
    }
  }
  return out;
}

void run_mandelbrot(const simgpu::Device& device, const simgpu::KernelConfig& config,
                    std::uint64_t width, std::uint64_t height,
                    simgpu::TracedBuffer<float>& out_buffer, simgpu::TraceRecorder* trace,
                    std::uint32_t max_iter) {
  const simgpu::GridExtent extent{width, height, 1};
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const auto iterations = mandelbrot_iterations(x, y, width, height, max_iter);
          out_buffer.write(ctx, y * width + x, static_cast<float>(iterations));
        });
  }, trace);
}

double mandelbrot_mean_iterations() {
  static const double mean = [] {
    const Image<float>& map = field_map();
    double sum = 0.0;
    for (float v : map.data()) sum += v;
    return sum / static_cast<double>(map.size());
  }();
  return mean;
}

simgpu::IntensityField mandelbrot_intensity_field() {
  const double mean = mandelbrot_mean_iterations();
  return [mean](double nx, double ny) {
    const Image<float>& map = field_map();
    // Nearest-neighbour lookup: bilinear smoothing would erase exactly the
    // pixel-scale variance that causes warp divergence.
    const auto x0 = static_cast<std::size_t>(nx * static_cast<double>(map.width()));
    const auto y0 = static_cast<std::size_t>(ny * static_cast<double>(map.height()));
    return map.at(std::min(x0, map.width() - 1), std::min(y0, map.height() - 1)) / mean;
  };
}

simgpu::KernelCostSpec mandelbrot_cost_spec(std::uint64_t width, std::uint64_t height) {
  simgpu::KernelCostSpec spec;
  spec.name = "mandelbrot";
  spec.extent = {width, height, 1};
  // ~8 flops per iteration of the escape loop, at the viewport's mean
  // iteration count; divergence scales warps toward their max lane.
  spec.flops_per_element = 8.0 * mandelbrot_mean_iterations();
  spec.element_bytes = 4;
  spec.loads = {};  // no global input

  simgpu::WarpAccessSpec store;
  store.element_bytes = 4;
  store.pitch_x = width;
  store.pitch_y = height;
  store.offsets = {{0, 0, 0}};
  spec.stores = {store};

  spec.regs_base = 28;
  spec.regs_per_extra_element = 2.5;
  spec.ilp = 1.5;  // mostly a serial dependency chain per pixel
  spec.intensity = mandelbrot_intensity_field();
  return spec;
}

}  // namespace repro::imagecl
