#include "imagecl/kernels/add.hpp"

#include <stdexcept>

namespace repro::imagecl {

std::vector<float> add_reference(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("add_reference: size mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

void run_add(const simgpu::Device& device, const simgpu::KernelConfig& config,
             std::uint64_t width, std::uint64_t height,
             simgpu::TracedBuffer<float>& a, simgpu::TracedBuffer<float>& b,
             simgpu::TracedBuffer<float>& out, simgpu::TraceRecorder* trace) {
  if (a.size() != width * height || a.size() != b.size() || a.size() != out.size()) {
    throw std::invalid_argument("run_add: buffer size mismatch");
  }
  const simgpu::GridExtent extent{width, height, 1};
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const std::size_t index = y * width + x;
          out.write(ctx, index, a.read(ctx, index) + b.read(ctx, index));
        });
  }, trace);
}

simgpu::KernelCostSpec add_cost_spec(std::uint64_t width, std::uint64_t height) {
  simgpu::KernelCostSpec spec;
  spec.name = "add";
  spec.extent = {width, height, 1};
  spec.flops_per_element = 1.0;
  spec.element_bytes = 4;
  simgpu::WarpAccessSpec stream;
  stream.element_bytes = 4;
  stream.pitch_x = width;
  stream.pitch_y = height;
  stream.offsets = {{0, 0, 0}};
  spec.loads = {stream, stream};  // two input images
  spec.stores = {stream};
  spec.regs_base = 14;
  spec.regs_per_extra_element = 1.5;
  spec.ilp = 4.0;  // independent elements, fully pipelined
  return spec;
}

}  // namespace repro::imagecl
