#pragma once
// The ImageCL "Add" benchmark: element-wise addition of two images (the
// paper runs every benchmark at X = Y = 8192, Section V-D). Pure streaming:
// memory-bound, no reuse, no divergence — the tuning landscape is carved by
// coalescing, occupancy and device fill alone, which makes it the
// "simple" end of the suite.

#include <cstdint>
#include <vector>

#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

/// Scalar reference: out[i] = a[i] + b[i].
[[nodiscard]] std::vector<float> add_reference(const std::vector<float>& a,
                                               const std::vector<float>& b);

/// Run the Add kernel on the simulated device over a width-by-height grid;
/// buffers hold width*height elements row-major.
void run_add(const simgpu::Device& device, const simgpu::KernelConfig& config,
             std::uint64_t width, std::uint64_t height,
             simgpu::TracedBuffer<float>& a, simgpu::TracedBuffer<float>& b,
             simgpu::TracedBuffer<float>& out,
             simgpu::TraceRecorder* trace = nullptr);

/// Analytical cost description for a width-by-height image.
[[nodiscard]] simgpu::KernelCostSpec add_cost_spec(std::uint64_t width,
                                                   std::uint64_t height);

}  // namespace repro::imagecl
