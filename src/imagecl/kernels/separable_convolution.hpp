#pragma once
// Extended-suite benchmark: separable 5x5 Gaussian convolution — the
// two-pass pipeline from the original ImageCL/AUMA evaluation (Falch &
// Elster 2017 tuned separable convolution among their OpenCL benchmarks).
//
// Pass 1 convolves rows with the 1-D binomial kernel into an intermediate
// buffer; pass 2 convolves the intermediate's columns. Both launches share
// the one tuning configuration, so the tuner must trade off a row-friendly
// against a column-friendly shape — a qualitatively different landscape
// from any single-pass kernel. The end-to-end result equals the dense 5x5
// convolution up to border handling (verified in tests for the interior).

#include <array>
#include <cstdint>

#include "imagecl/image.hpp"
#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

inline constexpr std::uint32_t kSeparableRadius = 2;  ///< 1-D kernel 1 4 6 4 1

/// The normalized 1-D binomial kernel (1, 4, 6, 4, 1) / 16.
[[nodiscard]] const std::array<float, 5>& binomial5();

/// Scalar reference: horizontal then vertical pass (border-clamped).
[[nodiscard]] Image<float> separable_convolution_reference(const Image<float>& input);

/// Run both passes on the simulated device with one configuration.
/// `scratch` holds the intermediate image (same size as input/output).
void run_separable_convolution(const simgpu::Device& device,
                               const simgpu::KernelConfig& config,
                               const Image<float>& input,
                               simgpu::TracedBuffer<float>& in_buffer,
                               simgpu::TracedBuffer<float>& scratch,
                               simgpu::TracedBuffer<float>& out_buffer,
                               simgpu::TraceRecorder* trace = nullptr);

/// Analytical cost descriptions: one spec per pass (row pass, column pass).
[[nodiscard]] std::vector<simgpu::KernelCostSpec> separable_convolution_cost_specs(
    std::uint64_t width, std::uint64_t height);

}  // namespace repro::imagecl
