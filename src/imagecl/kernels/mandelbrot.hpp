#pragma once
// The ImageCL "Mandelbrot" benchmark: render escape-iteration counts of the
// Mandelbrot set over an X-by-Y grid (paper Section V-D; 8192x8192,
// classic viewport). Compute-bound with strong per-pixel work variation:
// warp divergence couples the tuning parameters to the *content* of the
// image, which is why its landscape differs qualitatively from Add/Harris.

#include <cstdint>

#include "imagecl/image.hpp"
#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

inline constexpr std::uint32_t kMandelbrotMaxIter = 256;
// Classic full-set viewport.
inline constexpr double kMandelbrotMinX = -2.0;
inline constexpr double kMandelbrotMaxX = 0.75;
inline constexpr double kMandelbrotMinY = -1.25;
inline constexpr double kMandelbrotMaxY = 1.25;

/// Escape iterations for pixel (x, y) of a width-by-height render.
[[nodiscard]] std::uint32_t mandelbrot_iterations(std::uint64_t x, std::uint64_t y,
                                                  std::uint64_t width,
                                                  std::uint64_t height,
                                                  std::uint32_t max_iter = kMandelbrotMaxIter);

/// Scalar reference render.
[[nodiscard]] Image<float> mandelbrot_reference(std::size_t width, std::size_t height,
                                                std::uint32_t max_iter = kMandelbrotMaxIter);

/// Run the Mandelbrot kernel on the simulated device.
void run_mandelbrot(const simgpu::Device& device, const simgpu::KernelConfig& config,
                    std::uint64_t width, std::uint64_t height,
                    simgpu::TracedBuffer<float>& out_buffer,
                    simgpu::TraceRecorder* trace = nullptr,
                    std::uint32_t max_iter = kMandelbrotMaxIter);

/// Mean escape-iteration count of the viewport (from a cached 256x256
/// pre-render) — used to size flops_per_element.
[[nodiscard]] double mandelbrot_mean_iterations();

/// Work-intensity field w(x, y) = iterations at normalized viewport
/// coordinates / mean iterations, bilinearly interpolated from the cached
/// pre-render. Drives the divergence model.
[[nodiscard]] simgpu::IntensityField mandelbrot_intensity_field();

/// Analytical cost description for a width-by-height render.
[[nodiscard]] simgpu::KernelCostSpec mandelbrot_cost_spec(std::uint64_t width,
                                                          std::uint64_t height);

}  // namespace repro::imagecl
