#include "imagecl/kernels/sobel.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::imagecl {
namespace {

template <typename ReadFn>
float sobel_at(std::int64_t x, std::int64_t y, ReadFn&& read) {
  const float tl = read(x - 1, y - 1), tc = read(x, y - 1), tr = read(x + 1, y - 1);
  const float ml = read(x - 1, y), mr = read(x + 1, y);
  const float bl = read(x - 1, y + 1), bc = read(x, y + 1), br = read(x + 1, y + 1);
  const float gx = (tr + 2.0f * mr + br) - (tl + 2.0f * ml + bl);
  const float gy = (bl + 2.0f * bc + br) - (tl + 2.0f * tc + tr);
  return std::sqrt(gx * gx + gy * gy);
}

}  // namespace

Image<float> sobel_reference(const Image<float>& input) {
  Image<float> out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      out.at(x, y) = sobel_at(
          static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
          [&](std::int64_t px, std::int64_t py) { return input.at_clamped(px, py); });
    }
  }
  return out;
}

void run_sobel(const simgpu::Device& device, const simgpu::KernelConfig& config,
               const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
               simgpu::TracedBuffer<float>& out_buffer, simgpu::TraceRecorder* trace) {
  const std::uint64_t width = input.width();
  const std::uint64_t height = input.height();
  if (in_buffer.size() != width * height || out_buffer.size() != width * height) {
    throw std::invalid_argument("run_sobel: buffer size mismatch");
  }
  const simgpu::GridExtent extent{width, height, 1};
  const auto w = static_cast<std::int64_t>(width);
  const auto h = static_cast<std::int64_t>(height);
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const float value = sobel_at(
              static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
              [&](std::int64_t px, std::int64_t py) {
                const std::int64_t cx = px < 0 ? 0 : (px >= w ? w - 1 : px);
                const std::int64_t cy = py < 0 ? 0 : (py >= h ? h - 1 : py);
                return in_buffer.read(ctx, static_cast<std::size_t>(cy * w + cx));
              });
          out_buffer.write(ctx, y * width + x, value);
        });
  }, trace);
}

simgpu::KernelCostSpec sobel_cost_spec(std::uint64_t width, std::uint64_t height) {
  simgpu::KernelCostSpec spec;
  spec.name = "sobel";
  spec.extent = {width, height, 1};
  spec.flops_per_element = 22.0 + 8.0;  // two filters + magnitude (sqrt ~ 8)
  spec.element_bytes = 4;

  simgpu::WarpAccessSpec stencil;
  stencil.element_bytes = 4;
  stencil.pitch_x = width;
  stencil.pitch_y = height;
  stencil.offsets.clear();
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) stencil.offsets.push_back({dx, dy, 0});
  }
  spec.loads = {stencil};

  simgpu::WarpAccessSpec store;
  store.element_bytes = 4;
  store.pitch_x = width;
  store.pitch_y = height;
  spec.stores = {store};

  spec.shared_tiling_available = true;
  spec.stencil_radius = 1;
  spec.regs_base = 22;
  spec.regs_per_extra_element = 2.0;
  spec.ilp = 3.0;
  return spec;
}

}  // namespace repro::imagecl
