#include "imagecl/kernels/convolution.hpp"

#include <stdexcept>

namespace repro::imagecl {

const std::array<float, 25>& gaussian5x5() {
  // Outer product of binomial (1, 4, 6, 4, 1) / 16.
  static const std::array<float, 25> weights = [] {
    const float row[5] = {1.0f, 4.0f, 6.0f, 4.0f, 1.0f};
    std::array<float, 25> out{};
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) out[y * 5 + x] = row[y] * row[x] / 256.0f;
    }
    return out;
  }();
  return weights;
}

namespace {

template <typename ReadFn>
float convolve_at(std::int64_t x, std::int64_t y, ReadFn&& read) {
  const auto& weights = gaussian5x5();
  float sum = 0.0f;
  const auto radius = static_cast<std::int64_t>(kConvolutionRadius);
  for (std::int64_t v = -radius; v <= radius; ++v) {
    for (std::int64_t u = -radius; u <= radius; ++u) {
      sum += weights[(v + radius) * 5 + (u + radius)] * read(x + u, y + v);
    }
  }
  return sum;
}

}  // namespace

Image<float> convolution_reference(const Image<float>& input) {
  Image<float> out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      out.at(x, y) = convolve_at(
          static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
          [&](std::int64_t px, std::int64_t py) { return input.at_clamped(px, py); });
    }
  }
  return out;
}

void run_convolution(const simgpu::Device& device, const simgpu::KernelConfig& config,
                     const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
                     simgpu::TracedBuffer<float>& out_buffer,
                     simgpu::TraceRecorder* trace) {
  const std::uint64_t width = input.width();
  const std::uint64_t height = input.height();
  if (in_buffer.size() != width * height || out_buffer.size() != width * height) {
    throw std::invalid_argument("run_convolution: buffer size mismatch");
  }
  const simgpu::GridExtent extent{width, height, 1};
  const auto w = static_cast<std::int64_t>(width);
  const auto h = static_cast<std::int64_t>(height);
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const float value = convolve_at(
              static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
              [&](std::int64_t px, std::int64_t py) {
                const std::int64_t cx = px < 0 ? 0 : (px >= w ? w - 1 : px);
                const std::int64_t cy = py < 0 ? 0 : (py >= h ? h - 1 : py);
                return in_buffer.read(ctx, static_cast<std::size_t>(cy * w + cx));
              });
          out_buffer.write(ctx, y * width + x, value);
        });
  }, trace);
}

simgpu::KernelCostSpec convolution_cost_spec(std::uint64_t width, std::uint64_t height) {
  simgpu::KernelCostSpec spec;
  spec.name = "convolution";
  spec.extent = {width, height, 1};
  spec.flops_per_element = 25.0 * 2.0;  // multiply-add per tap
  spec.element_bytes = 4;

  simgpu::WarpAccessSpec stencil;
  stencil.element_bytes = 4;
  stencil.pitch_x = width;
  stencil.pitch_y = height;
  stencil.offsets.clear();
  const auto radius = static_cast<std::int32_t>(kConvolutionRadius);
  for (std::int32_t dy = -radius; dy <= radius; ++dy) {
    for (std::int32_t dx = -radius; dx <= radius; ++dx) {
      stencil.offsets.push_back({dx, dy, 0});
    }
  }
  spec.loads = {stencil};

  simgpu::WarpAccessSpec store;
  store.element_bytes = 4;
  store.pitch_x = width;
  store.pitch_y = height;
  spec.stores = {store};

  spec.shared_tiling_available = true;
  spec.stencil_radius = kConvolutionRadius;
  spec.regs_base = 26;
  spec.regs_per_extra_element = 2.5;
  spec.ilp = 2.5;
  return spec;
}

}  // namespace repro::imagecl
