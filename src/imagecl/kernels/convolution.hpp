#pragma once
// Extended-suite benchmark: 5x5 Gaussian convolution (the blur kernel the
// ImageCL/AUMA papers evaluate). A classic stencil: lighter arithmetic than
// Harris but the same shared-memory tiling trade-off at radius 2.
// Part of the "wider range of benchmarks" the paper lists as current work
// (Section VIII-A, citing the BAT suite).

#include <array>
#include <cstdint>

#include "imagecl/image.hpp"
#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

inline constexpr std::uint32_t kConvolutionRadius = 2;  ///< 5x5 kernel

/// The 5x5 Gaussian weights (integer binomial approximation, normalized).
[[nodiscard]] const std::array<float, 25>& gaussian5x5();

/// Scalar reference convolution (border-clamped).
[[nodiscard]] Image<float> convolution_reference(const Image<float>& input);

/// Run the convolution kernel on the simulated device.
void run_convolution(const simgpu::Device& device, const simgpu::KernelConfig& config,
                     const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
                     simgpu::TracedBuffer<float>& out_buffer,
                     simgpu::TraceRecorder* trace = nullptr);

/// Analytical cost description for a width-by-height image.
[[nodiscard]] simgpu::KernelCostSpec convolution_cost_spec(std::uint64_t width,
                                                           std::uint64_t height);

}  // namespace repro::imagecl
