#pragma once
// Extended-suite benchmark: image transpose. Coalescing-pathological by
// construction — reads are row-contiguous but writes scatter column-major,
// so the tuning landscape is dominated by the work-group *shape* (tall
// work-groups amortize the scattered dimension), not by arithmetic.

#include <cstdint>

#include "imagecl/image.hpp"
#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

/// Scalar reference transpose: out(y, x) = in(x, y).
[[nodiscard]] Image<float> transpose_reference(const Image<float>& input);

/// Run the transpose kernel on the simulated device. `out_buffer` holds the
/// height-by-width result.
void run_transpose(const simgpu::Device& device, const simgpu::KernelConfig& config,
                   const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
                   simgpu::TracedBuffer<float>& out_buffer,
                   simgpu::TraceRecorder* trace = nullptr);

/// Analytical cost description for a width-by-height input image.
[[nodiscard]] simgpu::KernelCostSpec transpose_cost_spec(std::uint64_t width,
                                                         std::uint64_t height);

}  // namespace repro::imagecl
