#include "imagecl/kernels/harris.hpp"

#include <stdexcept>

namespace repro::imagecl {
namespace {

/// Harris response at (x, y) reading pixels through `read(x, y)` (which must
/// clamp at borders). Shared by the scalar reference and the device kernel
/// so functional equivalence is by construction of the *access path*, not
/// the arithmetic.
template <typename ReadFn>
float harris_response_at(std::int64_t x, std::int64_t y, ReadFn&& read) {
  float sum_ixx = 0.0f;
  float sum_iyy = 0.0f;
  float sum_ixy = 0.0f;
  const auto radius = static_cast<std::int64_t>(kHarrisWindowRadius);
  for (std::int64_t v = -radius; v <= radius; ++v) {
    for (std::int64_t u = -radius; u <= radius; ++u) {
      const std::int64_t px = x + u;
      const std::int64_t py = y + v;
      // Sobel gradients, recomputed per window position (single-pass style).
      const float tl = read(px - 1, py - 1), tc = read(px, py - 1), tr = read(px + 1, py - 1);
      const float ml = read(px - 1, py), mr = read(px + 1, py);
      const float bl = read(px - 1, py + 1), bc = read(px, py + 1), br = read(px + 1, py + 1);
      const float ix = (tr + 2.0f * mr + br) - (tl + 2.0f * ml + bl);
      const float iy = (bl + 2.0f * bc + br) - (tl + 2.0f * tc + tr);
      sum_ixx += ix * ix;
      sum_iyy += iy * iy;
      sum_ixy += ix * iy;
    }
  }
  const float det = sum_ixx * sum_iyy - sum_ixy * sum_ixy;
  const float trace = sum_ixx + sum_iyy;
  return det - static_cast<float>(kHarrisK) * trace * trace;
}

}  // namespace

Image<float> harris_reference(const Image<float>& input) {
  Image<float> out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      out.at(x, y) = harris_response_at(
          static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
          [&](std::int64_t px, std::int64_t py) { return input.at_clamped(px, py); });
    }
  }
  return out;
}

void run_harris(const simgpu::Device& device, const simgpu::KernelConfig& config,
                const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
                simgpu::TracedBuffer<float>& out_buffer, simgpu::TraceRecorder* trace) {
  const std::uint64_t width = input.width();
  const std::uint64_t height = input.height();
  if (in_buffer.size() != width * height || out_buffer.size() != width * height) {
    throw std::invalid_argument("run_harris: buffer size mismatch");
  }
  const simgpu::GridExtent extent{width, height, 1};
  const auto w = static_cast<std::int64_t>(width);
  const auto h = static_cast<std::int64_t>(height);
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const float response = harris_response_at(
              static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
              [&](std::int64_t px, std::int64_t py) {
                const std::int64_t cx = px < 0 ? 0 : (px >= w ? w - 1 : px);
                const std::int64_t cy = py < 0 ? 0 : (py >= h ? h - 1 : py);
                return in_buffer.read(ctx, static_cast<std::size_t>(cy * w + cx));
              });
          out_buffer.write(ctx, y * width + x, response);
        });
  }, trace);
}

simgpu::KernelCostSpec harris_cost_spec(std::uint64_t width, std::uint64_t height) {
  simgpu::KernelCostSpec spec;
  spec.name = "harris";
  spec.extent = {width, height, 1};
  // Per window position: 2 Sobel filters (~11 flops each) + 3 products +
  // 3 accumulations => ~28 flops, over 25 positions, plus the response.
  spec.flops_per_element = 25.0 * 28.0 + 10.0;
  spec.element_bytes = 4;

  // Direct path: the unique 7x7 halo footprint per output element (register
  // / L1 reuse collapses the ~225 raw reads onto the unique pixels).
  simgpu::WarpAccessSpec stencil;
  stencil.element_bytes = 4;
  stencil.pitch_x = width;
  stencil.pitch_y = height;
  const auto radius = static_cast<std::int32_t>(kHarrisHaloRadius);
  stencil.offsets.clear();
  for (std::int32_t dy = -radius; dy <= radius; ++dy) {
    for (std::int32_t dx = -radius; dx <= radius; ++dx) {
      stencil.offsets.push_back({dx, dy, 0});
    }
  }
  spec.loads = {stencil};

  simgpu::WarpAccessSpec store;
  store.element_bytes = 4;
  store.pitch_x = width;
  store.pitch_y = height;
  store.offsets = {{0, 0, 0}};
  spec.stores = {store};

  spec.shared_tiling_available = true;
  spec.stencil_radius = kHarrisHaloRadius;
  spec.tiled_buffers = 1;

  spec.regs_base = 40;
  spec.regs_per_extra_element = 3.0;
  spec.ilp = 2.0;
  return spec;
}

}  // namespace repro::imagecl
