#pragma once
// Extended-suite benchmark: Sobel edge magnitude. The lightest stencil in
// the suite (radius 1) — memory-bound with modest reuse, so its landscape
// sits between Add (pure streaming) and Harris (heavy stencil).

#include <cstdint>

#include "imagecl/image.hpp"
#include "simgpu/device.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

/// Scalar reference Sobel gradient magnitude (border-clamped).
[[nodiscard]] Image<float> sobel_reference(const Image<float>& input);

/// Run the Sobel kernel on the simulated device.
void run_sobel(const simgpu::Device& device, const simgpu::KernelConfig& config,
               const Image<float>& input, simgpu::TracedBuffer<float>& in_buffer,
               simgpu::TracedBuffer<float>& out_buffer,
               simgpu::TraceRecorder* trace = nullptr);

/// Analytical cost description for a width-by-height image.
[[nodiscard]] simgpu::KernelCostSpec sobel_cost_spec(std::uint64_t width,
                                                     std::uint64_t height);

}  // namespace repro::imagecl
