#include "imagecl/kernels/separable_convolution.hpp"

#include <stdexcept>

namespace repro::imagecl {

const std::array<float, 5>& binomial5() {
  static const std::array<float, 5> weights = {1.0f / 16.0f, 4.0f / 16.0f,
                                               6.0f / 16.0f, 4.0f / 16.0f,
                                               1.0f / 16.0f};
  return weights;
}

namespace {

template <typename ReadFn>
float convolve_row(std::int64_t x, std::int64_t y, ReadFn&& read) {
  float sum = 0.0f;
  for (std::int64_t u = -2; u <= 2; ++u) {
    sum += binomial5()[u + 2] * read(x + u, y);
  }
  return sum;
}

template <typename ReadFn>
float convolve_column(std::int64_t x, std::int64_t y, ReadFn&& read) {
  float sum = 0.0f;
  for (std::int64_t v = -2; v <= 2; ++v) {
    sum += binomial5()[v + 2] * read(x, y + v);
  }
  return sum;
}

}  // namespace

Image<float> separable_convolution_reference(const Image<float>& input) {
  Image<float> horizontal(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      horizontal.at(x, y) = convolve_row(
          static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
          [&](std::int64_t px, std::int64_t py) { return input.at_clamped(px, py); });
    }
  }
  Image<float> out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      out.at(x, y) = convolve_column(
          static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
          [&](std::int64_t px, std::int64_t py) {
            return horizontal.at_clamped(px, py);
          });
    }
  }
  return out;
}

void run_separable_convolution(const simgpu::Device& device,
                               const simgpu::KernelConfig& config,
                               const Image<float>& input,
                               simgpu::TracedBuffer<float>& in_buffer,
                               simgpu::TracedBuffer<float>& scratch,
                               simgpu::TracedBuffer<float>& out_buffer,
                               simgpu::TraceRecorder* trace) {
  const std::uint64_t width = input.width();
  const std::uint64_t height = input.height();
  if (in_buffer.size() != width * height || scratch.size() != width * height ||
      out_buffer.size() != width * height) {
    throw std::invalid_argument("run_separable_convolution: buffer size mismatch");
  }
  const simgpu::GridExtent extent{width, height, 1};
  const auto w = static_cast<std::int64_t>(width);
  const auto h = static_cast<std::int64_t>(height);
  const auto clamp_x = [w](std::int64_t x) { return x < 0 ? 0 : (x >= w ? w - 1 : x); };
  const auto clamp_y = [h](std::int64_t y) { return y < 0 ? 0 : (y >= h ? h - 1 : y); };

  // Pass 1: rows, input -> scratch.
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const float value = convolve_row(
              static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
              [&](std::int64_t px, std::int64_t py) {
                return in_buffer.read(
                    ctx, static_cast<std::size_t>(py * w + clamp_x(px)));
              });
          scratch.write(ctx, y * width + x, value);
        });
  }, trace);

  // Pass 2: columns, scratch -> out.
  device.run(extent, config, [&](const simgpu::ThreadCtx& ctx) {
    simgpu::for_each_coarsened_element(
        ctx, config, extent, [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
          const float value = convolve_column(
              static_cast<std::int64_t>(x), static_cast<std::int64_t>(y),
              [&](std::int64_t px, std::int64_t py) {
                return scratch.read(
                    ctx, static_cast<std::size_t>(clamp_y(py) * w + px));
              });
          out_buffer.write(ctx, y * width + x, value);
        });
  }, trace);
}

std::vector<simgpu::KernelCostSpec> separable_convolution_cost_specs(
    std::uint64_t width, std::uint64_t height) {
  const auto radius = static_cast<std::int32_t>(kSeparableRadius);

  simgpu::KernelCostSpec rows;
  rows.name = "separable_rows";
  rows.extent = {width, height, 1};
  rows.flops_per_element = 5.0 * 2.0;
  rows.element_bytes = 4;
  simgpu::WarpAccessSpec row_loads;
  row_loads.element_bytes = 4;
  row_loads.pitch_x = width;
  row_loads.pitch_y = height;
  row_loads.offsets.clear();
  for (std::int32_t dx = -radius; dx <= radius; ++dx) row_loads.offsets.push_back({dx, 0, 0});
  rows.loads = {row_loads};
  simgpu::WarpAccessSpec store;
  store.element_bytes = 4;
  store.pitch_x = width;
  store.pitch_y = height;
  rows.stores = {store};
  rows.shared_tiling_available = false;  // 1-D halo: L1/L2 suffice
  rows.regs_base = 18;
  rows.regs_per_extra_element = 2.0;
  rows.ilp = 3.0;

  simgpu::KernelCostSpec columns = rows;
  columns.name = "separable_columns";
  simgpu::WarpAccessSpec column_loads = row_loads;
  column_loads.offsets.clear();
  for (std::int32_t dy = -radius; dy <= radius; ++dy) {
    column_loads.offsets.push_back({0, dy, 0});
  }
  columns.loads = {column_loads};

  return {rows, columns};
}

}  // namespace repro::imagecl
