#include "imagecl/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

namespace repro::imagecl {
namespace {

struct Range {
  float lo = 0.0f;
  float hi = 1.0f;
};

Range value_range(const Image<float>& image) {
  Range range{std::numeric_limits<float>::max(), std::numeric_limits<float>::lowest()};
  for (float v : image.data()) {
    range.lo = std::min(range.lo, v);
    range.hi = std::max(range.hi, v);
  }
  if (!(range.hi > range.lo)) range.hi = range.lo + 1.0f;
  return range;
}

}  // namespace

bool write_pgm(const Image<float>& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const Range range = value_range(image);
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  for (float v : image.data()) {
    const float t = (v - range.lo) / (range.hi - range.lo);
    out.put(static_cast<char>(std::clamp(t, 0.0f, 1.0f) * 255.0f));
  }
  return static_cast<bool>(out);
}

bool write_ppm_colormap(const Image<float>& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const Range range = value_range(image);
  out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  for (float v : image.data()) {
    const float t = std::clamp((v - range.lo) / (range.hi - range.lo), 0.0f, 1.0f);
    // Smooth blue -> cyan -> orange ramp.
    const float r = std::clamp(3.0f * t - 1.2f, 0.0f, 1.0f);
    const float g = std::clamp(1.6f * t, 0.0f, 1.0f) * 0.9f;
    const float b = std::clamp(1.0f - 1.4f * (t - 0.3f) * (t - 0.3f), 0.0f, 1.0f);
    out.put(static_cast<char>(r * 255.0f));
    out.put(static_cast<char>(g * 255.0f));
    out.put(static_cast<char>(b * 255.0f));
  }
  return static_cast<bool>(out);
}

}  // namespace repro::imagecl
