#include "imagecl/benchmark_suite.hpp"

#include <stdexcept>

#include "imagecl/kernels/add.hpp"
#include "imagecl/kernels/convolution.hpp"
#include "imagecl/kernels/harris.hpp"
#include "imagecl/kernels/mandelbrot.hpp"
#include "imagecl/kernels/separable_convolution.hpp"
#include "imagecl/kernels/sobel.hpp"
#include "imagecl/kernels/transpose.hpp"

namespace repro::imagecl {

std::shared_ptr<const Benchmark> make_benchmark(const std::string& name, std::uint64_t x,
                                                std::uint64_t y) {
  if (name == "add") {
    return std::make_shared<Benchmark>("add", add_cost_spec(x, y));
  }
  if (name == "harris") {
    return std::make_shared<Benchmark>("harris", harris_cost_spec(x, y));
  }
  if (name == "mandelbrot") {
    return std::make_shared<Benchmark>("mandelbrot", mandelbrot_cost_spec(x, y));
  }
  if (name == "convolution") {
    return std::make_shared<Benchmark>("convolution", convolution_cost_spec(x, y));
  }
  if (name == "sobel") {
    return std::make_shared<Benchmark>("sobel", sobel_cost_spec(x, y));
  }
  if (name == "transpose") {
    return std::make_shared<Benchmark>("transpose", transpose_cost_spec(x, y));
  }
  if (name == "separable") {
    return std::make_shared<Benchmark>("separable",
                                       separable_convolution_cost_specs(x, y));
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

const std::vector<std::shared_ptr<const Benchmark>>& suite() {
  static const std::vector<std::shared_ptr<const Benchmark>> benchmarks = {
      make_benchmark("add", kDefaultX, kDefaultY),
      make_benchmark("harris", kDefaultX, kDefaultY),
      make_benchmark("mandelbrot", kDefaultX, kDefaultY),
  };
  return benchmarks;
}

const std::vector<std::shared_ptr<const Benchmark>>& extended_suite() {
  static const std::vector<std::shared_ptr<const Benchmark>> benchmarks = [] {
    std::vector<std::shared_ptr<const Benchmark>> all = suite();
    all.push_back(make_benchmark("convolution", kDefaultX, kDefaultY));
    all.push_back(make_benchmark("sobel", kDefaultX, kDefaultY));
    all.push_back(make_benchmark("transpose", kDefaultX, kDefaultY));
    all.push_back(make_benchmark("separable", kDefaultX, kDefaultY));
    return all;
  }();
  return benchmarks;
}

std::shared_ptr<const Benchmark> benchmark_by_name(const std::string& name) {
  for (const auto& benchmark : extended_suite()) {
    if (benchmark->name() == name) return benchmark;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace repro::imagecl
