#pragma once
// The ImageCL benchmark suite used in the study: Add, Harris and Mandelbrot
// with the paper's default problem sizes (X = Y = 8192), bound to the
// analytical performance model per architecture.

#include <memory>
#include <string>
#include <vector>

#include "simgpu/arch.hpp"
#include "simgpu/noise.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::imagecl {

inline constexpr std::uint64_t kDefaultX = 8192;
inline constexpr std::uint64_t kDefaultY = 8192;

/// One benchmark of the suite: name + one analytical model per kernel
/// launch (the functional kernels live in imagecl/kernels/*). Most
/// benchmarks are single-pass; pipelines like separable convolution launch
/// several kernels per measurement, all sharing the tuning configuration.
class Benchmark {
 public:
  Benchmark(std::string name, simgpu::KernelCostSpec spec) : name_(std::move(name)) {
    passes_.emplace_back(std::move(spec));
  }
  Benchmark(std::string name, std::vector<simgpu::KernelCostSpec> passes)
      : name_(std::move(name)) {
    for (auto& spec : passes) passes_.emplace_back(std::move(spec));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The primary (first) pass — the whole model for single-pass benchmarks.
  [[nodiscard]] const simgpu::PerfModel& model() const noexcept { return passes_.front(); }
  [[nodiscard]] const std::vector<simgpu::PerfModel>& passes() const noexcept {
    return passes_;
  }

 private:
  std::string name_;
  std::vector<simgpu::PerfModel> passes_;
};

/// The three paper benchmarks at the default sizes. The returned objects
/// live for the process lifetime.
[[nodiscard]] const std::vector<std::shared_ptr<const Benchmark>>& suite();

/// The extended suite: the paper's three plus convolution, sobel, transpose
/// and the two-pass separable convolution pipeline (the "wider range of
/// benchmarks" of Section VIII-A).
[[nodiscard]] const std::vector<std::shared_ptr<const Benchmark>>& extended_suite();

/// Lookup by name over the extended suite ("add", "harris", "mandelbrot",
/// "convolution", "sobel", "transpose", "separable"); throws
/// std::out_of_range.
[[nodiscard]] std::shared_ptr<const Benchmark> benchmark_by_name(const std::string& name);

/// Construct a benchmark at a custom problem size (for tests/ablations).
[[nodiscard]] std::shared_ptr<const Benchmark> make_benchmark(const std::string& name,
                                                              std::uint64_t x,
                                                              std::uint64_t y);

}  // namespace repro::imagecl
