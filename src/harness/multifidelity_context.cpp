#include "harness/multifidelity_context.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace repro::harness {
namespace {

/// Scale a side length by sqrt(f), rounded up to a multiple of 8 elements
/// so row pitches stay 32-byte sector aligned.
std::uint64_t scaled_side(std::uint64_t side, double fidelity) {
  const double scaled = static_cast<double>(side) * std::sqrt(fidelity);
  const auto rounded = static_cast<std::uint64_t>(std::ceil(scaled / 8.0)) * 8;
  return std::max<std::uint64_t>(8, rounded);
}

}  // namespace

MultiFidelityContext::MultiFidelityContext(const std::string& benchmark_name,
                                           const simgpu::GpuArch& arch,
                                           std::vector<double> levels,
                                           std::uint64_t master_seed)
    : full_context_(imagecl::benchmark_by_name(benchmark_name), arch, 0, master_seed),
      arch_(arch) {
  noise_.sigma = arch.noise_sigma;
  const auto& full_spec =
      imagecl::benchmark_by_name(benchmark_name)->model().spec().extent;
  for (double level : levels) {
    if (level <= 0.0 || level >= 1.0) continue;
    Level entry;
    entry.benchmark = imagecl::make_benchmark(benchmark_name,
                                              scaled_side(full_spec.x, level),
                                              scaled_side(full_spec.y, level));
    entry.cache =
        std::make_unique<simgpu::CachedPerfModel>(entry.benchmark->model(), arch_);
    levels_.emplace(level, std::move(entry));
  }
}

double MultiFidelityContext::snap(double fidelity) const {
  double best = 1.0;
  double best_distance = std::abs(fidelity - 1.0);
  for (const auto& [level, entry] : levels_) {
    const double distance = std::abs(fidelity - level);
    if (distance < best_distance) {
      best = level;
      best_distance = distance;
    }
  }
  return best;
}

double MultiFidelityContext::true_time_us(const tuner::Configuration& config,
                                          double fidelity) const {
  const double level = snap(fidelity);
  if (level >= 1.0) return full_context_.true_time_us(config);
  if (!full_context_.space().in_range(config)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return levels_.at(level).cache->time_us(to_kernel_config(config));
}

tuner::MultiFidelityObjective MultiFidelityContext::make_objective(
    repro::Rng& rng) const {
  return [this, &rng](const tuner::Configuration& config, double fidelity) {
    tuner::Evaluation eval;
    const double truth = true_time_us(config, fidelity);
    if (std::isnan(truth)) return eval;
    eval.value = noise_.sample(truth, rng);
    eval.valid = true;
    return eval;
  };
}

}  // namespace repro::harness
