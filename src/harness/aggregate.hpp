#pragma once
// Aggregation of study outcomes into the paper's reported quantities:
//   Fig. 2  — median percentage-of-optimum per cell
//   Fig. 3  — mean of the Fig. 2 medians across panels, with 95% CI
//   Fig. 4a — median speedup over Random Search per cell
//   Fig. 4b — CLES over Random Search per cell (+ MWU significance)

#include <string>
#include <vector>

#include "harness/study.hpp"
#include "stats/descriptive.hpp"

namespace repro::harness {

/// Matrix of one scalar per (algorithm, sample size) for one panel;
/// NaN marks cells with no valid outcomes.
using CellMatrix = std::vector<std::vector<double>>;

/// Drop NaN outcomes (experiments with no valid configuration).
[[nodiscard]] std::vector<double> valid_outcomes(const CellOutcomes& cell);

/// Fig. 2 cell: median over experiments of optimum/outcome * 100 (<= 100).
[[nodiscard]] CellMatrix percent_of_optimum(const PanelResults& panel);

/// Fig. 4a cell: median(RS outcomes) / median(algorithm outcomes).
/// `rs_index` selects the Random Search row used as the baseline.
[[nodiscard]] CellMatrix speedup_over_rs(const PanelResults& panel, std::size_t rs_index);

/// Fig. 4b cell: CLES that the algorithm's outcome beats (is lower than)
/// Random Search's on a random pair of experiments.
[[nodiscard]] CellMatrix cles_over_rs(const PanelResults& panel, std::size_t rs_index);

/// Two-sided Mann-Whitney U p-value of algorithm vs RS per cell (NaN where
/// either side is empty).
[[nodiscard]] CellMatrix mwu_p_vs_rs(const PanelResults& panel, std::size_t rs_index);

struct AggregateSeries {
  std::vector<double> mean;   ///< per sample size, across panels
  std::vector<double> ci_lo;
  std::vector<double> ci_hi;
};

/// Fig. 3: for each algorithm, the mean (with 95% CI) over all panels of
/// that panel's Fig. 2 value at each sample size.
[[nodiscard]] std::vector<AggregateSeries> aggregate_percent_of_optimum(
    const StudyResults& results);

}  // namespace repro::harness
