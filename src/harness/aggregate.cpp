#include "harness/aggregate.hpp"

#include <cmath>
#include <limits>

#include "stats/effect_size.hpp"
#include "stats/mann_whitney.hpp"

namespace repro::harness {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

std::vector<double> valid_outcomes(const CellOutcomes& cell) {
  std::vector<double> out;
  out.reserve(cell.final_times_us.size());
  for (double value : cell.final_times_us) {
    if (!std::isnan(value)) out.push_back(value);
  }
  return out;
}

CellMatrix percent_of_optimum(const PanelResults& panel) {
  CellMatrix matrix(panel.cells.size());
  for (std::size_t a = 0; a < panel.cells.size(); ++a) {
    matrix[a].assign(panel.cells[a].size(), kNaN);
    for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
      const std::vector<double> outcomes = valid_outcomes(panel.cells[a][s]);
      if (outcomes.empty()) continue;
      const double median_time = stats::median(outcomes);
      matrix[a][s] = panel.optimum_us / median_time * 100.0;
    }
  }
  return matrix;
}

CellMatrix speedup_over_rs(const PanelResults& panel, std::size_t rs_index) {
  CellMatrix matrix(panel.cells.size());
  for (std::size_t a = 0; a < panel.cells.size(); ++a) {
    matrix[a].assign(panel.cells[a].size(), kNaN);
    for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
      const std::vector<double> rs = valid_outcomes(panel.cells[rs_index][s]);
      const std::vector<double> algo = valid_outcomes(panel.cells[a][s]);
      if (rs.empty() || algo.empty()) continue;
      matrix[a][s] = stats::median(rs) / stats::median(algo);
    }
  }
  return matrix;
}

CellMatrix cles_over_rs(const PanelResults& panel, std::size_t rs_index) {
  CellMatrix matrix(panel.cells.size());
  for (std::size_t a = 0; a < panel.cells.size(); ++a) {
    matrix[a].assign(panel.cells[a].size(), kNaN);
    for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
      const std::vector<double> rs = valid_outcomes(panel.cells[rs_index][s]);
      const std::vector<double> algo = valid_outcomes(panel.cells[a][s]);
      if (rs.empty() || algo.empty()) continue;
      // Probability that the algorithm's runtime is *lower* than RS's.
      matrix[a][s] = stats::cles_less(algo, rs);
    }
  }
  return matrix;
}

CellMatrix mwu_p_vs_rs(const PanelResults& panel, std::size_t rs_index) {
  CellMatrix matrix(panel.cells.size());
  for (std::size_t a = 0; a < panel.cells.size(); ++a) {
    matrix[a].assign(panel.cells[a].size(), kNaN);
    for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
      const std::vector<double> rs = valid_outcomes(panel.cells[rs_index][s]);
      const std::vector<double> algo = valid_outcomes(panel.cells[a][s]);
      if (rs.empty() || algo.empty()) continue;
      matrix[a][s] =
          stats::mann_whitney_u(algo, rs, stats::Alternative::kTwoSided).p_value;
    }
  }
  return matrix;
}

std::vector<AggregateSeries> aggregate_percent_of_optimum(const StudyResults& results) {
  const std::size_t num_algorithms = results.config.algorithms.size();
  const std::size_t num_sizes = results.config.sample_sizes.size();

  // Collect the per-panel Fig. 2 values.
  std::vector<std::vector<std::vector<double>>> samples(
      num_algorithms, std::vector<std::vector<double>>(num_sizes));
  for (const PanelResults& panel : results.panels) {
    const CellMatrix matrix = percent_of_optimum(panel);
    for (std::size_t a = 0; a < num_algorithms; ++a) {
      for (std::size_t s = 0; s < num_sizes; ++s) {
        if (!std::isnan(matrix[a][s])) samples[a][s].push_back(matrix[a][s]);
      }
    }
  }

  std::vector<AggregateSeries> series(num_algorithms);
  for (std::size_t a = 0; a < num_algorithms; ++a) {
    series[a].mean.assign(num_sizes, kNaN);
    series[a].ci_lo.assign(num_sizes, kNaN);
    series[a].ci_hi.assign(num_sizes, kNaN);
    for (std::size_t s = 0; s < num_sizes; ++s) {
      if (samples[a][s].empty()) continue;
      series[a].mean[s] = stats::mean(samples[a][s]);
      const stats::Interval ci = stats::mean_confidence_interval(samples[a][s], 0.95);
      series[a].ci_lo[s] = ci.lo;
      series[a].ci_hi[s] = ci.hi;
    }
  }
  return series;
}

}  // namespace repro::harness
