#pragma once
// Multi-fidelity objective for HyperBand/BOHB experiments: fidelity f in
// (0, 1] selects a proxy problem whose grid holds ~f times the elements
// (side lengths scaled by sqrt(f), rounded to sector-aligned multiples of
// 8). Lower fidelities are cheaper but only rank-correlate with the full
// problem — tile footprints, wave counts and cache residency all shift —
// which is precisely the trade-off multi-fidelity methods navigate.

#include <map>
#include <memory>
#include <string>

#include "harness/context.hpp"
#include "tuner/multifidelity/fidelity.hpp"

namespace repro::harness {

class MultiFidelityContext {
 public:
  /// `levels` are the fidelities HyperBand will visit (requests snap to the
  /// nearest level); 1.0 is added automatically if missing.
  MultiFidelityContext(const std::string& benchmark_name, const simgpu::GpuArch& arch,
                       std::vector<double> levels, std::uint64_t master_seed);

  /// Full-fidelity context (optimum, measurement, search space).
  [[nodiscard]] const BenchmarkContext& full() const noexcept { return full_context_; }

  /// Nearest registered fidelity level to `fidelity`.
  [[nodiscard]] double snap(double fidelity) const;

  /// Noiseless model time at a fidelity level; NaN if invalid.
  [[nodiscard]] double true_time_us(const tuner::Configuration& config,
                                    double fidelity) const;

  /// Objective closure bound to an experiment RNG.
  [[nodiscard]] tuner::MultiFidelityObjective make_objective(repro::Rng& rng) const;

 private:
  struct Level {
    std::shared_ptr<const imagecl::Benchmark> benchmark;
    std::unique_ptr<simgpu::CachedPerfModel> cache;
  };

  BenchmarkContext full_context_;
  simgpu::GpuArch arch_;
  simgpu::NoiseModel noise_;
  std::map<double, Level> levels_;  ///< partial fidelities only
};

}  // namespace repro::harness
