#pragma once
// Renderers that turn aggregated study results into the paper's figures:
// ASCII heatmaps / line charts on stdout plus CSV tables mirroring every
// printed number.

#include <string>

#include "common/table.hpp"
#include "harness/aggregate.hpp"
#include "harness/study.hpp"

namespace repro::harness {

struct FigureOutput {
  std::string text;      ///< human-readable rendering
  repro::Table table;    ///< same data, one row per printed cell
};

/// Fig. 2: percentage of optimum performance, one heatmap per panel.
[[nodiscard]] FigureOutput make_fig2(const StudyResults& results);

/// Fig. 3: aggregate mean-of-medians line plot with 95% CI.
[[nodiscard]] FigureOutput make_fig3(const StudyResults& results);

/// Fig. 4a: median speedup over Random Search, one heatmap per panel.
[[nodiscard]] FigureOutput make_fig4a(const StudyResults& results);

/// Fig. 4b: CLES over Random Search with MWU significance markers.
[[nodiscard]] FigureOutput make_fig4b(const StudyResults& results);

/// Index of the Random Search row in the study's algorithm list; throws
/// std::runtime_error when RS was excluded (Fig. 4 requires it).
[[nodiscard]] std::size_t rs_index_of(const StudyResults& results);

/// Fault-tolerance report: per-cell failure tallies (failed experiments,
/// transient/timeout/crashed measurements, retries, simulated backoff) for
/// every cell in which the fault layer intervened or experiments were lost,
/// plus a campaign-wide total line. Reports "no failures" when clean.
[[nodiscard]] FigureOutput make_failure_report(const StudyResults& results);

}  // namespace repro::harness
