#pragma once
// Shared command-line entry point for the per-figure bench binaries: parses
// the common flags, runs the study, renders the requested figure, and
// optionally writes the CSV artifact.
//
// Common flags: --scale <div> (default 16; divides the paper's experiment
// counts), --full (paper scale), --bench a,b --arch a,b --algo a,b filters,
// --sizes 25,50,..., --seed <n>, --out <dir> for CSV output.

#include <string>

#include "harness/report.hpp"
#include "harness/study.hpp"

namespace repro::harness {

enum class Figure { kFig2, kFig3, kFig4a, kFig4b };

/// Parse the common study flags. Returns false after printing usage (on
/// --help or a parse error); `config` and `out_dir` are filled on success.
bool parse_study_cli(int argc, const char* const* argv, const std::string& program,
                     const std::string& description, StudyConfig& config,
                     std::string& out_dir);

/// Full driver used by the fig* bench mains.
int run_figure_main(int argc, const char* const* argv, Figure figure);

}  // namespace repro::harness
