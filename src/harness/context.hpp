#pragma once
// Per-(benchmark, architecture) experiment context: binds the analytical
// performance model to the tuner-facing search space, computes the study
// optimum by exhaustive noiseless sweep, and pre-collects the paper's
// non-SMBO sample dataset.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "imagecl/benchmark_suite.hpp"
#include "simgpu/arch.hpp"
#include "simgpu/faults.hpp"
#include "simgpu/mean_cache.hpp"
#include "simgpu/noise.hpp"
#include "simgpu/perf_model.hpp"
#include "tuner/dataset.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::harness {

/// Map a tuner configuration (paper parameter order) onto a kernel launch
/// configuration.
[[nodiscard]] simgpu::KernelConfig to_kernel_config(const tuner::Configuration& config);

class BenchmarkContext {
 public:
  /// Builds the model cache, sweeps the executable space for the noiseless
  /// optimum (parallel), and collects `dataset_size` pre-measured samples.
  /// When `faults` is enabled, dataset collection runs under the same fault
  /// regime (faulted entries are recorded as invalid); the default model is
  /// disabled and changes nothing.
  BenchmarkContext(std::shared_ptr<const imagecl::Benchmark> benchmark,
                   const simgpu::GpuArch& arch, std::size_t dataset_size,
                   std::uint64_t master_seed,
                   const simgpu::FaultModel& faults = {});

  [[nodiscard]] const std::string& benchmark_name() const noexcept;
  [[nodiscard]] const simgpu::GpuArch& arch() const noexcept { return arch_; }
  [[nodiscard]] const tuner::ParamSpace& space() const noexcept { return space_; }
  [[nodiscard]] double optimum_us() const noexcept { return optimum_us_; }
  [[nodiscard]] const tuner::Dataset& dataset() const noexcept { return dataset_; }

  /// Noiseless model time; NaN when invalid. The deterministic mean is
  /// memoized in a sharded table shared by every evaluator on this context
  /// (the noise draw stays per-evaluation); memoized and recomputed results
  /// are bit-identical, so this only changes wall-clock.
  [[nodiscard]] double true_time_us(const tuner::Configuration& config) const;

  /// Toggle the shared mean memo table (on by default; off recomputes the
  /// per-pass sum every call — the reference path for tests/benches).
  void set_mean_memoization(bool enabled) noexcept { memoize_means_ = enabled; }
  [[nodiscard]] bool mean_memoization() const noexcept { return memoize_means_; }
  [[nodiscard]] const simgpu::MeanCache& mean_cache() const noexcept {
    return mean_cache_;
  }

  /// Cap the shared mean memo table (0 = unbounded). run_study derives a
  /// capacity from the study budget — enough for every distinct
  /// configuration the budgeted runs can measure plus the exhaustive
  /// optimum sweep — instead of letting the table grow without relation to
  /// the workload.
  void set_mean_cache_capacity(std::size_t capacity) const noexcept {
    mean_cache_.set_capacity(capacity);
  }

  /// One noisy measurement (the objective the paper's pipeline exposes).
  [[nodiscard]] double measure_us(const tuner::Configuration& config,
                                  repro::Rng& rng) const;

  /// One possibly-faulty measurement with full classification. The injector
  /// carries the sticky device-reset episode across the caller's sequential
  /// measurement stream; a disabled injector reproduces measure_us exactly.
  [[nodiscard]] tuner::Evaluation measure_eval(const tuner::Configuration& config,
                                               repro::Rng& rng,
                                               simgpu::FaultInjector& injector) const;

  /// Objective closure bound to an experiment RNG (caller keeps `rng` alive).
  /// With the context's fault model enabled the closure owns a fault
  /// injector seeded from `rng`; disabled, it is byte-identical to before.
  [[nodiscard]] tuner::Objective make_objective(repro::Rng& rng) const;

  /// Objective sharing the caller's injector (so search and the final
  /// re-measurement see one continuous fault stream).
  [[nodiscard]] tuner::Objective make_objective(repro::Rng& rng,
                                                simgpu::FaultInjector& injector) const;

  /// Mean of `repeats` measurements (the paper's 10-fold final test).
  [[nodiscard]] double measure_repeated_us(const tuner::Configuration& config,
                                           repro::Rng& rng, std::size_t repeats) const;

  /// Fault-aware final test: faulted repeats are dropped (and tallied into
  /// `counters` when given); returns the mean of the completed repeats, NaN
  /// when the configuration is invalid or every repeat was lost. Matches the
  /// plain overload exactly when the injector is disabled.
  [[nodiscard]] double measure_repeated_us(const tuner::Configuration& config,
                                           repro::Rng& rng, std::size_t repeats,
                                           simgpu::FaultInjector& injector,
                                           tuner::FailureCounters* counters) const;

  /// Override the measurement-noise model (ablation benches). Call before
  /// running experiments; not thread-safe against concurrent measurement.
  void set_noise_model(const simgpu::NoiseModel& noise) noexcept { noise_ = noise; }
  [[nodiscard]] const simgpu::NoiseModel& noise_model() const noexcept { return noise_; }

  /// Override the fault regime (ablation benches, run_study). Call before
  /// running experiments; not thread-safe against concurrent measurement.
  /// The pre-collected dataset is NOT re-collected: it models a clean
  /// pre-measured archive (a Kernel Tuner cache file); pass the model to the
  /// constructor to collect the dataset under faults too.
  void set_fault_model(const simgpu::FaultModel& faults) noexcept { faults_ = faults; }
  [[nodiscard]] const simgpu::FaultModel& fault_model() const noexcept { return faults_; }

 private:
  std::shared_ptr<const imagecl::Benchmark> benchmark_;
  simgpu::GpuArch arch_;
  /// One memoizing cache per kernel launch of the benchmark (pipelines sum).
  std::vector<std::unique_ptr<simgpu::CachedPerfModel>> pass_caches_;
  /// Memo of the summed-over-passes mean, keyed by the packed launch config.
  mutable simgpu::MeanCache mean_cache_;
  bool memoize_means_ = true;
  simgpu::NoiseModel noise_;
  simgpu::FaultModel faults_;
  tuner::ParamSpace space_;
  tuner::Dataset dataset_;
  double optimum_us_ = 0.0;
};

}  // namespace repro::harness
