#include "harness/context.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace repro::harness {

simgpu::KernelConfig to_kernel_config(const tuner::Configuration& config) {
  if (config.size() != 6) {
    throw std::invalid_argument("to_kernel_config: expected 6 parameters");
  }
  simgpu::KernelConfig kernel;
  kernel.coarsen_x = static_cast<std::uint32_t>(config[tuner::kThreadsX]);
  kernel.coarsen_y = static_cast<std::uint32_t>(config[tuner::kThreadsY]);
  kernel.coarsen_z = static_cast<std::uint32_t>(config[tuner::kThreadsZ]);
  kernel.wg_x = static_cast<std::uint32_t>(config[tuner::kWgX]);
  kernel.wg_y = static_cast<std::uint32_t>(config[tuner::kWgY]);
  kernel.wg_z = static_cast<std::uint32_t>(config[tuner::kWgZ]);
  return kernel;
}

BenchmarkContext::BenchmarkContext(std::shared_ptr<const imagecl::Benchmark> benchmark,
                                   const simgpu::GpuArch& arch, std::size_t dataset_size,
                                   std::uint64_t master_seed,
                                   const simgpu::FaultModel& faults)
    : benchmark_(std::move(benchmark)),
      arch_(arch),
      faults_(faults),
      space_(tuner::paper_search_space()) {
  for (const simgpu::PerfModel& pass : benchmark_->passes()) {
    pass_caches_.push_back(std::make_unique<simgpu::CachedPerfModel>(pass, arch_));
  }
  noise_.sigma = arch_.noise_sigma;

  // Exhaustive noiseless sweep over the executable space for the study
  // optimum; fills the model cache as a side effect.
  const std::size_t total = simgpu::CachedPerfModel::table_size();
  // CAS-min over exact model values: min is order-independent (no FP
  // accumulation), so the sweep result is deterministic under any schedule.
  std::atomic<double> best{std::numeric_limits<double>::infinity()};  // NOLINT(reprolint-nondet-reduction)
  repro::parallel_for(0, total, [&](std::size_t index) {
    const simgpu::KernelConfig kernel = simgpu::CachedPerfModel::unpack(index);
    if (!kernel.satisfies_wg_constraint()) return;
    double time = 0.0;
    for (const auto& cache : pass_caches_) {
      const double pass_time = cache->time_us(kernel);
      if (std::isnan(pass_time)) return;
      time += pass_time;
    }
    double current = best.load(std::memory_order_relaxed);
    while (time < current &&
           !best.compare_exchange_weak(current, time, std::memory_order_relaxed)) {
    }
  });
  optimum_us_ = best.load();
  if (!std::isfinite(optimum_us_)) {
    throw std::runtime_error("BenchmarkContext: no executable configuration found");
  }
  log_info("context {}/{}: optimum {:.2f} us", benchmark_->name(), arch_.name,
           optimum_us_);

  // Pre-collect the non-SMBO dataset (paper Section VI-B), in parallel with
  // deterministic per-entry seeds.
  if (dataset_size > 0) {
    std::vector<tuner::DatasetEntry> entries(dataset_size);
    repro::parallel_for(0, dataset_size, [&](std::size_t i) {
      const std::uint64_t entry_seed =
          seed_combine(seed_combine(master_seed, seed_from_string(
                                                    benchmark_->name() + "/" +
                                                    arch_.name + "/dataset")),
                       i);
      repro::Rng rng(entry_seed);
      // Entries are collected in parallel, so each gets its own injector:
      // reset episodes poison within an entry's stream only.
      simgpu::FaultInjector injector(faults_, seed_combine(entry_seed, 0xFA17u));
      tuner::DatasetEntry& entry = entries[i];
      entry.config = space_.sample_executable(rng);
      const tuner::Evaluation eval = measure_eval(entry.config, rng, injector);
      entry.value = eval.value;
      entry.valid = eval.valid;
    });
    dataset_ = tuner::Dataset(std::move(entries));
  }
}

double BenchmarkContext::true_time_us(const tuner::Configuration& config) const {
  if (!space_.in_range(config)) return std::numeric_limits<double>::quiet_NaN();
  const simgpu::KernelConfig kernel = to_kernel_config(config);
  const std::uint64_t key = simgpu::CachedPerfModel::pack(kernel);
  double total = 0.0;
  if (memoize_means_ && mean_cache_.lookup(key, total)) return total;
  for (const auto& cache : pass_caches_) {
    const double pass_time = cache->time_us(kernel);
    if (std::isnan(pass_time)) {
      // NaN is memoized too: "invalid" is as deterministic as any mean.
      if (memoize_means_) mean_cache_.store(key, pass_time);
      return pass_time;
    }
    total += pass_time;
  }
  if (memoize_means_) mean_cache_.store(key, total);
  return total;
}

double BenchmarkContext::measure_us(const tuner::Configuration& config,
                                    repro::Rng& rng) const {
  const double true_time = true_time_us(config);
  if (std::isnan(true_time)) return true_time;
  return noise_.sample(true_time, rng);
}

tuner::Evaluation BenchmarkContext::measure_eval(const tuner::Configuration& config,
                                                 repro::Rng& rng,
                                                 simgpu::FaultInjector& injector) const {
  tuner::Evaluation eval;
  switch (injector.next()) {
    case simgpu::FaultKind::kNone:
      break;
    case simgpu::FaultKind::kTransient:
      eval.status = tuner::EvalStatus::kTransient;
      return eval;
    case simgpu::FaultKind::kTimeout:
      // A hang is killed at the wall budget; report what it cost, not a
      // measurement of the kernel.
      eval.value = injector.model().timeout_wall_us;
      eval.status = tuner::EvalStatus::kTimeout;
      return eval;
    case simgpu::FaultKind::kDeviceReset:
    case simgpu::FaultKind::kPoisoned:
      eval.status = tuner::EvalStatus::kCrashed;
      return eval;
  }
  eval.value = measure_us(config, rng);
  eval.valid = !std::isnan(eval.value);
  eval.status = eval.valid ? tuner::EvalStatus::kOk : tuner::EvalStatus::kInvalid;
  return eval;
}

tuner::Objective BenchmarkContext::make_objective(repro::Rng& rng) const {
  if (faults_.enabled) {
    // The closure owns its injector, seeded from the experiment RNG so the
    // fault stream is deterministic in the experiment seed.
    auto injector = std::make_shared<simgpu::FaultInjector>(faults_, rng());
    return [this, &rng, injector](const tuner::Configuration& config) {
      return measure_eval(config, rng, *injector);
    };
  }
  return [this, &rng](const tuner::Configuration& config) {
    tuner::Evaluation eval;
    eval.value = measure_us(config, rng);
    eval.valid = !std::isnan(eval.value);
    return eval;
  };
}

tuner::Objective BenchmarkContext::make_objective(repro::Rng& rng,
                                                  simgpu::FaultInjector& injector) const {
  return [this, &rng, &injector](const tuner::Configuration& config) {
    return measure_eval(config, rng, injector);
  };
}

double BenchmarkContext::measure_repeated_us(const tuner::Configuration& config,
                                             repro::Rng& rng, std::size_t repeats) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const double value = measure_us(config, rng);
    if (std::isnan(value)) return value;
    sum += value;
  }
  return sum / static_cast<double>(repeats);
}

double BenchmarkContext::measure_repeated_us(const tuner::Configuration& config,
                                             repro::Rng& rng, std::size_t repeats,
                                             simgpu::FaultInjector& injector,
                                             tuner::FailureCounters* counters) const {
  double sum = 0.0;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const tuner::Evaluation eval = measure_eval(config, rng, injector);
    if (counters != nullptr) counters->count(eval.status);
    if (eval.status == tuner::EvalStatus::kInvalid) {
      // Deterministically invalid configuration: identical to the plain
      // overload, the whole final test fails.
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (eval.status != tuner::EvalStatus::kOk) continue;  // faulted repeat: drop
    sum += eval.value;
    ++completed;
  }
  if (completed == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(completed);
}

const std::string& BenchmarkContext::benchmark_name() const noexcept {
  return benchmark_->name();
}

}  // namespace repro::harness
