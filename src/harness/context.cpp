#include "harness/context.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace repro::harness {

simgpu::KernelConfig to_kernel_config(const tuner::Configuration& config) {
  if (config.size() != 6) {
    throw std::invalid_argument("to_kernel_config: expected 6 parameters");
  }
  simgpu::KernelConfig kernel;
  kernel.coarsen_x = static_cast<std::uint32_t>(config[tuner::kThreadsX]);
  kernel.coarsen_y = static_cast<std::uint32_t>(config[tuner::kThreadsY]);
  kernel.coarsen_z = static_cast<std::uint32_t>(config[tuner::kThreadsZ]);
  kernel.wg_x = static_cast<std::uint32_t>(config[tuner::kWgX]);
  kernel.wg_y = static_cast<std::uint32_t>(config[tuner::kWgY]);
  kernel.wg_z = static_cast<std::uint32_t>(config[tuner::kWgZ]);
  return kernel;
}

BenchmarkContext::BenchmarkContext(std::shared_ptr<const imagecl::Benchmark> benchmark,
                                   const simgpu::GpuArch& arch, std::size_t dataset_size,
                                   std::uint64_t master_seed)
    : benchmark_(std::move(benchmark)),
      arch_(arch),
      space_(tuner::paper_search_space()) {
  for (const simgpu::PerfModel& pass : benchmark_->passes()) {
    pass_caches_.push_back(std::make_unique<simgpu::CachedPerfModel>(pass, arch_));
  }
  noise_.sigma = arch_.noise_sigma;

  // Exhaustive noiseless sweep over the executable space for the study
  // optimum; fills the model cache as a side effect.
  const std::size_t total = simgpu::CachedPerfModel::table_size();
  std::atomic<double> best{std::numeric_limits<double>::infinity()};
  repro::parallel_for(0, total, [&](std::size_t index) {
    const simgpu::KernelConfig kernel = simgpu::CachedPerfModel::unpack(index);
    if (!kernel.satisfies_wg_constraint()) return;
    double time = 0.0;
    for (const auto& cache : pass_caches_) {
      const double pass_time = cache->time_us(kernel);
      if (std::isnan(pass_time)) return;
      time += pass_time;
    }
    double current = best.load(std::memory_order_relaxed);
    while (time < current &&
           !best.compare_exchange_weak(current, time, std::memory_order_relaxed)) {
    }
  });
  optimum_us_ = best.load();
  if (!std::isfinite(optimum_us_)) {
    throw std::runtime_error("BenchmarkContext: no executable configuration found");
  }
  log_info("context {}/{}: optimum {:.2f} us", benchmark_->name(), arch_.name,
           optimum_us_);

  // Pre-collect the non-SMBO dataset (paper Section VI-B), in parallel with
  // deterministic per-entry seeds.
  if (dataset_size > 0) {
    std::vector<tuner::DatasetEntry> entries(dataset_size);
    repro::parallel_for(0, dataset_size, [&](std::size_t i) {
      repro::Rng rng(seed_combine(seed_combine(master_seed, seed_from_string(
                                                                benchmark_->name() + "/" +
                                                                arch_.name + "/dataset")),
                                  i));
      tuner::DatasetEntry& entry = entries[i];
      entry.config = space_.sample_executable(rng);
      entry.value = measure_us(entry.config, rng);
      entry.valid = !std::isnan(entry.value);
    });
    dataset_ = tuner::Dataset(std::move(entries));
  }
}

double BenchmarkContext::true_time_us(const tuner::Configuration& config) const {
  if (!space_.in_range(config)) return std::numeric_limits<double>::quiet_NaN();
  const simgpu::KernelConfig kernel = to_kernel_config(config);
  double total = 0.0;
  for (const auto& cache : pass_caches_) {
    const double pass_time = cache->time_us(kernel);
    if (std::isnan(pass_time)) return pass_time;
    total += pass_time;
  }
  return total;
}

double BenchmarkContext::measure_us(const tuner::Configuration& config,
                                    repro::Rng& rng) const {
  const double true_time = true_time_us(config);
  if (std::isnan(true_time)) return true_time;
  return noise_.sample(true_time, rng);
}

tuner::Objective BenchmarkContext::make_objective(repro::Rng& rng) const {
  return [this, &rng](const tuner::Configuration& config) {
    tuner::Evaluation eval;
    eval.value = measure_us(config, rng);
    eval.valid = !std::isnan(eval.value);
    return eval;
  };
}

double BenchmarkContext::measure_repeated_us(const tuner::Configuration& config,
                                             repro::Rng& rng, std::size_t repeats) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const double value = measure_us(config, rng);
    if (std::isnan(value)) return value;
    sum += value;
  }
  return sum / static_cast<double>(repeats);
}

const std::string& BenchmarkContext::benchmark_name() const noexcept {
  return benchmark_->name();
}

}  // namespace repro::harness
