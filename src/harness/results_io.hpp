#pragma once
// Raw study-outcome persistence: one study run is expensive (it is the
// whole experimental campaign), while every figure is a cheap aggregation.
// Saving the raw per-experiment outcomes lets all four figures — and any
// future analysis — be regenerated without re-running a single search.
// Long-format CSV: one row per experiment plus one optimum row per panel.

#include <string>

#include "harness/study.hpp"

namespace repro::harness {

/// Write raw outcomes to CSV. Returns false on IO failure.
bool save_results_csv(const StudyResults& results, const std::string& path);

/// Reload outcomes saved by save_results_csv. Throws std::runtime_error on
/// malformed input. The reloaded StudyResults carries the config encoded in
/// the file (benchmarks/architectures/algorithms/sizes in file order).
[[nodiscard]] StudyResults load_results_csv(const std::string& path);

}  // namespace repro::harness
