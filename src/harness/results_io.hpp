#pragma once
// Raw study-outcome persistence: one study run is expensive (it is the
// whole experimental campaign), while every figure is a cheap aggregation.
// Saving the raw per-experiment outcomes lets all four figures — and any
// future analysis — be regenerated without re-running a single search.
// Long-format CSV: one row per experiment plus one optimum row per panel;
// cells with failure tallies additionally emit one `failures` row per
// nonzero counter (none when the fault layer is idle, keeping legacy files
// byte-identical).
//
// Checkpoints: a campaign can die at any point (OOM kill, node preemption,
// ctrl-C). run_study appends one line per completed cell to an append-only
// checkpoint file; on restart the completed cells are reloaded and skipped,
// and the final results are identical to an uninterrupted run under the
// same master_seed (cells are seeded independently). A torn final line —
// the only possible corruption of an append-only file killed mid-write —
// is detected and ignored on load.

#include <cstdint>
#include <map>
#include <string>

#include "harness/study.hpp"

namespace repro::harness {

/// Write raw outcomes to CSV. Returns false on IO failure.
bool save_results_csv(const StudyResults& results, const std::string& path);

/// Reload outcomes saved by save_results_csv. Throws std::runtime_error on
/// malformed input. The reloaded StudyResults carries the config encoded in
/// the file (benchmarks/architectures/algorithms/sizes in file order).
[[nodiscard]] StudyResults load_results_csv(const std::string& path);

// ---------------------------------------------------------------------------
// Per-cell study checkpoints
// ---------------------------------------------------------------------------

/// Completed work reloaded from a checkpoint file.
struct StudyCheckpoint {
  std::uint64_t master_seed = 0;
  /// "benchmark/architecture" -> noiseless optimum (us).
  std::map<std::string, double> panel_optima;
  /// cell_key(...) -> the cell's full outcome record.
  std::map<std::string, CellOutcomes> cells;

  [[nodiscard]] static std::string panel_key(const std::string& benchmark,
                                             const std::string& architecture);
  [[nodiscard]] static std::string cell_key(const std::string& benchmark,
                                            const std::string& architecture,
                                            const std::string& algorithm,
                                            std::size_t sample_size);
  [[nodiscard]] bool empty() const noexcept {
    return panel_optima.empty() && cells.empty();
  }
};

/// Create the checkpoint file with its header line unless it already
/// exists. An existing file first has any torn unterminated tail (a crash
/// mid-append) truncated away so subsequent appends start on a line
/// boundary; if the tear took the header, the header is rewritten. Returns
/// false on IO failure.
bool checkpoint_begin(const std::string& path, std::uint64_t master_seed);

/// Append one panel-optimum record. Returns false on IO failure.
bool checkpoint_append_panel(const std::string& path, const std::string& benchmark,
                             const std::string& architecture, double optimum_us);

/// Append one completed cell (outcomes in experiment order plus failure
/// tallies). Returns false on IO failure.
bool checkpoint_append_cell(const std::string& path, const std::string& benchmark,
                            const std::string& architecture,
                            const std::string& algorithm, std::size_t sample_size,
                            const CellOutcomes& cell);

/// Reload a checkpoint. Throws std::runtime_error when the file cannot be
/// opened or its header is malformed. Torn writes are tolerated: an
/// unterminated final line is always dropped (every writer terminates with
/// '\n'), a malformed trailing record is logged and ignored, and a file
/// whose very header is torn loads as an empty checkpoint (checkpoint_begin
/// then repairs the file). CRLF line endings and trailing whitespace are
/// accepted.
[[nodiscard]] StudyCheckpoint load_checkpoint(const std::string& path);

}  // namespace repro::harness
