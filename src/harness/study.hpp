#pragma once
// Full study driver implementing the paper's experimental design
// (Sections V and VI): for every benchmark x architecture x algorithm x
// sample size, run E(S) independent experiments, re-measure each
// experiment's final configuration 10 times, and collect the outcome
// distributions that Figs. 2-4 aggregate.
//
// Experiment counts follow the paper's rule E(S) = 20000 / S (i.e. 800,
// 400, 200, 100, 50 for S = 25..400), divided by `scale_divisor` so the
// default bench run finishes in minutes on one core; --full restores paper
// scale.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/context.hpp"

namespace repro::harness {

struct StudyConfig {
  std::vector<std::string> algorithms;     ///< registry ids; default: paper set
  std::vector<std::string> benchmarks = {"add", "harris", "mandelbrot"};
  std::vector<std::string> architectures = {"gtx980", "titanv", "rtxtitan"};
  std::vector<std::size_t> sample_sizes = {25, 50, 100, 200, 400};
  std::size_t dataset_target = 20000;      ///< paper's non-SMBO dataset size
  double scale_divisor = 32.0;             ///< 1.0 = paper scale
  std::size_t min_experiments = 4;
  std::size_t final_evaluations = 10;
  std::uint64_t master_seed = 0x5EEDBA5Eu;

  [[nodiscard]] std::size_t experiments_for(std::size_t sample_size) const;
  /// Dataset entries needed so every (size, experiment) subdivision fits.
  [[nodiscard]] std::size_t dataset_size_needed() const;
};

/// Outcome distribution of one study cell.
struct CellOutcomes {
  /// Final 10-fold-mean runtime per experiment (microseconds); NaN entries
  /// (no valid configuration found) are dropped before aggregation.
  std::vector<double> final_times_us;
};

struct PanelResults {
  std::string benchmark;
  std::string architecture;
  double optimum_us = 0.0;
  /// cells[algorithm_index][size_index]
  std::vector<std::vector<CellOutcomes>> cells;
};

struct StudyResults {
  StudyConfig config;
  std::vector<PanelResults> panels;  ///< benchmark-major, then architecture

  [[nodiscard]] const PanelResults& panel(const std::string& benchmark,
                                          const std::string& architecture) const;
};

/// Run the study. Progress is logged to stderr; all experiment work is
/// parallelized on the global thread pool and fully deterministic in
/// `config.master_seed`.
[[nodiscard]] StudyResults run_study(const StudyConfig& config);

/// Run one experiment (used by run_study and unit tests): returns the final
/// configuration's 10-fold mean runtime, NaN if the algorithm found no
/// valid configuration. The indexed variant selects which dataset
/// subdivision the non-SMBO algorithms (rs, rf) consume.
[[nodiscard]] double run_single_experiment_indexed(const BenchmarkContext& context,
                                                   const std::string& algorithm_id,
                                                   std::size_t sample_size,
                                                   std::size_t experiment_index,
                                                   std::size_t final_evaluations,
                                                   std::uint64_t seed);

[[nodiscard]] double run_single_experiment(const BenchmarkContext& context,
                                           const std::string& algorithm_id,
                                           std::size_t sample_size,
                                           std::size_t final_evaluations,
                                           std::uint64_t seed);

}  // namespace repro::harness
