#pragma once
// Full study driver implementing the paper's experimental design
// (Sections V and VI): for every benchmark x architecture x algorithm x
// sample size, run E(S) independent experiments, re-measure each
// experiment's final configuration 10 times, and collect the outcome
// distributions that Figs. 2-4 aggregate.
//
// Experiment counts follow the paper's rule E(S) = 20000 / S (i.e. 800,
// 400, 200, 100, 50 for S = 25..400), divided by `scale_divisor` so the
// default bench run finishes in minutes on one core; --full restores paper
// scale.

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "harness/context.hpp"

namespace repro::harness {

struct StudyConfig {
  std::vector<std::string> algorithms;     ///< registry ids; default: paper set
  std::vector<std::string> benchmarks = {"add", "harris", "mandelbrot"};
  std::vector<std::string> architectures = {"gtx980", "titanv", "rtxtitan"};
  std::vector<std::size_t> sample_sizes = {25, 50, 100, 200, 400};
  std::size_t dataset_target = 20000;      ///< paper's non-SMBO dataset size
  double scale_divisor = 32.0;             ///< 1.0 = paper scale
  std::size_t min_experiments = 4;
  std::size_t final_evaluations = 10;
  std::uint64_t master_seed = 0x5EEDBA5Eu;
  simgpu::FaultModel faults;               ///< measurement faults; off by default
  tuner::RetryPolicy retry;                ///< transient-failure retries; off by default
  /// Non-empty: append a per-cell checkpoint to this file as cells complete
  /// and, when the file already exists, resume from it (completed cells are
  /// not re-run; results are identical to an uninterrupted run under the
  /// same master_seed).
  std::string checkpoint_path;

  [[nodiscard]] std::size_t experiments_for(std::size_t sample_size) const;
  /// Dataset entries needed so every (size, experiment) subdivision fits.
  [[nodiscard]] std::size_t dataset_size_needed() const;
};

/// Outcome distribution of one study cell.
struct CellOutcomes {
  /// Final 10-fold-mean runtime per experiment (microseconds); NaN entries
  /// (no valid configuration found) are dropped before aggregation.
  std::vector<double> final_times_us;
  /// Experiments that produced a NaN outcome (retries exhausted, no valid
  /// configuration, or an exception caught by the study driver).
  std::size_t failed_experiments = 0;
  /// Evaluation-level tallies summed over the cell's experiments.
  tuner::FailureCounters failures;
};

struct PanelResults {
  std::string benchmark;
  std::string architecture;
  double optimum_us = 0.0;
  /// cells[algorithm_index][size_index]
  std::vector<std::vector<CellOutcomes>> cells;
};

struct StudyResults {
  StudyConfig config;
  std::vector<PanelResults> panels;  ///< benchmark-major, then architecture

  [[nodiscard]] const PanelResults& panel(const std::string& benchmark,
                                          const std::string& architecture) const;
};

/// Run the study. Progress is logged to stderr; all experiment work is
/// parallelized on the global thread pool and fully deterministic in
/// `config.master_seed`. Experiments never abort the campaign: anomalies
/// are recorded as NaN outcomes with per-cell failure tallies, and worker
/// exceptions are caught at the cell boundary.
[[nodiscard]] StudyResults run_study(const StudyConfig& config);

/// Per-experiment knobs shared by run_study and the ablation benches.
struct ExperimentOptions {
  std::size_t final_evaluations = 10;
  tuner::RetryPolicy retry;  ///< transient-failure retries (default: none)
};

/// Full record of one experiment.
struct ExperimentOutcome {
  double final_time_us = std::numeric_limits<double>::quiet_NaN();
  tuner::FailureCounters counters;  ///< evaluation-level tallies
  bool aborted = false;             ///< the experiment threw (message logged)
};

/// Run one experiment with fault/retry handling: the context's fault model
/// drives one injector across search and the final re-measurement, and the
/// returned counters tally every anomaly. Does not throw on evaluation
/// anomalies; `aborted` reports unexpected exceptions instead.
[[nodiscard]] ExperimentOutcome run_experiment_detailed(const BenchmarkContext& context,
                                                        const std::string& algorithm_id,
                                                        std::size_t sample_size,
                                                        std::size_t experiment_index,
                                                        std::uint64_t seed,
                                                        const ExperimentOptions& options);

/// Run one experiment (used by run_study and unit tests): returns the final
/// configuration's 10-fold mean runtime, NaN if the algorithm found no
/// valid configuration. The indexed variant selects which dataset
/// subdivision the non-SMBO algorithms (rs, rf) consume.
[[nodiscard]] double run_single_experiment_indexed(const BenchmarkContext& context,
                                                   const std::string& algorithm_id,
                                                   std::size_t sample_size,
                                                   std::size_t experiment_index,
                                                   std::size_t final_evaluations,
                                                   std::uint64_t seed);

[[nodiscard]] double run_single_experiment(const BenchmarkContext& context,
                                           const std::string& algorithm_id,
                                           std::size_t sample_size,
                                           std::size_t final_evaluations,
                                           std::uint64_t seed);

}  // namespace repro::harness
