#include "harness/figures.hpp"

#include <cstdio>
#include <filesystem>

#include "common/cli.hpp"
#include "common/fmt.hpp"
#include "common/log.hpp"
#include "harness/results_io.hpp"

namespace repro::harness {
namespace {

// Raw-results round-trip paths parsed from the CLI (empty = unused).
std::string g_save_raw;
std::string g_from_raw;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string current;
  for (char c : csv) {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

const char* figure_name(Figure figure) {
  switch (figure) {
    case Figure::kFig2: return "fig2";
    case Figure::kFig3: return "fig3";
    case Figure::kFig4a: return "fig4a";
    case Figure::kFig4b: return "fig4b";
  }
  return "fig";
}

}  // namespace

bool parse_study_cli(int argc, const char* const* argv, const std::string& program,
                     const std::string& description, StudyConfig& config,
                     std::string& out_dir) {
  repro::CliParser cli(program, description);
  cli.add_option("scale", "divide the paper's experiment counts by this", "32");
  cli.add_flag("full", "paper-scale experiment counts (scale = 1)");
  cli.add_option("bench", "comma list of benchmarks", "add,harris,mandelbrot");
  cli.add_option("arch", "comma list of architectures", "gtx980,titanv,rtxtitan");
  cli.add_option("algo", "comma list of algorithms", "rs,rf,ga,bogp,botpe");
  cli.add_option("sizes", "comma list of sample sizes", "25,50,100,200,400");
  cli.add_option("seed", "master seed", "1592653589");
  cli.add_option("min-experiments", "floor on experiments per cell", "4");
  cli.add_option("out", "directory for CSV artifacts", "");
  cli.add_option("save-raw", "write raw per-experiment outcomes to this CSV", "");
  cli.add_option("from-raw", "skip the study; aggregate a saved raw CSV", "");
  cli.add_option("resume",
                 "checkpoint file: append per-cell records while running and "
                 "resume from it if it exists",
                 "");
  cli.add_flag("verbose", "debug logging");
  if (!cli.parse(argc, argv)) return false;

  config = StudyConfig{};
  config.scale_divisor = cli.get_flag("full") ? 1.0 : cli.get_double("scale");
  config.benchmarks = split_list(cli.get("bench"));
  config.architectures = split_list(cli.get("arch"));
  config.algorithms = split_list(cli.get("algo"));
  config.sample_sizes.clear();
  for (const std::string& size : split_list(cli.get("sizes"))) {
    config.sample_sizes.push_back(static_cast<std::size_t>(std::stoull(size)));
  }
  config.master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.min_experiments = static_cast<std::size_t>(cli.get_int("min-experiments"));
  config.checkpoint_path = cli.get("resume");
  out_dir = cli.get("out");
  g_save_raw = cli.get("save-raw");
  g_from_raw = cli.get("from-raw");
  if (cli.get_flag("verbose")) repro::set_log_level(repro::LogLevel::kDebug);
  return true;
}

int run_figure_main(int argc, const char* const* argv, Figure figure) {
  StudyConfig config;
  std::string out_dir;
  const std::string name = figure_name(figure);
  if (!parse_study_cli(argc, argv, name,
                       fmt("reproduce the paper's {} from the simulated study", name),
                       config, out_dir)) {
    return 0;
  }

  StudyResults results;
  try {
    results = g_from_raw.empty() ? run_study(config) : load_results_csv(g_from_raw);
  } catch (const std::exception& error) {
    // Checkpoint/raw-file mismatches are user-facing errors, not crashes.
    log_error("{}", error.what());
    return 1;
  }
  if (!g_save_raw.empty()) {
    // A failed save must fail the run: a full-day campaign silently dropping
    // its raw outcomes is unrecoverable.
    if (!save_results_csv(results, g_save_raw)) {
      log_error("failed to write raw outcomes to {}", g_save_raw);
      return 1;
    }
    std::printf("wrote raw outcomes to %s\n", g_save_raw.c_str());
  }
  FigureOutput output = [&] {
    switch (figure) {
      case Figure::kFig2: return make_fig2(results);
      case Figure::kFig3: return make_fig3(results);
      case Figure::kFig4a: return make_fig4a(results);
      case Figure::kFig4b: return make_fig4b(results);
    }
    return make_fig2(results);
  }();

  std::fputs(output.text.c_str(), stdout);
  // Only a campaign the fault layer touched gets the extra section, so
  // fault-free runs stay byte-identical to the pre-fault output.
  bool any_failures = false;
  for (const PanelResults& panel : results.panels) {
    for (const auto& row : panel.cells) {
      for (const CellOutcomes& cell : row) {
        any_failures |= cell.failures.any() || cell.failed_experiments > 0;
      }
    }
  }
  if (any_failures) std::fputs(make_failure_report(results).text.c_str(), stdout);
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path = out_dir + "/" + name + ".csv";
    if (!output.table.write_csv_file(path)) {
      log_error("failed to write {}", path);
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace repro::harness
