#include "harness/study.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "common/log.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "harness/results_io.hpp"
#include "tuner/forest/random_forest.hpp"
#include "tuner/registry.hpp"

namespace repro::harness {

std::size_t StudyConfig::experiments_for(std::size_t sample_size) const {
  const double full = static_cast<double>(dataset_target) /
                      static_cast<double>(sample_size);  // paper: E(S) = 20000/S
  const auto scaled = static_cast<std::size_t>(std::llround(full / scale_divisor));
  return std::max(min_experiments, scaled);
}

std::size_t StudyConfig::dataset_size_needed() const {
  std::size_t needed = 0;
  for (std::size_t size : sample_sizes) {
    needed = std::max(needed, experiments_for(size) * size);
  }
  return needed;
}

const PanelResults& StudyResults::panel(const std::string& benchmark,
                                        const std::string& architecture) const {
  for (const PanelResults& p : panels) {
    if (p.benchmark == benchmark && p.architecture == architecture) return p;
  }
  throw std::out_of_range("no panel for " + benchmark + "/" + architecture);
}

namespace {

/// Paper RS: minimum of the experiment's dataset subdivision; the winning
/// configuration is then re-measured.
tuner::Configuration rs_pick(const BenchmarkContext& context, std::size_t sample_size,
                             std::size_t experiment_index) {
  const auto slice = context.dataset().subdivision(sample_size, experiment_index);
  const tuner::DatasetEntry* best = nullptr;
  for (const tuner::DatasetEntry& entry : slice) {
    if (!entry.valid) continue;
    if (best == nullptr || entry.value < best->value) best = &entry;
  }
  if (best == nullptr) return {};
  return best->config;
}

/// Paper RF (Section VI-B): train on the subdivision's first S-10 samples,
/// rank an executable candidate pool, measure the top 10 predictions, and
/// output the best *of those predictions*.
tuner::Configuration rf_pick(const BenchmarkContext& context, std::size_t sample_size,
                             std::size_t experiment_index, repro::Rng& rng,
                             simgpu::FaultInjector& injector,
                             tuner::FailureCounters& counters) {
  constexpr std::size_t kPredictions = 10;
  constexpr std::size_t kCandidatePool = 2048;
  const auto slice = context.dataset().subdivision(sample_size, experiment_index);
  const std::size_t train_count =
      slice.size() > kPredictions ? slice.size() - kPredictions : slice.size();

  std::vector<std::vector<double>> X;
  std::vector<double> y;
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < train_count; ++i) {
    if (!slice[i].valid) continue;
    X.push_back(context.space().normalize(slice[i].config));
    y.push_back(slice[i].value);
    seen.insert(context.space().encode(slice[i].config));
  }
  if (X.size() < 2) return rs_pick(context, sample_size, experiment_index);

  tuner::RandomForestRegressor forest;
  forest.fit(X, y, rng);

  struct Scored {
    double prediction;
    tuner::Configuration config;
  };
  // Sample sequentially (RNG stream), predict in a batch: forest traversal
  // is pure, so parallel_for fills indexed slots and the partial_sort below
  // sees the same pool the fused loop produced. rf_pick runs inside
  // run_study's own parallel_for, where the nested call degrades to an
  // inline loop instead of deadlocking the pool.
  std::vector<Scored> pool;
  pool.reserve(kCandidatePool);
  for (std::size_t i = 0; i < kCandidatePool; ++i) {
    tuner::Configuration candidate = context.space().sample_executable(rng);
    if (seen.contains(context.space().encode(candidate))) continue;
    pool.push_back({0.0, std::move(candidate)});
  }
  repro::parallel_for(
      0, pool.size(),
      [&](std::size_t i) {
        pool[i].prediction =
            forest.predict(context.space().normalize(pool[i].config));
      },
      0, 32);
  if (pool.empty()) return rs_pick(context, sample_size, experiment_index);
  const std::size_t keep = std::min<std::size_t>(kPredictions, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.prediction < b.prediction;
                    });

  // Measure each top prediction once; the best measurement is the output.
  // Faulted measurements are tallied and lose their prediction slot.
  const tuner::Configuration* best_config = nullptr;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < keep; ++i) {
    const tuner::Evaluation eval = context.measure_eval(pool[i].config, rng, injector);
    counters.count(eval.status);
    if (eval.valid && eval.value < best_value) {
      best_value = eval.value;
      best_config = &pool[i].config;
    }
  }
  if (best_config == nullptr) return rs_pick(context, sample_size, experiment_index);
  return *best_config;
}

/// SMBO path: budgeted sequential search through the Evaluator, which
/// retries transient failures per the policy (each retry costs budget).
tuner::Configuration smbo_pick(const BenchmarkContext& context,
                               const std::string& algorithm_id, std::size_t sample_size,
                               repro::Rng& rng, simgpu::FaultInjector& injector,
                               const tuner::RetryPolicy& retry,
                               tuner::FailureCounters& counters) {
  const tuner::Objective objective = context.make_objective(rng, injector);
  tuner::Evaluator evaluator(context.space(), objective, sample_size);
  evaluator.set_retry_policy(retry);
  const auto algorithm = tuner::make_algorithm(algorithm_id);
  const tuner::TuneResult result = algorithm->minimize(context.space(), evaluator, rng);
  counters += evaluator.counters();
  if (!result.found_valid) return {};
  return result.best_config;
}

}  // namespace

ExperimentOutcome run_experiment_detailed(const BenchmarkContext& context,
                                          const std::string& algorithm_id,
                                          std::size_t sample_size,
                                          std::size_t experiment_index,
                                          std::uint64_t seed,
                                          const ExperimentOptions& options) {
  ExperimentOutcome out;
  try {
    repro::Rng rng(seed);
    // One injector per experiment: search and the final re-measurement share
    // a sequential measurement stream, so a device reset late in the search
    // can poison the first final repeats — as it would on real hardware.
    simgpu::FaultInjector injector(context.fault_model(),
                                   seed_combine(seed, 0xFA17u));
    tuner::Configuration final_config;
    if (algorithm_id == "rs") {
      final_config = rs_pick(context, sample_size, experiment_index);
    } else if (algorithm_id == "rf") {
      final_config = rf_pick(context, sample_size, experiment_index, rng, injector,
                             out.counters);
    } else {
      final_config = smbo_pick(context, algorithm_id, sample_size, rng, injector,
                               options.retry, out.counters);
    }
    if (!final_config.empty()) {
      out.final_time_us = context.measure_repeated_us(
          final_config, rng, options.final_evaluations, injector, &out.counters);
    }
  } catch (const std::exception& error) {
    // Graceful degradation: a single experiment must never take down the
    // campaign. The outcome stays NaN and the anomaly is attributable.
    out.aborted = true;
    out.final_time_us = std::numeric_limits<double>::quiet_NaN();
    log_warn("experiment {}: {} S={} #{} aborted: {}", context.benchmark_name(),
             algorithm_id, sample_size, experiment_index, error.what());
  }
  return out;
}

double run_single_experiment_indexed(const BenchmarkContext& context,
                                     const std::string& algorithm_id,
                                     std::size_t sample_size, std::size_t experiment_index,
                                     std::size_t final_evaluations, std::uint64_t seed) {
  ExperimentOptions options;
  options.final_evaluations = final_evaluations;
  return run_experiment_detailed(context, algorithm_id, sample_size, experiment_index,
                                 seed, options)
      .final_time_us;
}

double run_single_experiment(const BenchmarkContext& context,
                             const std::string& algorithm_id, std::size_t sample_size,
                             std::size_t final_evaluations, std::uint64_t seed) {
  return run_single_experiment_indexed(context, algorithm_id, sample_size, 0,
                                       final_evaluations, seed);
}

StudyResults run_study(const StudyConfig& config_in) {
  StudyConfig config = config_in;
  if (config.algorithms.empty()) config.algorithms = tuner::paper_algorithms();

  StudyResults results;
  results.config = config;

  // Load completed work when resuming; refuse a checkpoint from a different
  // campaign (the determinism guarantee only holds under the same seed).
  StudyCheckpoint checkpoint;
  const bool checkpointing = !config.checkpoint_path.empty();
  if (checkpointing) {
    std::error_code ec;
    if (std::filesystem::exists(config.checkpoint_path, ec)) {
      checkpoint = load_checkpoint(config.checkpoint_path);
      if (!checkpoint.empty() && checkpoint.master_seed != config.master_seed) {
        throw std::runtime_error(
            "run_study: checkpoint " + config.checkpoint_path + " was written under "
            "master_seed " + std::to_string(checkpoint.master_seed) +
            ", not " + std::to_string(config.master_seed));
      }
      log_info("resuming from checkpoint {} ({} cells done)", config.checkpoint_path,
               checkpoint.cells.size());
    }
    if (!checkpoint_begin(config.checkpoint_path, config.master_seed)) {
      throw std::runtime_error("run_study: cannot write checkpoint " +
                               config.checkpoint_path);
    }
  }

  ExperimentOptions options;
  options.final_evaluations = config.final_evaluations;
  options.retry = config.retry;

  const std::size_t num_algos = config.algorithms.size();
  const std::size_t num_sizes = config.sample_sizes.size();
  const std::size_t dataset_size = config.dataset_size_needed();
  for (const std::string& benchmark_name : config.benchmarks) {
    for (const std::string& arch_name : config.architectures) {
      PanelResults panel;
      panel.benchmark = benchmark_name;
      panel.architecture = arch_name;
      panel.cells.assign(num_algos, {});
      for (auto& row : panel.cells) row.assign(num_sizes, {});

      // Restore checkpointed cells; anything else becomes a task below.
      std::vector<char> cell_done(num_algos * num_sizes, 0);
      bool all_cells_done = true;
      for (std::size_t a = 0; a < num_algos; ++a) {
        for (std::size_t s = 0; s < num_sizes; ++s) {
          const std::size_t experiments = config.experiments_for(config.sample_sizes[s]);
          const auto it = checkpoint.cells.find(StudyCheckpoint::cell_key(
              benchmark_name, arch_name, config.algorithms[a], config.sample_sizes[s]));
          if (it != checkpoint.cells.end()) {
            if (it->second.final_times_us.size() != experiments) {
              throw std::runtime_error(
                  "run_study: checkpoint cell " + it->first + " holds " +
                  std::to_string(it->second.final_times_us.size()) +
                  " experiments but the config asks for " +
                  std::to_string(experiments) + " — was the scale changed?");
            }
            panel.cells[a][s] = it->second;
            cell_done[a * num_sizes + s] = 1;
          } else {
            all_cells_done = false;
            panel.cells[a][s].final_times_us.assign(
                experiments, std::numeric_limits<double>::quiet_NaN());
          }
        }
      }

      const std::string panel_key =
          StudyCheckpoint::panel_key(benchmark_name, arch_name);
      const auto optimum_it = checkpoint.panel_optima.find(panel_key);
      if (all_cells_done && optimum_it != checkpoint.panel_optima.end()) {
        // Fully checkpointed panel: skip the (expensive) context build.
        panel.optimum_us = optimum_it->second;
        log_info("panel {}/{} restored from checkpoint", benchmark_name, arch_name);
        results.panels.push_back(std::move(panel));
        continue;
      }

      const simgpu::GpuArch& arch = simgpu::arch_by_name(arch_name);
      const BenchmarkContext context(imagecl::benchmark_by_name(benchmark_name), arch,
                                     dataset_size, config.master_seed, config.faults);
      // Size the shared mean memo table from the work it will actually see:
      // every budgeted measurement across the panel's cells plus the
      // pre-collected dataset, with 2x headroom. Previously unbounded —
      // sized independently of the study it served.
      {
        std::size_t measurements = 0;
        for (std::size_t size : config.sample_sizes) {
          measurements += config.experiments_for(size) * size;
        }
        context.set_mean_cache_capacity(2 * num_algos * measurements +
                                        2 * dataset_size);
      }
      panel.optimum_us = context.optimum_us();
      if (checkpointing && optimum_it == checkpoint.panel_optima.end()) {
        if (!checkpoint_append_panel(config.checkpoint_path, benchmark_name, arch_name,
                                     panel.optimum_us)) {
          log_error("failed to append panel record to {}", config.checkpoint_path);
        }
      }

      // Flatten (algorithm, size, experiment) of the remaining cells into one
      // parallel task list; track per-cell completion so each cell is
      // checkpointed the moment its last experiment lands.
      struct Task {
        std::size_t algo;
        std::size_t size_index;
        std::size_t experiment;
      };
      std::vector<Task> tasks;
      std::vector<std::vector<std::size_t>> cell_tasks(num_algos * num_sizes);
      for (std::size_t a = 0; a < num_algos; ++a) {
        for (std::size_t s = 0; s < num_sizes; ++s) {
          if (cell_done[a * num_sizes + s]) continue;
          const std::size_t experiments = config.experiments_for(config.sample_sizes[s]);
          for (std::size_t e = 0; e < experiments; ++e) {
            cell_tasks[a * num_sizes + s].push_back(tasks.size());
            tasks.push_back({a, s, e});
          }
        }
      }

      std::vector<ExperimentOutcome> outcomes(tasks.size());
      std::vector<std::atomic<std::size_t>> cell_remaining(num_algos * num_sizes);
      for (std::size_t c = 0; c < cell_tasks.size(); ++c) {
        cell_remaining[c].store(cell_tasks[c].size(), std::memory_order_relaxed);
      }
      repro::Mutex checkpoint_mutex;

      repro::parallel_for(0, tasks.size(), [&](std::size_t t) {
        const Task& task = tasks[t];
        const std::string& algorithm = config.algorithms[task.algo];
        const std::size_t sample_size = config.sample_sizes[task.size_index];
        const std::uint64_t seed = seed_combine(
            seed_combine(config.master_seed,
                         seed_from_string(benchmark_name + "/" + arch_name + "/" +
                                          algorithm)),
            sample_size * 100003ull + task.experiment);
        outcomes[t] = run_experiment_detailed(context, algorithm, sample_size,
                                              task.experiment, seed, options);
        CellOutcomes& cell = panel.cells[task.algo][task.size_index];
        cell.final_times_us[task.experiment] = outcomes[t].final_time_us;

        const std::size_t c = task.algo * num_sizes + task.size_index;
        // acq_rel: the thread that completes the cell observes every other
        // worker's outcome writes before reducing them.
        if (cell_remaining[c].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          for (std::size_t index : cell_tasks[c]) {
            cell.failures += outcomes[index].counters;
          }
          for (double time : cell.final_times_us) {
            if (std::isnan(time)) ++cell.failed_experiments;
          }
          if (checkpointing) {
            repro::MutexLock lock(checkpoint_mutex);
            log_debug("checkpoint: cell {}/{}/{} S={} done ({} experiments)",
                      benchmark_name, arch_name, algorithm, sample_size,
                      cell.final_times_us.size());
            if (!checkpoint_append_cell(config.checkpoint_path, benchmark_name,
                                        arch_name, algorithm, sample_size, cell)) {
              log_error("failed to append cell record to {}", config.checkpoint_path);
            }
          }
        }
      });

      log_info("panel {}/{} done ({} tasks)", benchmark_name, arch_name, tasks.size());
      results.panels.push_back(std::move(panel));
    }
  }
  return results;
}

}  // namespace repro::harness
