#include "harness/study.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "tuner/forest/random_forest.hpp"
#include "tuner/registry.hpp"

namespace repro::harness {

std::size_t StudyConfig::experiments_for(std::size_t sample_size) const {
  const double full = static_cast<double>(dataset_target) /
                      static_cast<double>(sample_size);  // paper: E(S) = 20000/S
  const auto scaled = static_cast<std::size_t>(std::llround(full / scale_divisor));
  return std::max(min_experiments, scaled);
}

std::size_t StudyConfig::dataset_size_needed() const {
  std::size_t needed = 0;
  for (std::size_t size : sample_sizes) {
    needed = std::max(needed, experiments_for(size) * size);
  }
  return needed;
}

const PanelResults& StudyResults::panel(const std::string& benchmark,
                                        const std::string& architecture) const {
  for (const PanelResults& p : panels) {
    if (p.benchmark == benchmark && p.architecture == architecture) return p;
  }
  throw std::out_of_range("no panel for " + benchmark + "/" + architecture);
}

namespace {

/// Paper RS: minimum of the experiment's dataset subdivision; the winning
/// configuration is then re-measured.
tuner::Configuration rs_pick(const BenchmarkContext& context, std::size_t sample_size,
                             std::size_t experiment_index) {
  const auto slice = context.dataset().subdivision(sample_size, experiment_index);
  const tuner::DatasetEntry* best = nullptr;
  for (const tuner::DatasetEntry& entry : slice) {
    if (!entry.valid) continue;
    if (best == nullptr || entry.value < best->value) best = &entry;
  }
  if (best == nullptr) return {};
  return best->config;
}

/// Paper RF (Section VI-B): train on the subdivision's first S-10 samples,
/// rank an executable candidate pool, measure the top 10 predictions, and
/// output the best *of those predictions*.
tuner::Configuration rf_pick(const BenchmarkContext& context, std::size_t sample_size,
                             std::size_t experiment_index, repro::Rng& rng) {
  constexpr std::size_t kPredictions = 10;
  constexpr std::size_t kCandidatePool = 2048;
  const auto slice = context.dataset().subdivision(sample_size, experiment_index);
  const std::size_t train_count =
      slice.size() > kPredictions ? slice.size() - kPredictions : slice.size();

  std::vector<std::vector<double>> X;
  std::vector<double> y;
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < train_count; ++i) {
    if (!slice[i].valid) continue;
    X.push_back(context.space().normalize(slice[i].config));
    y.push_back(slice[i].value);
    seen.insert(context.space().encode(slice[i].config));
  }
  if (X.size() < 2) return rs_pick(context, sample_size, experiment_index);

  tuner::RandomForestRegressor forest;
  forest.fit(X, y, rng);

  struct Scored {
    double prediction;
    tuner::Configuration config;
  };
  std::vector<Scored> pool;
  pool.reserve(kCandidatePool);
  for (std::size_t i = 0; i < kCandidatePool; ++i) {
    tuner::Configuration candidate = context.space().sample_executable(rng);
    if (seen.contains(context.space().encode(candidate))) continue;
    pool.push_back({forest.predict(context.space().normalize(candidate)),
                    std::move(candidate)});
  }
  if (pool.empty()) return rs_pick(context, sample_size, experiment_index);
  const std::size_t keep = std::min<std::size_t>(kPredictions, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.prediction < b.prediction;
                    });

  // Measure each top prediction once; the best measurement is the output.
  const tuner::Configuration* best_config = nullptr;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < keep; ++i) {
    const double value = context.measure_us(pool[i].config, rng);
    if (!std::isnan(value) && value < best_value) {
      best_value = value;
      best_config = &pool[i].config;
    }
  }
  if (best_config == nullptr) return rs_pick(context, sample_size, experiment_index);
  return *best_config;
}

/// SMBO path: budgeted sequential search through the Evaluator.
tuner::Configuration smbo_pick(const BenchmarkContext& context,
                               const std::string& algorithm_id, std::size_t sample_size,
                               repro::Rng& rng) {
  const tuner::Objective objective = context.make_objective(rng);
  tuner::Evaluator evaluator(context.space(), objective, sample_size);
  const auto algorithm = tuner::make_algorithm(algorithm_id);
  const tuner::TuneResult result = algorithm->minimize(context.space(), evaluator, rng);
  if (!result.found_valid) return {};
  return result.best_config;
}

}  // namespace

double run_single_experiment_indexed(const BenchmarkContext& context,
                                     const std::string& algorithm_id,
                                     std::size_t sample_size, std::size_t experiment_index,
                                     std::size_t final_evaluations, std::uint64_t seed) {
  repro::Rng rng(seed);
  tuner::Configuration final_config;
  if (algorithm_id == "rs") {
    final_config = rs_pick(context, sample_size, experiment_index);
  } else if (algorithm_id == "rf") {
    final_config = rf_pick(context, sample_size, experiment_index, rng);
  } else {
    final_config = smbo_pick(context, algorithm_id, sample_size, rng);
  }
  if (final_config.empty()) return std::numeric_limits<double>::quiet_NaN();
  return context.measure_repeated_us(final_config, rng, final_evaluations);
}

double run_single_experiment(const BenchmarkContext& context,
                             const std::string& algorithm_id, std::size_t sample_size,
                             std::size_t final_evaluations, std::uint64_t seed) {
  return run_single_experiment_indexed(context, algorithm_id, sample_size, 0,
                                       final_evaluations, seed);
}

StudyResults run_study(const StudyConfig& config_in) {
  StudyConfig config = config_in;
  if (config.algorithms.empty()) config.algorithms = tuner::paper_algorithms();

  StudyResults results;
  results.config = config;

  const std::size_t dataset_size = config.dataset_size_needed();
  for (const std::string& benchmark_name : config.benchmarks) {
    for (const std::string& arch_name : config.architectures) {
      const simgpu::GpuArch& arch = simgpu::arch_by_name(arch_name);
      const BenchmarkContext context(imagecl::benchmark_by_name(benchmark_name), arch,
                                     dataset_size, config.master_seed);

      PanelResults panel;
      panel.benchmark = benchmark_name;
      panel.architecture = arch_name;
      panel.optimum_us = context.optimum_us();
      panel.cells.assign(config.algorithms.size(), {});
      for (auto& row : panel.cells) row.assign(config.sample_sizes.size(), {});

      // Flatten (algorithm, size, experiment) into one parallel task list.
      struct Task {
        std::size_t algo;
        std::size_t size_index;
        std::size_t experiment;
      };
      std::vector<Task> tasks;
      for (std::size_t a = 0; a < config.algorithms.size(); ++a) {
        for (std::size_t s = 0; s < config.sample_sizes.size(); ++s) {
          const std::size_t experiments = config.experiments_for(config.sample_sizes[s]);
          panel.cells[a][s].final_times_us.assign(
              experiments, std::numeric_limits<double>::quiet_NaN());
          for (std::size_t e = 0; e < experiments; ++e) tasks.push_back({a, s, e});
        }
      }

      repro::parallel_for(0, tasks.size(), [&](std::size_t t) {
        const Task& task = tasks[t];
        const std::string& algorithm = config.algorithms[task.algo];
        const std::size_t sample_size = config.sample_sizes[task.size_index];
        const std::uint64_t seed = seed_combine(
            seed_combine(config.master_seed,
                         seed_from_string(benchmark_name + "/" + arch_name + "/" +
                                          algorithm)),
            sample_size * 100003ull + task.experiment);
        panel.cells[task.algo][task.size_index].final_times_us[task.experiment] =
            run_single_experiment_indexed(context, algorithm, sample_size,
                                          task.experiment, config.final_evaluations,
                                          seed);
      });

      log_info("panel {}/{} done ({} tasks)", benchmark_name, arch_name, tasks.size());
      results.panels.push_back(std::move(panel));
    }
  }
  return results;
}

}  // namespace repro::harness
