#include "harness/report.hpp"

#include <cmath>
#include <stdexcept>

#include "common/fmt.hpp"
#include "tuner/registry.hpp"

namespace repro::harness {
namespace {

std::vector<std::string> algorithm_labels(const StudyResults& results) {
  std::vector<std::string> labels;
  labels.reserve(results.config.algorithms.size());
  for (const std::string& id : results.config.algorithms) {
    labels.push_back(tuner::display_name(id));
  }
  return labels;
}

std::vector<std::string> size_labels(const StudyResults& results) {
  std::vector<std::string> labels;
  labels.reserve(results.config.sample_sizes.size());
  for (std::size_t size : results.config.sample_sizes) {
    labels.push_back(std::to_string(size));
  }
  return labels;
}

/// Shared shape of Figs. 2/4a/4b: per-panel heatmaps + long-format table.
FigureOutput render_per_panel(const StudyResults& results, const std::string& figure,
                              const std::string& metric, int precision,
                              const std::function<CellMatrix(const PanelResults&)>& cells) {
  const std::vector<std::string> algos = algorithm_labels(results);
  const std::vector<std::string> sizes = size_labels(results);

  FigureOutput out{std::string{},
                   repro::Table({"figure", "benchmark", "architecture", "algorithm",
                                 "sample_size", metric})};
  out.text += fmt("=== {} — {} ===\n", figure, metric);
  for (const PanelResults& panel : results.panels) {
    const CellMatrix matrix = cells(panel);
    out.text += render_heatmap(
        fmt("[{} / {}]  (optimum {:.2f} us)", panel.benchmark, panel.architecture,
            panel.optimum_us),
        algos, sizes, matrix, precision);
    out.text += '\n';
    for (std::size_t a = 0; a < matrix.size(); ++a) {
      for (std::size_t s = 0; s < matrix[a].size(); ++s) {
        out.table.add_row({figure, panel.benchmark, panel.architecture, algos[a],
                           static_cast<long long>(results.config.sample_sizes[s]),
                           matrix[a][s]});
      }
    }
  }
  return out;
}

}  // namespace

std::size_t rs_index_of(const StudyResults& results) {
  for (std::size_t i = 0; i < results.config.algorithms.size(); ++i) {
    if (results.config.algorithms[i] == "rs") return i;
  }
  throw std::runtime_error("Fig. 4 requires Random Search in the algorithm set");
}

FigureOutput make_fig2(const StudyResults& results) {
  return render_per_panel(results, "fig2", "percent_of_optimum", 1,
                          [](const PanelResults& panel) {
                            return percent_of_optimum(panel);
                          });
}

FigureOutput make_fig3(const StudyResults& results) {
  const std::vector<AggregateSeries> series = aggregate_percent_of_optimum(results);
  const std::vector<std::string> algos = algorithm_labels(results);
  const std::vector<std::string> sizes = size_labels(results);

  FigureOutput out{std::string{},
                   repro::Table({"figure", "algorithm", "sample_size", "mean_percent",
                                 "ci_lo", "ci_hi"})};
  std::vector<std::vector<double>> means;
  means.reserve(series.size());
  for (const AggregateSeries& s : series) means.push_back(s.mean);
  out.text += "=== fig3 — mean percentage of optimum across all benchmarks"
              " and architectures (95% CI) ===\n";
  out.text += render_line_chart("", sizes, algos, means);
  out.text += '\n';

  repro::Table detail({"algorithm", "sample_size", "mean", "ci_lo", "ci_hi"});
  for (std::size_t a = 0; a < series.size(); ++a) {
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      out.table.add_row({std::string("fig3"), algos[a],
                         static_cast<long long>(results.config.sample_sizes[s]),
                         series[a].mean[s], series[a].ci_lo[s], series[a].ci_hi[s]});
      detail.add_row({algos[a], static_cast<long long>(results.config.sample_sizes[s]),
                      series[a].mean[s], series[a].ci_lo[s], series[a].ci_hi[s]});
    }
  }
  detail.set_precision(2);
  out.text += detail.to_ascii();
  return out;
}

FigureOutput make_fig4a(const StudyResults& results) {
  const std::size_t rs = rs_index_of(results);
  return render_per_panel(results, "fig4a", "median_speedup_over_rs", 3,
                          [rs](const PanelResults& panel) {
                            return speedup_over_rs(panel, rs);
                          });
}

FigureOutput make_fig4b(const StudyResults& results) {
  const std::size_t rs = rs_index_of(results);
  FigureOutput out = render_per_panel(results, "fig4b", "cles_over_rs", 2,
                                      [rs](const PanelResults& panel) {
                                        return cles_over_rs(panel, rs);
                                      });
  // Companion significance report (paper threshold alpha = 0.01).
  out.text += "--- Mann-Whitney U vs RS: cells with p < 0.01 ---\n";
  const std::vector<std::string> algos = algorithm_labels(results);
  for (const PanelResults& panel : results.panels) {
    const CellMatrix p = mwu_p_vs_rs(panel, rs);
    std::string line = fmt("[{} / {}] ", panel.benchmark, panel.architecture);
    bool any = false;
    for (std::size_t a = 0; a < p.size(); ++a) {
      for (std::size_t s = 0; s < p[a].size(); ++s) {
        if (!std::isnan(p[a][s]) && p[a][s] < 0.01) {
          line += fmt("{}@{} ", algos[a], results.config.sample_sizes[s]);
          any = true;
        }
      }
    }
    if (!any) line += "(none)";
    out.text += line + '\n';
  }
  return out;
}

FigureOutput make_failure_report(const StudyResults& results) {
  FigureOutput out{std::string{},
                   repro::Table({"benchmark", "architecture", "algorithm",
                                 "sample_size", "failed_experiments", "transient",
                                 "timeout", "crashed", "retries", "retry_successes",
                                 "backoff_us"})};
  out.text += "=== failure report — per-cell fault tallies ===\n";
  const std::vector<std::string> algos = algorithm_labels(results);
  tuner::FailureCounters total;
  std::size_t total_failed = 0;
  repro::Table detail(out.table.columns());
  detail.set_precision(1);
  for (const PanelResults& panel : results.panels) {
    for (std::size_t a = 0; a < panel.cells.size(); ++a) {
      for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
        const CellOutcomes& cell = panel.cells[a][s];
        total += cell.failures;
        total_failed += cell.failed_experiments;
        if (!cell.failures.any() && cell.failed_experiments == 0) continue;
        const std::vector<Cell> row = {
            panel.benchmark,
            panel.architecture,
            algos[a],
            static_cast<long long>(results.config.sample_sizes[s]),
            static_cast<long long>(cell.failed_experiments),
            static_cast<long long>(cell.failures.transient),
            static_cast<long long>(cell.failures.timeout),
            static_cast<long long>(cell.failures.crashed),
            static_cast<long long>(cell.failures.retries),
            static_cast<long long>(cell.failures.retry_successes),
            cell.failures.backoff_us};
        out.table.add_row(row);
        detail.add_row(row);
      }
    }
  }
  if (out.table.num_rows() == 0) {
    out.text += "(no failures recorded)\n";
  } else {
    out.text += detail.to_ascii();
  }
  out.text += fmt(
      "total: {} failed experiments, {} transient / {} timeout / {} crashed "
      "measurements, {} retries ({} recovered), {:.1f} us simulated backoff\n",
      total_failed, total.transient, total.timeout, total.crashed, total.retries,
      total.retry_successes, total.backoff_us);
  return out;
}

}  // namespace repro::harness
