#include "harness/results_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace repro::harness {
namespace {

std::size_t index_of_or_append(std::vector<std::string>& names, const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  if (it != names.end()) return static_cast<std::size_t>(it - names.begin());
  names.push_back(name);
  return names.size() - 1;
}

std::size_t index_of_or_append(std::vector<std::size_t>& values, std::size_t value) {
  const auto it = std::find(values.begin(), values.end(), value);
  if (it != values.end()) return static_cast<std::size_t>(it - values.begin());
  values.push_back(value);
  return values.size() - 1;
}

}  // namespace

bool save_results_csv(const StudyResults& results, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n";
  for (const PanelResults& panel : results.panels) {
    out << "optimum," << panel.benchmark << ',' << panel.architecture
        << ",,,," << panel.optimum_us << '\n';
    for (std::size_t a = 0; a < panel.cells.size(); ++a) {
      const std::string& algorithm = results.config.algorithms[a];
      for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
        const std::size_t size = results.config.sample_sizes[s];
        const auto& outcomes = panel.cells[a][s].final_times_us;
        for (std::size_t e = 0; e < outcomes.size(); ++e) {
          out << "outcome," << panel.benchmark << ',' << panel.architecture << ','
              << algorithm << ',' << size << ',' << e << ',' << outcomes[e] << '\n';
        }
      }
    }
  }
  return static_cast<bool>(out);
}

StudyResults load_results_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_results_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line.rfind("kind,", 0) != 0) {
    throw std::runtime_error("load_results_csv: bad header in " + path);
  }

  StudyResults results;
  auto panel_of = [&](const std::string& benchmark,
                      const std::string& architecture) -> PanelResults& {
    for (PanelResults& panel : results.panels) {
      if (panel.benchmark == benchmark && panel.architecture == architecture) {
        return panel;
      }
    }
    (void)index_of_or_append(results.config.benchmarks, benchmark);
    (void)index_of_or_append(results.config.architectures, architecture);
    results.panels.push_back({});
    results.panels.back().benchmark = benchmark;
    results.panels.back().architecture = architecture;
    return results.panels.back();
  };

  // Config lists start empty and grow in file order.
  results.config.benchmarks.clear();
  results.config.architectures.clear();
  results.config.algorithms.clear();
  results.config.sample_sizes.clear();

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::stringstream fields(line);
    std::string kind, benchmark, architecture, algorithm, size_text, exp_text,
        value_text;
    if (!std::getline(fields, kind, ',') || !std::getline(fields, benchmark, ',') ||
        !std::getline(fields, architecture, ',') ||
        !std::getline(fields, algorithm, ',') ||
        !std::getline(fields, size_text, ',') ||
        !std::getline(fields, exp_text, ',') || !std::getline(fields, value_text)) {
      throw std::runtime_error("load_results_csv: short row at line " +
                               std::to_string(line_number));
    }
    PanelResults& panel = panel_of(benchmark, architecture);
    if (kind == "optimum") {
      panel.optimum_us = std::stod(value_text);
      continue;
    }
    if (kind != "outcome") {
      throw std::runtime_error("load_results_csv: unknown kind at line " +
                               std::to_string(line_number));
    }
    const std::size_t a = index_of_or_append(results.config.algorithms, algorithm);
    const std::size_t s = index_of_or_append(results.config.sample_sizes,
                                             std::stoull(size_text));
    if (panel.cells.size() < results.config.algorithms.size()) {
      panel.cells.resize(results.config.algorithms.size());
    }
    for (auto& row : panel.cells) {
      if (row.size() < results.config.sample_sizes.size()) {
        row.resize(results.config.sample_sizes.size());
      }
    }
    panel.cells[a][s].final_times_us.push_back(
        value_text == "nan" ? std::numeric_limits<double>::quiet_NaN()
                            : std::stod(value_text));
  }

  // Cells may have been created lazily per panel; normalize shapes.
  for (PanelResults& panel : results.panels) {
    panel.cells.resize(results.config.algorithms.size());
    for (auto& row : panel.cells) row.resize(results.config.sample_sizes.size());
  }
  return results;
}

}  // namespace repro::harness
