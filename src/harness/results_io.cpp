#include "harness/results_io.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/log.hpp"

namespace repro::harness {
namespace {

std::size_t index_of_or_append(std::vector<std::string>& names, const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  if (it != names.end()) return static_cast<std::size_t>(it - names.begin());
  names.push_back(name);
  return names.size() - 1;
}

std::size_t index_of_or_append(std::vector<std::size_t>& values, std::size_t value) {
  const auto it = std::find(values.begin(), values.end(), value);
  if (it != values.end()) return static_cast<std::size_t>(it - values.begin());
  values.push_back(value);
  return values.size() - 1;
}

/// Nonzero counters of a cell as (name, value) pairs, in stable order.
/// Empty unless the fault layer intervened, so fault-free results keep the
/// legacy byte-exact format.
std::vector<std::pair<std::string, double>> failure_fields(const CellOutcomes& cell) {
  std::vector<std::pair<std::string, double>> fields;
  if (!cell.failures.any()) return fields;
  const tuner::FailureCounters& c = cell.failures;
  const auto add = [&](const char* name, double value) {
    if (value != 0.0) fields.emplace_back(name, value);
  };
  add("experiments", static_cast<double>(cell.failed_experiments));
  add("ok", static_cast<double>(c.ok));
  add("invalid", static_cast<double>(c.invalid));
  add("transient", static_cast<double>(c.transient));
  add("timeout", static_cast<double>(c.timeout));
  add("crashed", static_cast<double>(c.crashed));
  add("retries", static_cast<double>(c.retries));
  add("retry_successes", static_cast<double>(c.retry_successes));
  add("backoff_us", c.backoff_us);
  return fields;
}

void apply_failure_field(CellOutcomes& cell, const std::string& name, double value) {
  tuner::FailureCounters& c = cell.failures;
  const auto n = [&](double v) { return static_cast<std::size_t>(v); };
  if (name == "experiments") cell.failed_experiments = n(value);
  else if (name == "ok") c.ok = n(value);
  else if (name == "invalid") c.invalid = n(value);
  else if (name == "transient") c.transient = n(value);
  else if (name == "timeout") c.timeout = n(value);
  else if (name == "crashed") c.crashed = n(value);
  else if (name == "retries") c.retries = n(value);
  else if (name == "retry_successes") c.retry_successes = n(value);
  else if (name == "backoff_us") c.backoff_us = value;
  else throw std::runtime_error("unknown failure counter: " + name);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

double parse_outcome(const std::string& text) {
  return text == "nan" ? std::numeric_limits<double>::quiet_NaN() : std::stod(text);
}

/// Strip a trailing CR (files that passed through Windows tooling or a
/// text-mode transfer) and trailing spaces/tabs from one line.
void strip_line_ending(std::string& line) {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
    line.pop_back();
  }
}

constexpr const char* kCheckpointHeaderPrefix = "checkpoint,v1,";

}  // namespace

bool save_results_csv(const StudyResults& results, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n";
  for (const PanelResults& panel : results.panels) {
    out << "optimum," << panel.benchmark << ',' << panel.architecture
        << ",,,," << panel.optimum_us << '\n';
    for (std::size_t a = 0; a < panel.cells.size(); ++a) {
      const std::string& algorithm = results.config.algorithms[a];
      for (std::size_t s = 0; s < panel.cells[a].size(); ++s) {
        const std::size_t size = results.config.sample_sizes[s];
        const CellOutcomes& cell = panel.cells[a][s];
        for (std::size_t e = 0; e < cell.final_times_us.size(); ++e) {
          out << "outcome," << panel.benchmark << ',' << panel.architecture << ','
              << algorithm << ',' << size << ',' << e << ','
              << cell.final_times_us[e] << '\n';
        }
        // Failure tallies ride in the same 7-column format with the counter
        // name in the experiment column; idle cells emit nothing, keeping
        // legacy files byte-identical.
        for (const auto& [name, value] : failure_fields(cell)) {
          out << "failures," << panel.benchmark << ',' << panel.architecture << ','
              << algorithm << ',' << size << ',' << name << ',' << value << '\n';
        }
      }
    }
  }
  return static_cast<bool>(out);
}

StudyResults load_results_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_results_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_results_csv: bad header in " + path);
  }
  strip_line_ending(line);
  if (line.rfind("kind,", 0) != 0) {
    throw std::runtime_error("load_results_csv: bad header in " + path);
  }

  StudyResults results;
  auto panel_of = [&](const std::string& benchmark,
                      const std::string& architecture) -> PanelResults& {
    for (PanelResults& panel : results.panels) {
      if (panel.benchmark == benchmark && panel.architecture == architecture) {
        return panel;
      }
    }
    (void)index_of_or_append(results.config.benchmarks, benchmark);
    (void)index_of_or_append(results.config.architectures, architecture);
    results.panels.push_back({});
    results.panels.back().benchmark = benchmark;
    results.panels.back().architecture = architecture;
    return results.panels.back();
  };

  // Config lists start empty and grow in file order.
  results.config.benchmarks.clear();
  results.config.architectures.clear();
  results.config.algorithms.clear();
  results.config.sample_sizes.clear();

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    strip_line_ending(line);
    if (line.empty()) continue;
    std::stringstream fields(line);
    std::string kind, benchmark, architecture, algorithm, size_text, exp_text,
        value_text;
    if (!std::getline(fields, kind, ',') || !std::getline(fields, benchmark, ',') ||
        !std::getline(fields, architecture, ',') ||
        !std::getline(fields, algorithm, ',') ||
        !std::getline(fields, size_text, ',') ||
        !std::getline(fields, exp_text, ',') || !std::getline(fields, value_text)) {
      throw std::runtime_error("load_results_csv: short row at line " +
                               std::to_string(line_number));
    }
    PanelResults& panel = panel_of(benchmark, architecture);
    if (kind == "optimum") {
      panel.optimum_us = std::stod(value_text);
      continue;
    }
    if (kind != "outcome" && kind != "failures") {
      throw std::runtime_error("load_results_csv: unknown kind at line " +
                               std::to_string(line_number));
    }
    const std::size_t a = index_of_or_append(results.config.algorithms, algorithm);
    const std::size_t s = index_of_or_append(results.config.sample_sizes,
                                             std::stoull(size_text));
    if (panel.cells.size() < results.config.algorithms.size()) {
      panel.cells.resize(results.config.algorithms.size());
    }
    for (auto& row : panel.cells) {
      if (row.size() < results.config.sample_sizes.size()) {
        row.resize(results.config.sample_sizes.size());
      }
    }
    if (kind == "failures") {
      try {
        apply_failure_field(panel.cells[a][s], exp_text, std::stod(value_text));
      } catch (const std::exception& error) {
        throw std::runtime_error("load_results_csv: bad failures row at line " +
                                 std::to_string(line_number) + ": " + error.what());
      }
      continue;
    }
    panel.cells[a][s].final_times_us.push_back(parse_outcome(value_text));
  }

  // Cells may have been created lazily per panel; normalize shapes.
  for (PanelResults& panel : results.panels) {
    panel.cells.resize(results.config.algorithms.size());
    for (auto& row : panel.cells) row.resize(results.config.sample_sizes.size());
  }
  return results;
}

// ---------------------------------------------------------------------------
// Per-cell study checkpoints
// ---------------------------------------------------------------------------

std::string StudyCheckpoint::panel_key(const std::string& benchmark,
                                       const std::string& architecture) {
  return benchmark + "/" + architecture;
}

std::string StudyCheckpoint::cell_key(const std::string& benchmark,
                                      const std::string& architecture,
                                      const std::string& algorithm,
                                      std::size_t sample_size) {
  return benchmark + "/" + architecture + "/" + algorithm + "/" +
         std::to_string(sample_size);
}

namespace {

/// Drop an unterminated trailing line left by a crash mid-append. Without
/// this, the next append would concatenate onto the torn line and corrupt a
/// record in the *middle* of the file — which a later resume would then
/// correctly refuse to load. Returns false on IO failure.
bool truncate_torn_tail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  if (content.empty() || content.back() == '\n') return true;
  const std::size_t last_newline = content.find_last_of('\n');
  const std::size_t keep = last_newline == std::string::npos ? 0 : last_newline + 1;
  log_warn("checkpoint {}: truncating torn unterminated tail ({} bytes)", path,
           content.size() - keep);
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
  return !ec;
}

}  // namespace

bool checkpoint_begin(const std::string& path, std::uint64_t master_seed) {
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // Repair a torn write before the first append of this run; if the tear
    // took the header with it, fall through and rewrite the header.
    if (!truncate_torn_tail(path)) return false;
    if (std::filesystem::file_size(path, ec) > 0 && !ec) return true;
  }
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << kCheckpointHeaderPrefix << master_seed << '\n';
  return static_cast<bool>(out);
}

bool checkpoint_append_panel(const std::string& path, const std::string& benchmark,
                             const std::string& architecture, double optimum_us) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out.precision(17);
  out << "panel," << benchmark << ',' << architecture << ',' << optimum_us << '\n';
  out.flush();
  return static_cast<bool>(out);
}

bool checkpoint_append_cell(const std::string& path, const std::string& benchmark,
                            const std::string& architecture,
                            const std::string& algorithm, std::size_t sample_size,
                            const CellOutcomes& cell) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out.precision(17);
  const tuner::FailureCounters& c = cell.failures;
  out << "cell," << benchmark << ',' << architecture << ',' << algorithm << ','
      << sample_size << ',' << cell.failed_experiments << ',' << c.ok << ','
      << c.invalid << ',' << c.transient << ',' << c.timeout << ',' << c.crashed
      << ',' << c.retries << ',' << c.retry_successes << ',' << c.backoff_us << ','
      << cell.final_times_us.size();
  for (double value : cell.final_times_us) out << ',' << value;
  out << '\n';
  out.flush();
  return static_cast<bool>(out);
}

namespace {

/// Parse one checkpoint record; throws on malformed content.
void apply_checkpoint_line(StudyCheckpoint& checkpoint, const std::string& line) {
  const std::vector<std::string> f = split_fields(line);
  if (f.empty()) throw std::runtime_error("empty record");
  if (f[0] == "panel") {
    if (f.size() != 4) throw std::runtime_error("panel record needs 4 fields");
    checkpoint.panel_optima[StudyCheckpoint::panel_key(f[1], f[2])] = std::stod(f[3]);
    return;
  }
  if (f[0] != "cell") throw std::runtime_error("unknown record kind: " + f[0]);
  if (f.size() < 15) throw std::runtime_error("cell record needs >= 15 fields");
  CellOutcomes cell;
  cell.failed_experiments = std::stoull(f[5]);
  cell.failures.ok = std::stoull(f[6]);
  cell.failures.invalid = std::stoull(f[7]);
  cell.failures.transient = std::stoull(f[8]);
  cell.failures.timeout = std::stoull(f[9]);
  cell.failures.crashed = std::stoull(f[10]);
  cell.failures.retries = std::stoull(f[11]);
  cell.failures.retry_successes = std::stoull(f[12]);
  cell.failures.backoff_us = std::stod(f[13]);
  const std::size_t count = std::stoull(f[14]);
  if (f.size() != 15 + count) {
    throw std::runtime_error("cell record truncated: expected " +
                             std::to_string(count) + " outcomes");
  }
  cell.final_times_us.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    cell.final_times_us.push_back(parse_outcome(f[15 + i]));
  }
  checkpoint.cells[StudyCheckpoint::cell_key(f[1], f[2], f[3], std::stoull(f[4]))] =
      std::move(cell);
}

}  // namespace

StudyCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());

  // Every checkpoint writer terminates its line with '\n', so an
  // unterminated final line is always a torn write — drop it even when its
  // prefix happens to parse.
  const bool terminated = !content.empty() && content.back() == '\n';
  std::vector<std::string> lines;
  std::string current;
  for (const char ch : content) {
    if (ch == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty() && !terminated) {
    log_warn("checkpoint {}: ignoring torn unterminated final line ({} bytes)", path,
             current.size());
  }
  for (std::string& line : lines) strip_line_ending(line);
  while (!lines.empty() && lines.back().empty()) lines.pop_back();

  StudyCheckpoint checkpoint;
  if (lines.empty()) {
    // Nothing but a torn (or absent) header survives: treat as a fresh
    // checkpoint — checkpoint_begin() repairs the file before appending.
    if (!content.empty()) {
      log_warn("checkpoint {}: header is torn; resuming with no completed cells",
               path);
    }
    return checkpoint;
  }
  if (lines.front().rfind(kCheckpointHeaderPrefix, 0) != 0) {
    throw std::runtime_error("load_checkpoint: bad header in " + path);
  }
  checkpoint.master_seed =
      std::stoull(lines.front().substr(std::string(kCheckpointHeaderPrefix).size()));

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    try {
      apply_checkpoint_line(checkpoint, lines[i]);
    } catch (const std::exception& error) {
      if (i + 1 == lines.size()) {
        // A crash can also tear a record that still got its '\n' flushed
        // separately; a malformed *final* record is dropped either way.
        log_warn("checkpoint {}: ignoring torn trailing record ({})", path,
                 error.what());
        break;
      }
      throw std::runtime_error("load_checkpoint: malformed record at line " +
                               std::to_string(i + 1) + " of " + path + ": " +
                               error.what());
    }
  }
  return checkpoint;
}

}  // namespace repro::harness
