#pragma once
// Client side of the tuning service: a synchronous RPC wrapper over the
// JSON-lines protocol plus a remote_minimize() convenience that drives a
// whole ask/tell loop against a caller-supplied objective.
//
// A Client owns one connection and performs the versioned hello handshake in
// connect(). Calls are strictly request/response, so one Client must not be
// shared between threads without external serialization; open as many
// clients (or sessions per client) as you need instead — sessions are
// addressed by id, not by connection.
//
// Resilience (all opt-in via ClientConfig):
//  - max_retries > 0 turns transport failures on idempotent requests into
//    reconnect + replay with deterministic exponential backoff (no RNG —
//    the backoff schedule is a pure function of the attempt number, so a
//    chaos-injected fault sequence replays bit-identically).
//  - Idempotency: tell carries a monotonic per-session seq (a replayed
//    duplicate is acknowledged, not double-applied), ask carries
//    resume:true (a reconnect re-fetches the proposal whose response was
//    lost), and open can carry a caller-supplied idempotency token.
//  - RETRY_LATER admission pushback is honored by waiting the server's
//    retry_after_ms hint (even for non-idempotent requests — pushback
//    means the request was not performed).
//  - heartbeat_ms > 0 bounds blocking asks/results with deadline_ms and
//    re-issues on deadline_exceeded: each cycle is a complete exchange, so
//    the server sees a live, progressing connection (and the session's
//    idle-eviction clock is touched) even while a slow search thinks.
//  - chaos.enabled injects deterministic, seeded network faults under the
//    framing layer (tests only; see service/chaos_socket.hpp).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/socket.hpp"
#include "service/chaos_socket.hpp"
#include "service/protocol.hpp"

namespace repro::service {

/// Thrown on transport failures (connect/read/write) as opposed to typed
/// server-side ProtocolError responses, which are rethrown as ProtocolError.
struct ClientError : std::runtime_error {
  enum class Kind {
    kConnect,       ///< could not establish the connection / handshake
    kNotConnected,  ///< call() without connect()
    kSend,          ///< connection lost while sending the request
    kClosed,        ///< orderly close while awaiting the response
    kMidFrameEof,   ///< stream torn mid-response-frame (partial frame lost)
    kMalformed,     ///< response was not a valid JSON frame
  };
  Kind kind;
  ClientError(Kind kind_in, const std::string& message)
      : std::runtime_error(message), kind(kind_in) {}
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "tune_client/1";
  /// Quota identity sent in the hello ("" = anonymous). The server scopes
  /// per-tenant session/tell quotas to it; under overload anonymous
  /// clients are shed first.
  std::string tenant;
  struct Endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
  };
  /// Client-side failover list. When non-empty it overrides host/port:
  /// every (re)connect walks the list *from the front* and takes the first
  /// endpoint that accepts and completes the hello handshake. The order is
  /// deterministic by design — identical runs dial identical endpoints —
  /// and a recovered earlier endpoint is preferred again on the next
  /// reconnect (sessions are addressed by id, not by connection, and with
  /// a cluster behind the list any router can route any session).
  std::vector<Endpoint> endpoints;
  /// Transport-failure retries per request (idempotent requests only).
  /// 0 = fail fast (legacy behavior).
  std::size_t max_retries = 0;
  /// Deterministic exponential backoff between retries:
  /// min(initial * multiplier^attempt, max). No jitter by design — the
  /// schedule must replay bit-identically under chaos testing.
  std::uint64_t backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_max_ms = 1000;
  /// Bound blocking asks/results to this per-attempt deadline and re-issue
  /// on deadline_exceeded (liveness heartbeat). 0 = park indefinitely.
  std::uint64_t heartbeat_ms = 0;
  /// Deterministic network-fault injection (tests). Each (re)connect seeds
  /// its injector with seed_combine(chaos_seed, connect_count) so fault
  /// placement is reproducible yet differs across reconnects.
  ChaosModel chaos;
  std::uint64_t chaos_seed = 0;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientConfig config) : config_(std::move(config)) {}

  /// Connect and perform the hello handshake. Throws ClientError on
  /// transport failure, ProtocolError (kVersionMismatch) when the server
  /// speaks a different protocol version.
  void connect();
  [[nodiscard]] bool connected() const noexcept { return connected_; }
  void disconnect();

  /// Raw RPC, single attempt on the current connection: send one request
  /// frame, return the response object. Throws ClientError on transport
  /// failure and ProtocolError when the server answers {"ok":false,...}.
  Json call(const Json& request);

  /// A non-empty idempotency `token` makes the open replay-safe: retried
  /// after a lost response, the server returns the existing session
  /// instead of opening a twin. Without a token, transport failures are
  /// not retried (the session may or may not exist server-side).
  [[nodiscard]] std::string open(const OpenParams& params,
                                 const std::string& token = {});
  /// nullopt once the session's search has terminated (fetch result()).
  [[nodiscard]] std::optional<tuner::Configuration> ask(const std::string& session);
  /// Returns the server's remaining-budget estimate.
  std::size_t tell(const std::string& session, const tuner::Evaluation& evaluation);
  std::size_t tell(const std::string& session, double value) {
    return tell(session, tuner::Evaluation{value, true, tuner::EvalStatus::kOk});
  }

  struct RemoteResult {
    tuner::TuneResult result;
    tuner::FailureCounters counters;
  };
  [[nodiscard]] RemoteResult result(const std::string& session);
  void close_session(const std::string& session);
  [[nodiscard]] Json status();
  void ping();

  /// Results-store ops (see docs/SERVICE.md). store_stats answers on any
  /// daemon (store_enabled:false when no store is configured); export and
  /// import answer kBadRequest without one.
  [[nodiscard]] Json store_stats();

  /// One page of a paged export. `next_cursor` is non-empty while more rows
  /// remain: pass it back as `cursor` to resume where this page stopped. A
  /// tenant whose rows span pages appears in each with the next row slice.
  struct ExportPage {
    std::vector<store::TenantSnapshot> tenants;
    bool truncated = false;    ///< rows beyond this page exist
    std::string next_cursor;   ///< resume token ("" = export complete)
  };
  [[nodiscard]] ExportPage store_export_page(const std::string& benchmark = "",
                                             const std::string& arch = "",
                                             std::size_t limit = 0,
                                             const std::string& cursor = "");

  /// Export tenant histories, optionally filtered. limit > 0 issues one
  /// request for at most that many rows (check store_export_page for the
  /// resume cursor); limit == 0 pages through the server's frame-size
  /// budget until the export is complete, merging page slices per tenant.
  [[nodiscard]] std::vector<store::TenantSnapshot> store_export(
      const std::string& benchmark = "", const std::string& arch = "",
      std::size_t limit = 0);
  /// Import tenant histories; returns the count of newly stored records
  /// (duplicates dedup server-side).
  std::size_t store_import(const std::vector<store::TenantSnapshot>& tenants);

  /// Drive a complete remote tuning session: open (with a deterministic
  /// idempotency token when retries are enabled), ask/tell with `objective`
  /// until the algorithm terminates, fetch the result, close.
  [[nodiscard]] RemoteResult remote_minimize(const OpenParams& params,
                                             const tuner::Objective& objective);

  /// Fault-injection tallies of the current connection's injector (zeroes
  /// when chaos is disabled or not connected).
  [[nodiscard]] ChaosCounters chaos_counters() const noexcept;
  /// Transport retries performed over this client's lifetime.
  [[nodiscard]] std::size_t retries() const noexcept { return retries_; }
  /// Reconnects performed over this client's lifetime (excludes the first
  /// connect()).
  [[nodiscard]] std::size_t reconnects() const noexcept { return reconnects_; }
  /// Index into config.endpoints the current (or last) connection used
  /// (always 0 when endpoints is empty).
  [[nodiscard]] std::size_t endpoint_index() const noexcept { return endpoint_index_; }

 private:
  /// The stream the framing layer uses: the chaos injector when enabled,
  /// the raw socket otherwise.
  [[nodiscard]] ByteIo& stream() noexcept;
  /// Dial + handshake one endpoint; throws ClientError/ProtocolError.
  void connect_one(const std::string& host, std::uint16_t port);
  /// call() + reconnect/backoff/RETRY_LATER handling. `idempotent` gates
  /// transport-failure replays; RETRY_LATER is honored either way.
  Json call_resilient(const Json& request, bool idempotent);
  void backoff_sleep(std::size_t attempt, std::uint64_t floor_ms);

  ClientConfig config_;
  Socket socket_;
  std::unique_ptr<ChaosSocket> chaos_;
  std::optional<FrameReader> reader_;
  bool connected_ = false;
  std::uint64_t connect_count_ = 0;
  std::size_t endpoint_index_ = 0;
  std::size_t retries_ = 0;
  std::size_t reconnects_ = 0;
  std::uint64_t open_counter_ = 0;
  /// Next tell seq per session id (1-based; the server acknowledges
  /// duplicates of anything at or below its applied watermark).
  std::unordered_map<std::string, std::uint64_t> next_seq_;
};

}  // namespace repro::service
