#pragma once
// Client side of the tuning service: a thin synchronous RPC wrapper over the
// JSON-lines protocol plus a remote_minimize() convenience that drives a
// whole ask/tell loop against a caller-supplied objective.
//
// A Client owns one connection and performs the versioned hello handshake in
// connect(). Calls are strictly request/response, so one Client must not be
// shared between threads without external serialization; open as many
// clients (or sessions per client) as you need instead — sessions are
// addressed by id, not by connection.

#include <cstdint>
#include <optional>
#include <string>

#include "common/socket.hpp"
#include "service/protocol.hpp"

namespace repro::service {

/// Thrown on transport failures (connect/read/write) as opposed to typed
/// server-side ProtocolError responses, which are rethrown as ProtocolError.
struct ClientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "tune_client/1";
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientConfig config) : config_(std::move(config)) {}

  /// Connect and perform the hello handshake. Throws ClientError on
  /// transport failure, ProtocolError (kVersionMismatch) when the server
  /// speaks a different protocol version.
  void connect();
  [[nodiscard]] bool connected() const noexcept { return connected_; }
  void disconnect();

  /// Raw RPC: send one request frame, return the response object. Throws
  /// ClientError on transport failure and ProtocolError when the server
  /// answers {"ok":false,...}.
  Json call(const Json& request);

  [[nodiscard]] std::string open(const OpenParams& params);
  /// nullopt once the session's search has terminated (fetch result()).
  [[nodiscard]] std::optional<tuner::Configuration> ask(const std::string& session);
  /// Returns the server's remaining-budget estimate.
  std::size_t tell(const std::string& session, const tuner::Evaluation& evaluation);
  std::size_t tell(const std::string& session, double value) {
    return tell(session, tuner::Evaluation{value, true, tuner::EvalStatus::kOk});
  }

  struct RemoteResult {
    tuner::TuneResult result;
    tuner::FailureCounters counters;
  };
  [[nodiscard]] RemoteResult result(const std::string& session);
  void close_session(const std::string& session);
  [[nodiscard]] Json status();
  void ping();

  /// Drive a complete remote tuning session: open, ask/tell with
  /// `objective` until the algorithm terminates, fetch the result, close.
  [[nodiscard]] RemoteResult remote_minimize(const OpenParams& params,
                                             const tuner::Objective& objective);

 private:
  ClientConfig config_;
  Socket socket_;
  std::optional<FrameReader> reader_;
  bool connected_ = false;
};

}  // namespace repro::service
