#include "service/session_manager.hpp"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

/// Keep enough tombstones to cover any realistic retry window without
/// letting a pathological eviction storm grow the list unboundedly.
constexpr std::size_t kTombstoneCap = 4096;

}  // namespace

SessionManager::SessionManager(SessionLimits limits,
                               std::shared_ptr<store::ResultsStore> store)
    : limits_(std::move(limits)), store_(std::move(store)) {
  // A shipper also exists (disabled, port 0) for every durable daemon:
  // reseed() retargets it at a follower later, and shipper_ must be
  // immutable after construction — lazy creation would race the unlocked
  // reads on the tell path.
  if (limits_.ship.port != 0 || !limits_.state_dir.empty()) {
    ShipConfig ship = limits_.ship;
    ship.state_dir = limits_.state_dir;  // resync source = our own journals
    shipper_ = std::make_unique<WalShipper>(std::move(ship), store_);
  }
}

void SessionManager::bind_store_tenant(ManagedSession& managed,
                                       const OpenParams& params) const {
  if (store_ == nullptr || params.benchmark.empty() || params.arch.empty()) return;
  managed.store_enabled = true;
  managed.store_key = store::StoreKey{params.benchmark, params.arch,
                                      space_fingerprint_of(params)};
}

void SessionManager::store_append(const ManagedSession& managed,
                                  const tuner::Configuration& config,
                                  const tuner::Evaluation& evaluation) {
  if (store_ == nullptr || !managed.store_enabled || config.empty()) return;
  const double value =
      evaluation.valid ? evaluation.value : std::numeric_limits<double>::quiet_NaN();
  try {
    (void)store_->append(managed.store_key, config, value, evaluation.valid);
  } catch (const store::StoreError& error) {
    log_warn("results store: dropping record for {}/{}: {}",
             managed.store_key.benchmark, managed.store_key.arch, error.what());
    repro::MutexLock lock(mutex_);
    ++store_errors_;
  }
}

SessionManager::~SessionManager() { cancel_all(); }

RecoveryStats SessionManager::recover() {
  RecoveryStats stats;
  if (limits_.state_dir.empty()) return stats;
  // Sorted scan: recovery order (and thus replay thread scheduling) is
  // deterministic across restarts.
  const std::vector<std::string> paths = list_session_wals(limits_.state_dir);
  // Idle-eviction bookkeeping; never feeds tuning results.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  for (const std::string& path : paths) {
    WalSession journal;
    try {
      journal = load_session_wal(path);
    } catch (const std::exception& error) {
      log_warn("recovery: dropping unrecoverable journal {}: {}", path, error.what());
      ++stats.sessions_failed;
      continue;
    }
    if (journal.torn_tail) ++stats.torn_tails;
    if (journal.closed) {
      // Crash landed between the close record and the unlink; finish the job.
      (void)::unlink(path.c_str());
      ++stats.closed_discarded;
      continue;
    }
    if (journal.evicted) {
      repro::MutexLock lock(mutex_);
      add_tombstone(journal.id);
      ++stats.evicted_tombstones;
      continue;
    }
    try {
      // A warm-started session recovers with the *journaled* prior snapshot
      // — never a fresh store query, which would see history appended since
      // the original open and diverge the replay.
      std::unique_ptr<tuner::SearchAlgorithm> algorithm =
          tuner::make_algorithm(journal.open.algorithm, journal.open.prior);
      tuner::ParamSpace space = journal.open.make_space();
      auto managed = std::make_shared<ManagedSession>(
          std::move(space), std::move(algorithm), journal.open.budget,
          journal.open.seed, journal.open.retry);
      managed->last_activity = now;
      managed->token = journal.token;
      managed->tenant = journal.open.tenant;
      bind_store_tenant(*managed, journal.open);
      // Replay: deterministic search must re-propose exactly the journaled
      // configurations; any divergence means the journal does not belong to
      // this binary/space and recovering it would corrupt the study.
      for (const WalTell& tell : journal.tells) {
        const std::optional<tuner::Configuration> config = managed->session.ask();
        if (!config || *config != tell.config) {
          throw std::runtime_error("replay diverged from journal at seq " +
                                   std::to_string(tell.seq));
        }
        managed->session.tell(tell.evaluation);
        // Re-append to the results store: dedup makes this idempotent when
        // the store already has the record, and it heals a store whose own
        // log lost a tail the session WAL retained.
        store_append(*managed, tell.config, tell.evaluation);
        ++stats.tells_replayed;
      }
      managed->applied_seq =
          journal.tells.empty() ? 0 : journal.tells.back().seq;
      managed->orphan_proposal = true;
      managed->wal = SessionWal::reattach(path, journal.valid_bytes);

      repro::MutexLock lock(mutex_);
      if (managed->wal == nullptr) ++wal_errors_;
      if (!managed->tenant.empty()) ++tenant_live_[managed->tenant];
      sessions_.emplace_back(journal.id, managed);
      ++opened_;
      asks_total_ += journal.tells.size();
      tells_total_ += journal.tells.size();
      for (const WalTell& tell : journal.tells) tallies_.count(tell.evaluation.status);
      // Keep fresh ids clear of every recovered id ("s<N>").
      if (journal.id.size() > 1 && journal.id[0] == 's') {
        try {
          const std::uint64_t numeric = std::stoull(journal.id.substr(1));
          next_id_ = std::max(next_id_, numeric + 1);
        } catch (const std::exception&) {
          // Foreign id scheme; fresh ids cannot collide with it.
        }
      }
      ++stats.sessions_recovered;
      log_info("recovery: session {} restored ({} tells replayed)", journal.id,
               journal.tells.size());
    } catch (const std::exception& error) {
      log_warn("recovery: cannot replay journal {}: {}", path, error.what());
      ++stats.sessions_failed;
    }
  }
  repro::MutexLock lock(mutex_);
  recovery_ = stats;
  return stats;
}

std::string SessionManager::open(const OpenParams& params, const std::string& token) {
  {
    repro::MutexLock lock(mutex_);
    if (!token.empty()) {
      for (auto& [id, managed] : sessions_) {
        if (managed->token == token) {
          // Idempotent re-open: the first response was lost, not the session.
          // Idle-eviction bookkeeping; never feeds tuning results.
          managed->last_activity = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
          return id;
        }
      }
    }
  }
  // Admission: reserves one slot (throwing the typed retry_later when the
  // caller must back off). The reservation is either consumed by the
  // registration below or returned by the guard on every other exit.
  admit(params.tenant);
  struct ReservationGuard {
    SessionManager* manager;
    const std::string* tenant;
    bool committed = false;
    ~ReservationGuard() {
      if (!committed) manager->release_admission(*tenant);
    }
  } reservation{this, &params.tenant};
  // Warm start: snapshot the tenant's prior history EXACTLY ONCE, here, at
  // the client-facing open. The snapshot rides `effective` into the WAL
  // open record and the ship_open frame, so recovery and the standby replay
  // the same prior verbatim instead of re-deriving it from a store that has
  // since moved on (which would diverge the deterministic replay).
  OpenParams effective = params;
  if (store_ != nullptr && effective.warm_start && effective.prior == nullptr &&
      !effective.benchmark.empty() && !effective.arch.empty()) {
    const store::StoreKey key{effective.benchmark, effective.arch,
                              space_fingerprint_of(effective)};
    const std::vector<store::StoreRecord> rows =
        store_->query(key, limits_.warm_start_max_rows);
    if (!rows.empty()) {
      tuner::PriorHistory prior;
      prior.reserve(rows.size());
      for (const store::StoreRecord& row : rows) {
        prior.push_back(tuner::PriorObservation{row.config, row.value, row.valid});
      }
      effective.prior = std::make_shared<const tuner::PriorHistory>(std::move(prior));
    }
  }
  // Construct outside the lock: registry lookup and space building can
  // throw, and AskTellSession starts a thread.
  std::unique_ptr<tuner::SearchAlgorithm> algorithm;
  try {
    algorithm = tuner::make_algorithm(effective.algorithm, effective.prior);
  } catch (const std::out_of_range&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "unknown algorithm: " + params.algorithm);
  }
  tuner::ParamSpace space = effective.make_space();
  auto managed = std::make_shared<ManagedSession>(
      std::move(space), std::move(algorithm), effective.budget, effective.seed,
      effective.retry);
  // Idle-eviction bookkeeping; never feeds tuning results.
  managed->last_activity = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  managed->token = token;
  managed->tenant = effective.tenant;
  bind_store_tenant(*managed, effective);

  std::string id;
  {
    repro::MutexLock lock(mutex_);
    if (!token.empty()) {
      for (auto& [existing_id, existing] : sessions_) {
        if (existing->token == token) {
          // Lost the race against a concurrent open with the same token.
          managed->session.cancel();
          return existing_id;
        }
      }
    }
    // The admit() reservation guarantees a slot; convert it into the live
    // registration.
    consume_reservation_locked(params.tenant);
    reservation.committed = true;
    if (!managed->tenant.empty()) ++tenant_live_[managed->tenant];
    // push_back+append sidesteps a GCC 12 -Wrestrict false positive
    // (PR105329) on assigning the concatenation temporary.
    id.push_back('s');
    id += std::to_string(next_id_++);
    sessions_.emplace_back(id, managed);
    ++opened_;
  }
  // Journal the open before the caller can observe the id: once the client
  // sees this session exist, a crash must not forget it. `effective`
  // carries the prior snapshot, so recovery warm-starts identically.
  if (!limits_.state_dir.empty()) {
    managed->wal =
        SessionWal::create(wal_path(limits_.state_dir, id), id, token, effective);
    if (managed->wal == nullptr) {
      repro::MutexLock lock(mutex_);
      ++wal_errors_;
    }
  }
  // Replicate the open to the hot standby before the id is observable, for
  // the same reason the journal is written first. A ship failure degrades
  // the shard (resync repairs it later), it never fails the open.
  if (shipper_ != nullptr) (void)shipper_->ship_open(id, token, effective);
  log_debug("session {} opened: {} budget={} seed={}{}", id, effective.algorithm,
            effective.budget, effective.seed,
            effective.prior != nullptr && !effective.prior->empty()
                ? " (warm start: " + std::to_string(effective.prior->size()) +
                      " prior rows)"
                : "");
  return id;
}

void SessionManager::add_tombstone(const std::string& id) {
  if (std::find(tombstones_.begin(), tombstones_.end(), id) != tombstones_.end())
    return;
  if (tombstones_.size() >= kTombstoneCap)
    tombstones_.erase(tombstones_.begin());
  tombstones_.push_back(id);
}

void SessionManager::throw_missing(const std::string& id) {
  if (std::find(tombstones_.begin(), tombstones_.end(), id) != tombstones_.end()) {
    throw ProtocolError(ErrorCode::kSessionEvicted,
                        "session " + id + " was evicted (idle timeout)");
  }
  throw ProtocolError(ErrorCode::kUnknownSession, "unknown session: " + id);
}

std::shared_ptr<SessionManager::ManagedSession> SessionManager::find_and_touch(
    const std::string& id) {
  repro::MutexLock lock(mutex_);
  for (auto& [key, session] : sessions_) {
    if (key == id) {
      // Idle-eviction bookkeeping; never feeds tuning results.
      session->last_activity = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
      return session;
    }
  }
  throw_missing(id);
  return nullptr;  // unreachable; throw_missing always throws
}

std::optional<tuner::Configuration> SessionManager::ask(
    const std::string& id,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    bool resume) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  if (resume) {
    // Reconnect path: if the proposal the client lost is still outstanding,
    // hand it out again instead of tripping kAskPending. Falls through to a
    // fresh ask when nothing is outstanding (the response the client lost
    // was a tell-ack, not an ask).
    if (const auto config = managed->session.outstanding_config()) return config;
  }
  try {
    // Blocks; manager mutex NOT held.
    auto config = deadline ? managed->session.ask_until(*deadline)
                           : managed->session.ask();
    repro::MutexLock lock(mutex_);
    ++asks_total_;
    managed->orphan_proposal = false;
    return config;
  } catch (const tuner::AskPendingError& error) {
    throw ProtocolError(ErrorCode::kAskPending, error.what());
  } catch (const tuner::DeadlineExceeded& error) {
    throw ProtocolError(ErrorCode::kDeadlineExceeded, error.what());
  } catch (const tuner::SessionCancelled&) {
    throw ProtocolError(ErrorCode::kSessionClosed,
                        "session " + id + " was cancelled while ask was blocked");
  }
}

SessionManager::TellAck SessionManager::tell(const std::string& id,
                                             const tuner::Evaluation& evaluation,
                                             std::uint64_t seq) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  // In-flight tell quota: an executing tell pins a connection thread through
  // the WAL fsync and the standby's ack; bound what one tenant may pin.
  // Charged before the duplicate check (a retry storm is load too).
  struct InflightCredit {
    SessionManager* manager = nullptr;
    const std::string* tenant = nullptr;
    ~InflightCredit() {
      if (manager != nullptr) manager->end_inflight_tell(*tenant);
    }
  } credit;
  if (begin_inflight_tell(managed->tenant)) {
    credit.manager = this;
    credit.tenant = &managed->tenant;
  }
  bool orphan = false;
  if (seq != 0) {
    repro::MutexLock lock(mutex_);
    orphan = managed->orphan_proposal;
    if (seq <= managed->applied_seq) {
      // Retried frame whose first delivery was applied but whose ack was
      // lost. Acknowledge without re-applying.
      ++duplicate_tells_;
      const std::size_t told = managed->session.tells();
      const std::size_t budget = managed->session.budget();
      return TellAck{told >= budget ? 0 : budget - told, true};
    }
    if (seq != managed->applied_seq + 1) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "tell seq gap: got " + std::to_string(seq) +
                              ", expected " +
                              std::to_string(managed->applied_seq + 1));
    }
  }
  // Snapshot the proposal being answered before tell() clears it — it is
  // journaled alongside the measurement as a replay integrity check.
  std::optional<tuner::Configuration> config =
      managed->session.outstanding_config();
  try {
    managed->session.tell(evaluation);
  } catch (const tuner::TellMismatchError& error) {
    if (seq == 0 || !orphan)
      throw ProtocolError(ErrorCode::kNoAskOutstanding, error.what());
    // Failover race: the proposal this seq answers was handed out by a
    // previous incarnation that died before the tell arrived (a promoted
    // standby's replica sessions hold no outstanding ask; a recovered
    // primary's replayed sessions don't either). The orphan flag proved
    // no ask left THIS incarnation, the seq gate proved this is the next
    // unapplied measurement, and the deterministic search re-proposes
    // exactly the configuration the client evaluated — ask here and apply
    // the retried tell to it.
    try {
      config = managed->session.ask();
      if (!config)
        throw ProtocolError(ErrorCode::kNoAskOutstanding,
                            "retried tell " + std::to_string(seq) +
                                " arrived after the search finished");
      managed->session.tell(evaluation);
    } catch (const tuner::AskPendingError& inner) {
      throw ProtocolError(ErrorCode::kAskPending, inner.what());
    } catch (const tuner::TellMismatchError& inner) {
      throw ProtocolError(ErrorCode::kNoAskOutstanding, inner.what());
    } catch (const tuner::SessionCancelled&) {
      throw ProtocolError(ErrorCode::kSessionClosed,
                          "session " + id + " was cancelled while the retried "
                          "tell re-asked");
    }
  }
  std::uint64_t applied = 0;
  {
    repro::MutexLock lock(mutex_);
    applied = managed->applied_seq = seq != 0 ? seq : managed->applied_seq + 1;
    managed->orphan_proposal = false;
    ++tells_total_;
    tallies_.count(evaluation.status);
  }
  // Durability barrier: the ack frame must not leave before the journal
  // record is on disk, or a crash loses an acknowledged measurement.
  if (managed->wal != nullptr &&
      !managed->wal->append_tell(applied, config.value_or(tuner::Configuration{}),
                                 evaluation)) {
    repro::MutexLock lock(mutex_);
    ++wal_errors_;
  }
  // Results-store barrier: the tenant's history record is fsync'd before
  // the ack leaves too, so an acknowledged tell can warm-start future
  // sessions even across a crash.
  if (config.has_value()) store_append(*managed, *config, evaluation);
  // Replication barrier: while the ship link is up, the ack also waits for
  // the standby's fsync'd apply — an acknowledged tell then survives a
  // primary SIGKILL with zero client-visible loss. On ship failure the
  // shard keeps serving (degraded) and resync converges the standby later.
  if (shipper_ != nullptr) {
    (void)shipper_->ship_tell(id, applied, config.value_or(tuner::Configuration{}),
                              evaluation);
  }
  const std::size_t told = managed->session.tells();
  const std::size_t budget = managed->session.budget();
  return TellAck{told >= budget ? 0 : budget - told, false};
}

SessionManager::ResultPayload SessionManager::result(
    const std::string& id,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  ResultPayload payload;
  try {
    // Blocks until finished; manager mutex NOT held.
    payload.result = deadline ? managed->session.result_until(*deadline)
                              : managed->session.result();
  } catch (const tuner::DeadlineExceeded& error) {
    throw ProtocolError(ErrorCode::kDeadlineExceeded, error.what());
  } catch (const tuner::SessionCancelled&) {
    throw ProtocolError(ErrorCode::kSessionClosed,
                        "session " + id + " was cancelled before finishing");
  } catch (const std::exception& error) {
    throw ProtocolError(ErrorCode::kInternal,
                        std::string("search thread failed: ") + error.what());
  }
  payload.counters = managed->session.counters();
  return payload;
}

void SessionManager::close(const std::string& id) {
  std::shared_ptr<ManagedSession> managed;
  {
    repro::MutexLock lock(mutex_);
    const auto it = std::find_if(sessions_.begin(), sessions_.end(),
                                 [&](const auto& entry) { return entry.first == id; });
    if (it == sessions_.end()) throw_missing(id);
    managed = std::move(it->second);
    sessions_.erase(it);
    ++closed_;
    note_removed_locked(*managed);
  }
  // Terminal record then unlink: if the crash lands between the two,
  // recovery sees the close record and finishes the unlink.
  if (managed->wal != nullptr) {
    const std::string path = managed->wal->path();
    if (!managed->wal->append_close()) {
      repro::MutexLock lock(mutex_);
      ++wal_errors_;
    }
    managed->wal.reset();
    (void)::unlink(path.c_str());
  }
  if (shipper_ != nullptr) (void)shipper_->ship_close(id);
  // Cancel + destroy outside the lock: the session destructor joins the
  // search thread, which may need a moment to observe the cancel.
  managed->session.cancel();
  log_debug("session {} closed", id);
}

std::size_t SessionManager::evict_idle() {
  if (limits_.idle_timeout.count() <= 0) return 0;
  // Idle-eviction bookkeeping; never feeds tuning results.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> victims;
  {
    repro::MutexLock lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - it->second->last_activity);
      if (idle > limits_.idle_timeout) {
        add_tombstone(it->first);
        credit_tenant_locked(it->second->tenant);
        victims.emplace_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    evicted_ += victims.size();
    // One drain after the sweep: freed slots go to queued opens only once
    // sessions_ reflects every removal.
    if (!victims.empty()) drain_admission_locked();
  }
  for (auto& [id, managed] : victims) {
    // Persist the eviction: the journal stays behind as a tombstone so a
    // restarted daemon reports kSessionEvicted instead of resurrecting a
    // session the policy already reaped.
    if (managed->wal != nullptr && !managed->wal->append_evicted()) {
      repro::MutexLock lock(mutex_);
      ++wal_errors_;
    }
    if (shipper_ != nullptr) (void)shipper_->ship_evict(id);
    managed->session.cancel();
    log_info("session {} evicted after {}ms idle", id,
             limits_.idle_timeout.count());
  }
  return victims.size();
}

std::shared_ptr<SessionManager::ManagedSession> SessionManager::register_session(
    const std::string& id, const OpenParams& params, const std::string& token) {
  {
    repro::MutexLock lock(mutex_);
    for (auto& [key, existing] : sessions_) {
      if (key == id) return nullptr;  // already live: idempotent re-delivery
    }
    // Replica/recovery opens bypass tenant quotas (the primary already
    // admitted them; refusing here would diverge the replica) but respect
    // the global cap, counting client opens' outstanding reservations.
    if (sessions_.size() + reserved_ >= limits_.max_sessions) {
      throw ProtocolError(ErrorCode::kRetryLater,
                          "session limit reached (" +
                              std::to_string(limits_.max_sessions) + ")",
                          limits_.retry_after_ms);
    }
  }
  std::unique_ptr<tuner::SearchAlgorithm> algorithm;
  try {
    // Replica/recovery path: the prior snapshot (if any) is the one the
    // primary journaled — never re-derived here.
    algorithm = tuner::make_algorithm(params.algorithm, params.prior);
  } catch (const std::out_of_range&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "unknown algorithm: " + params.algorithm);
  }
  tuner::ParamSpace space = params.make_space();
  auto managed = std::make_shared<ManagedSession>(
      std::move(space), std::move(algorithm), params.budget, params.seed,
      params.retry);
  // Idle-eviction bookkeeping; never feeds tuning results.
  managed->last_activity = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  managed->token = token;
  managed->tenant = params.tenant;
  bind_store_tenant(*managed, params);
  {
    repro::MutexLock lock(mutex_);
    for (auto& [key, existing] : sessions_) {
      if (key == id) {
        // Lost a race against a concurrent delivery of the same record.
        managed->session.cancel();
        return nullptr;
      }
    }
    if (sessions_.size() + reserved_ >= limits_.max_sessions) {
      managed->session.cancel();
      throw ProtocolError(ErrorCode::kRetryLater,
                          "session limit reached (" +
                              std::to_string(limits_.max_sessions) + ")",
                          limits_.retry_after_ms);
    }
    if (!managed->tenant.empty()) ++tenant_live_[managed->tenant];
    sessions_.emplace_back(id, managed);
    ++opened_;
    // Keep locally-minted ids clear of the adopted one ("s<N>" scheme).
    if (id.size() > 1 && id[0] == 's') {
      try {
        next_id_ = std::max<std::uint64_t>(next_id_, std::stoull(id.substr(1)) + 1);
      } catch (const std::exception&) {
        // Foreign id scheme; fresh ids cannot collide with it.
      }
    }
  }
  return managed;
}

void SessionManager::open_replica(const std::string& id, const OpenParams& params,
                                  const std::string& token) {
  const std::shared_ptr<ManagedSession> managed = register_session(id, params, token);
  if (managed == nullptr) return;  // duplicate ship_open: already applied
  {
    // Replica sessions never serve asks; if this one ever faces a client
    // (promotion), its outstanding proposal lives on the deposed primary.
    repro::MutexLock lock(mutex_);
    managed->orphan_proposal = true;
  }
  // The replica journals too: a follower crash (or a promoted follower's
  // later crash) recovers through the ordinary recover() path.
  if (!limits_.state_dir.empty()) {
    managed->wal =
        SessionWal::create(wal_path(limits_.state_dir, id), id, token, params);
    if (managed->wal == nullptr) {
      repro::MutexLock lock(mutex_);
      ++wal_errors_;
    }
  }
  log_debug("replica session {} opened: {} budget={} seed={}", id,
            params.algorithm, params.budget, params.seed);
}

SessionManager::TellAck SessionManager::apply_replica_tell(
    const std::string& id, std::uint64_t seq, const tuner::Configuration& config,
    const tuner::Evaluation& evaluation) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  {
    repro::MutexLock lock(mutex_);
    if (seq != 0 && seq <= managed->applied_seq) {
      // Resync re-ships whole journals; records at or below the watermark
      // were applied by an earlier delivery.
      ++duplicate_tells_;
      const std::size_t told = managed->session.tells();
      const std::size_t budget = managed->session.budget();
      return TellAck{told >= budget ? 0 : budget - told, true};
    }
    if (seq != 0 && seq != managed->applied_seq + 1) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "ship_tell seq gap: got " + std::to_string(seq) +
                              ", expected " +
                              std::to_string(managed->applied_seq + 1));
    }
  }
  // The replay step recover() performs per journal record, done live: the
  // deterministic search must re-propose exactly the shipped config, or
  // this replica does not mirror the primary and must refuse the record.
  std::optional<tuner::Configuration> proposal;
  try {
    proposal = managed->session.ask();
  } catch (const tuner::AskPendingError&) {
    proposal = managed->session.outstanding_config();
  } catch (const tuner::SessionCancelled&) {
    throw ProtocolError(ErrorCode::kSessionClosed,
                        "replica session " + id + " was cancelled");
  }
  if (!proposal || *proposal != config) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "replica diverged from shipped record at seq " +
                            std::to_string(seq));
  }
  try {
    managed->session.tell(evaluation);
  } catch (const tuner::TellMismatchError& error) {
    throw ProtocolError(ErrorCode::kNoAskOutstanding, error.what());
  }
  std::uint64_t applied = 0;
  {
    repro::MutexLock lock(mutex_);
    applied = managed->applied_seq = seq != 0 ? seq : managed->applied_seq + 1;
    ++tells_total_;
    tallies_.count(evaluation.status);
  }
  // Same durability barrier as the primary: the ship ack must not leave
  // before this record is on the follower's disk.
  if (managed->wal != nullptr && !managed->wal->append_tell(applied, config, evaluation)) {
    repro::MutexLock lock(mutex_);
    ++wal_errors_;
  }
  // The standby's own results store gets the record too: a promoted shard
  // must warm-start future tenants exactly like the primary it replaces.
  store_append(*managed, config, evaluation);
  const std::size_t told = managed->session.tells();
  const std::size_t budget = managed->session.budget();
  return TellAck{told >= budget ? 0 : budget - told, false};
}

void SessionManager::close_replica(const std::string& id) {
  try {
    close(id);
  } catch (const ProtocolError&) {
    // Duplicate ship_close (or close of a session an earlier resync never
    // created): the end state — no such session — already holds.
  }
}

void SessionManager::evict_replica(const std::string& id) {
  std::shared_ptr<ManagedSession> managed;
  {
    repro::MutexLock lock(mutex_);
    const auto it = std::find_if(sessions_.begin(), sessions_.end(),
                                 [&](const auto& entry) { return entry.first == id; });
    add_tombstone(id);
    if (it == sessions_.end()) return;  // duplicate delivery
    managed = std::move(it->second);
    sessions_.erase(it);
    ++evicted_;
    note_removed_locked(*managed);
  }
  if (managed->wal != nullptr && !managed->wal->append_evicted()) {
    repro::MutexLock lock(mutex_);
    ++wal_errors_;
  }
  managed->session.cancel();
  log_debug("replica session {} evicted (shipped record)", id);
}

void SessionManager::connect_shipper() {
  if (shipper_ != nullptr) (void)shipper_->connect_now();
}

void SessionManager::ship_store_import(
    const std::vector<store::TenantSnapshot>& tenants) {
  if (shipper_ != nullptr) (void)shipper_->ship_store_import(tenants);
}

// --- tenant-fair admission ---------------------------------------------------

std::uint64_t SessionManager::retry_hint_locked() const {
  // Depth-scaled backoff: every queued open ahead of a shed caller is work
  // the daemon must absorb before a retry can succeed. Capped at 16x so the
  // hint never tells a client to disappear for minutes.
  const std::uint64_t factor =
      1 + std::min<std::uint64_t>(admission_depth_, 15);
  return limits_.retry_after_ms * factor;
}

void SessionManager::admit(const std::string& tenant) {
  const TenantQuotas& quotas = limits_.quotas;
  repro::MutexLock lock(mutex_);
  if (!tenant.empty() && quotas.max_sessions_per_tenant != 0) {
    const auto live_it = tenant_live_.find(tenant);
    const auto reserved_it = reserved_by_tenant_.find(tenant);
    const std::size_t held =
        (live_it != tenant_live_.end() ? live_it->second : 0) +
        (reserved_it != reserved_by_tenant_.end() ? reserved_it->second : 0);
    if (held >= quotas.max_sessions_per_tenant) {
      ++shed_over_quota_;
      throw ProtocolError(ErrorCode::kRetryLater,
                          "tenant " + tenant + " session quota reached (" +
                              std::to_string(quotas.max_sessions_per_tenant) +
                              ")",
                          retry_hint_locked());
    }
  }
  if (sessions_.size() + reserved_ < limits_.max_sessions) {
    ++reserved_;
    if (!tenant.empty()) ++reserved_by_tenant_[tenant];
    return;
  }
  // Global cap reached. The admission queue is reserved for named, in-quota
  // tenants: anonymous opens (and everyone when queueing is off) shed
  // immediately with the depth-scaled hint. In-flight sessions are never
  // shed — overload only ever refuses *new* work.
  const bool can_queue = !tenant.empty() && quotas.admission_queue_cap != 0 &&
                         quotas.admission_wait.count() > 0;
  if (!can_queue) {
    if (tenant.empty() && quotas.enabled()) ++shed_anonymous_;
    throw ProtocolError(ErrorCode::kRetryLater,
                        "session limit reached (" +
                            std::to_string(limits_.max_sessions) + ")",
                        retry_hint_locked());
  }
  if (admission_depth_ >= quotas.admission_queue_cap) {
    ++shed_queue_full_;
    throw ProtocolError(ErrorCode::kRetryLater,
                        "admission queue full (" +
                            std::to_string(quotas.admission_queue_cap) + ")",
                        retry_hint_locked());
  }
  auto waiter = std::make_shared<AdmissionWaiter>();
  waiter->tenant = tenant;
  admission_queues_[tenant].push_back(waiter);
  ++admission_depth_;
  ++admission_queued_total_;
  // Park until the drain hands this waiter a freed slot (or the wait
  // budget runs out). The condvar releases mutex_ while parked.
  (void)admission_cv_.wait_for(lock.native(), quotas.admission_wait, [&] {
    return waiter->granted || waiter->failed;
  });
  if (waiter->granted) return;  // the drain already reserved our slot
  if (waiter->failed) {
    // Flushed by shutdown/demote; the queue entry is already gone.
    throw ProtocolError(ErrorCode::kRetryLater, "admission queue flushed",
                        retry_hint_locked());
  }
  // Timed out while still queued: withdraw.
  const auto it = admission_queues_.find(tenant);
  if (it != admission_queues_.end()) {
    auto& queue = it->second;
    queue.erase(std::remove(queue.begin(), queue.end(), waiter), queue.end());
    if (queue.empty()) admission_queues_.erase(it);
  }
  --admission_depth_;
  ++admission_timeouts_;
  throw ProtocolError(ErrorCode::kRetryLater,
                      "admission queue wait exceeded (" +
                          std::to_string(quotas.admission_wait.count()) + "ms)",
                      retry_hint_locked());
}

void SessionManager::release_admission(const std::string& tenant) {
  repro::MutexLock lock(mutex_);
  consume_reservation_locked(tenant);
  drain_admission_locked();  // the returned slot may admit a queued open
}

void SessionManager::consume_reservation_locked(const std::string& tenant) {
  if (reserved_ != 0) --reserved_;
  if (!tenant.empty()) {
    const auto it = reserved_by_tenant_.find(tenant);
    if (it != reserved_by_tenant_.end() && --(it->second) == 0)
      reserved_by_tenant_.erase(it);
  }
}

void SessionManager::credit_tenant_locked(const std::string& tenant) {
  if (tenant.empty()) return;
  const auto it = tenant_live_.find(tenant);
  if (it != tenant_live_.end() && --(it->second) == 0) tenant_live_.erase(it);
}

void SessionManager::note_removed_locked(const ManagedSession& managed) {
  credit_tenant_locked(managed.tenant);
  drain_admission_locked();
}

void SessionManager::drain_admission_locked() {
  bool granted_any = false;
  while (admission_depth_ != 0 &&
         sessions_.size() + reserved_ < limits_.max_sessions) {
    // Deficit round robin, quantum one: the tenant after the cursor gets
    // the freed slot, so one tenant's burst cannot starve the rest.
    auto it = admission_queues_.upper_bound(drr_cursor_);
    if (it == admission_queues_.end()) it = admission_queues_.begin();
    if (it == admission_queues_.end()) break;  // depth desynced; bail safe
    drr_cursor_ = it->first;
    auto& queue = it->second;
    std::shared_ptr<AdmissionWaiter> waiter;
    while (!queue.empty()) {
      waiter = std::move(queue.front());
      queue.pop_front();
      --admission_depth_;
      if (!waiter->failed) break;
      waiter.reset();
    }
    if (queue.empty()) admission_queues_.erase(it);
    if (waiter == nullptr) continue;
    waiter->granted = true;
    ++reserved_;
    if (!waiter->tenant.empty()) ++reserved_by_tenant_[waiter->tenant];
    ++admission_granted_;
    granted_any = true;
  }
  if (granted_any) admission_cv_.notify_all();
}

void SessionManager::flush_admission_locked() {
  if (admission_queues_.empty()) return;
  for (auto& [tenant, queue] : admission_queues_) {
    for (const std::shared_ptr<AdmissionWaiter>& waiter : queue)
      waiter->failed = true;
  }
  admission_queues_.clear();
  admission_depth_ = 0;
  admission_cv_.notify_all();
}

bool SessionManager::begin_inflight_tell(const std::string& tenant) {
  if (tenant.empty() || limits_.quotas.max_inflight_tells_per_tenant == 0)
    return false;
  repro::MutexLock lock(mutex_);
  std::size_t& inflight = tenant_inflight_[tenant];
  if (inflight >= limits_.quotas.max_inflight_tells_per_tenant) {
    ++tell_pushbacks_;
    throw ProtocolError(ErrorCode::kRetryLater,
                        "tenant " + tenant + " tell quota reached (" +
                            std::to_string(
                                limits_.quotas.max_inflight_tells_per_tenant) +
                            ")",
                        limits_.retry_after_ms);
  }
  ++inflight;
  return true;
}

void SessionManager::end_inflight_tell(const std::string& tenant) {
  repro::MutexLock lock(mutex_);
  const auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && --(it->second) == 0)
    tenant_inflight_.erase(it);
}

// --- self-healing ------------------------------------------------------------

bool SessionManager::reseed(const std::string& host, std::uint16_t port) {
  if (shipper_ == nullptr || limits_.state_dir.empty()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "reseed requires durability (--state-dir): local "
                        "journals are the resync source");
  }
  if (host.empty() || port == 0) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "reseed needs a follower host and port");
  }
  shipper_->retarget(host, port);
  const bool hot = shipper_->connect_now();
  log_info("reseed: follower {}:{} {}", host, port,
           hot ? "is hot" : "still catching up (redial pending)");
  return hot;
}

std::size_t SessionManager::demote_reset() {
  // Stop replicating first: a deposed primary must never ship its divergent
  // tail anywhere (also clears the fence so a later reseed can retarget).
  if (shipper_ != nullptr) shipper_->retarget("", 0);
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> victims;
  {
    repro::MutexLock lock(mutex_);
    victims.swap(sessions_);
    closed_ += victims.size();
    tenant_live_.clear();
    tombstones_.clear();
    flush_admission_locked();
  }
  for (auto& [id, managed] : victims) {
    // These journals are the divergent tail the new primary never
    // acknowledged. Keeping them would resurrect zombie sessions on the
    // next restart; the rejoined standby is rebuilt from the new primary's
    // history via resync instead.
    if (managed->wal != nullptr) {
      const std::string path = managed->wal->path();
      managed->wal.reset();
      (void)::unlink(path.c_str());
    }
    managed->session.cancel();
  }
  // Sweep journals no live session owned (eviction tombstones, journals
  // recovery could not replay): the rejoining standby starts clean.
  if (!limits_.state_dir.empty()) {
    try {
      for (const std::string& path : list_session_wals(limits_.state_dir)) {
        (void)::unlink(path.c_str());
      }
    } catch (const std::exception& error) {
      log_warn("demote: cannot sweep {}: {}", limits_.state_dir, error.what());
    }
  }
  std::size_t dropped_rows = 0;
  if (store_ != nullptr) dropped_rows = store_->reset();
  log_info("demote: dropped {} session(s) and {} store row(s); ready to "
           "re-seed as a standby",
           victims.size(), dropped_rows);
  return victims.size();
}

void SessionManager::cancel_all() {
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> victims;
  {
    repro::MutexLock lock(mutex_);
    victims.swap(sessions_);
    closed_ += victims.size();
    tenant_live_.clear();
    // Queued opens wake into retry_later: the daemon is going away, there
    // is no slot coming.
    flush_admission_locked();
  }
  // No terminal journal records here — an abandoned live journal is exactly
  // what recover() resurrects, so shutdown-with-live-sessions behaves like
  // a crash (by design: the daemon stopping is not the client giving up).
  for (auto& [id, managed] : victims) managed->session.cancel();
  // Destruction (thread joins) happens as `victims` goes out of scope.
}

std::size_t SessionManager::live() const {
  repro::MutexLock lock(mutex_);
  return sessions_.size();
}

StatusReport SessionManager::status() const {
  StatusReport report;
  repro::MutexLock lock(mutex_);
  report.live_sessions = sessions_.size();
  report.opened = opened_;
  report.closed = closed_;
  report.evicted = evicted_;
  report.asks = asks_total_;
  report.tells = tells_total_;
  report.duplicate_tells = duplicate_tells_;
  report.wal_errors = wal_errors_;
  report.store_errors = store_errors_;
  report.wal_enabled = !limits_.state_dir.empty();
  report.store_enabled = store_ != nullptr;
  report.recovery = recovery_;
  report.tallies = tallies_;
  if (shipper_ != nullptr) {
    report.ship_enabled = shipper_->enabled();
    report.ship_connected = shipper_->connected();
    report.ship_fenced = shipper_->fenced();
    report.ship_state = shipper_->state();
    const std::pair<std::string, std::uint16_t> target = shipper_->target();
    if (target.second != 0)
      report.ship_target = target.first + ":" + std::to_string(target.second);
    report.ship = shipper_->counters();
  }
  report.quotas.enabled = limits_.quotas.enabled();
  report.quotas.queue_depth = admission_depth_;
  report.quotas.queued = admission_queued_total_;
  report.quotas.granted = admission_granted_;
  report.quotas.timeouts = admission_timeouts_;
  report.quotas.shed_anonymous = shed_anonymous_;
  report.quotas.shed_over_quota = shed_over_quota_;
  report.quotas.shed_queue_full = shed_queue_full_;
  report.quotas.tell_pushbacks = tell_pushbacks_;
  {
    // Merge live / in-flight / queued views into one sorted row per tenant.
    std::map<std::string, StatusReport::TenantStatus> tenants;
    for (const auto& [tenant, count] : tenant_live_) {  // NOLINT(reprolint-unordered-iteration)
      tenants[tenant].sessions = count;
    }
    for (const auto& [tenant, count] : tenant_inflight_) {  // NOLINT(reprolint-unordered-iteration)
      tenants[tenant].inflight_tells = count;
    }
    for (const auto& [tenant, queue] : admission_queues_) {
      tenants[tenant].queued = queue.size();
    }
    report.quotas.tenants.reserve(tenants.size());
    for (auto& [tenant, row] : tenants) {
      row.tenant = tenant;
      report.quotas.tenants.push_back(std::move(row));
    }
  }
  for (const auto& [id, managed] : sessions_) {
    if (managed->session.finished()) ++report.finished;
  }
  return report;
}

std::vector<SessionInfo> SessionManager::sessions() const {
  // Status-endpoint idle ages; never feed tuning results.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  std::vector<SessionInfo> infos;
  repro::MutexLock lock(mutex_);
  infos.reserve(sessions_.size());
  for (const auto& [id, managed] : sessions_) {
    SessionInfo info;
    info.id = id;
    info.algorithm = managed->session.algorithm_name();
    info.budget = managed->session.budget();
    info.asks = managed->session.asks();
    info.tells = managed->session.tells();
    info.finished = managed->session.finished();
    info.idle = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - managed->last_activity);
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace repro::service
