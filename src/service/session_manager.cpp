#include "service/session_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "tuner/registry.hpp"

namespace repro::service {

SessionManager::SessionManager(SessionLimits limits) : limits_(limits) {}

SessionManager::~SessionManager() { cancel_all(); }

std::string SessionManager::open(const OpenParams& params) {
  {
    // Cheap early rejection; rechecked after construction since the lock
    // is released in between.
    repro::MutexLock lock(mutex_);
    if (sessions_.size() >= limits_.max_sessions) {
      throw ProtocolError(ErrorCode::kSessionLimit,
                          "session limit reached (" +
                              std::to_string(limits_.max_sessions) + ")");
    }
  }
  // Construct outside the lock: registry lookup and space building can
  // throw, and AskTellSession starts a thread.
  std::unique_ptr<tuner::SearchAlgorithm> algorithm;
  try {
    algorithm = tuner::make_algorithm(params.algorithm);
  } catch (const std::out_of_range&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "unknown algorithm: " + params.algorithm);
  }
  tuner::ParamSpace space = params.make_space();
  auto managed = std::make_shared<ManagedSession>(
      std::move(space), std::move(algorithm), params.budget, params.seed,
      params.retry);
  // Idle-eviction bookkeeping; never feeds tuning results.
  managed->last_activity = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)

  std::string id;
  {
    repro::MutexLock lock(mutex_);
    if (sessions_.size() >= limits_.max_sessions) {
      // managed is destroyed below (cancels its freshly-started thread).
      id.clear();
    } else {
      // push_back+append sidesteps a GCC 12 -Wrestrict false positive
      // (PR105329) on assigning the concatenation temporary.
      id.push_back('s');
      id += std::to_string(next_id_++);
      sessions_.emplace_back(id, managed);
      ++opened_;
    }
  }
  if (id.empty()) {
    managed->session.cancel();
    throw ProtocolError(ErrorCode::kSessionLimit,
                        "session limit reached (" +
                            std::to_string(limits_.max_sessions) + ")");
  }
  log_debug("session {} opened: {} budget={} seed={}", id, params.algorithm,
            params.budget, params.seed);
  return id;
}

std::shared_ptr<SessionManager::ManagedSession> SessionManager::find_and_touch(
    const std::string& id) {
  repro::MutexLock lock(mutex_);
  for (auto& [key, session] : sessions_) {
    if (key == id) {
      // Idle-eviction bookkeeping; never feeds tuning results.
      session->last_activity = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
      return session;
    }
  }
  throw ProtocolError(ErrorCode::kUnknownSession, "unknown session: " + id);
}

std::optional<tuner::Configuration> SessionManager::ask(const std::string& id) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  try {
    auto config = managed->session.ask();  // blocks; manager mutex NOT held
    repro::MutexLock lock(mutex_);
    ++asks_total_;
    return config;
  } catch (const tuner::AskPendingError& error) {
    throw ProtocolError(ErrorCode::kAskPending, error.what());
  } catch (const tuner::SessionCancelled&) {
    throw ProtocolError(ErrorCode::kSessionClosed,
                        "session " + id + " was cancelled while ask was blocked");
  }
}

std::size_t SessionManager::tell(const std::string& id,
                                 const tuner::Evaluation& evaluation) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  try {
    managed->session.tell(evaluation);
  } catch (const tuner::TellMismatchError& error) {
    throw ProtocolError(ErrorCode::kNoAskOutstanding, error.what());
  }
  repro::MutexLock lock(mutex_);
  ++tells_total_;
  tallies_.count(evaluation.status);
  const std::size_t told = managed->session.tells();
  const std::size_t budget = managed->session.budget();
  return told >= budget ? 0 : budget - told;
}

SessionManager::ResultPayload SessionManager::result(const std::string& id) {
  const std::shared_ptr<ManagedSession> managed = find_and_touch(id);
  ResultPayload payload;
  try {
    payload.result = managed->session.result();  // blocks until finished
  } catch (const tuner::SessionCancelled&) {
    throw ProtocolError(ErrorCode::kSessionClosed,
                        "session " + id + " was cancelled before finishing");
  } catch (const std::exception& error) {
    throw ProtocolError(ErrorCode::kInternal,
                        std::string("search thread failed: ") + error.what());
  }
  payload.counters = managed->session.counters();
  return payload;
}

void SessionManager::close(const std::string& id) {
  std::shared_ptr<ManagedSession> managed;
  {
    repro::MutexLock lock(mutex_);
    const auto it = std::find_if(sessions_.begin(), sessions_.end(),
                                 [&](const auto& entry) { return entry.first == id; });
    if (it == sessions_.end()) {
      throw ProtocolError(ErrorCode::kUnknownSession, "unknown session: " + id);
    }
    managed = std::move(it->second);
    sessions_.erase(it);
    ++closed_;
  }
  // Cancel + destroy outside the lock: the session destructor joins the
  // search thread, which may need a moment to observe the cancel.
  managed->session.cancel();
  log_debug("session {} closed", id);
}

std::size_t SessionManager::evict_idle() {
  if (limits_.idle_timeout.count() <= 0) return 0;
  // Idle-eviction bookkeeping; never feeds tuning results.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> victims;
  {
    repro::MutexLock lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - it->second->last_activity);
      if (idle > limits_.idle_timeout) {
        victims.emplace_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    evicted_ += victims.size();
  }
  for (auto& [id, managed] : victims) {
    managed->session.cancel();
    log_info("session {} evicted after {}ms idle", id,
             limits_.idle_timeout.count());
  }
  return victims.size();
}

void SessionManager::cancel_all() {
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> victims;
  {
    repro::MutexLock lock(mutex_);
    victims.swap(sessions_);
    closed_ += victims.size();
  }
  for (auto& [id, managed] : victims) managed->session.cancel();
  // Destruction (thread joins) happens as `victims` goes out of scope.
}

std::size_t SessionManager::live() const {
  repro::MutexLock lock(mutex_);
  return sessions_.size();
}

StatusReport SessionManager::status() const {
  StatusReport report;
  repro::MutexLock lock(mutex_);
  report.live_sessions = sessions_.size();
  report.opened = opened_;
  report.closed = closed_;
  report.evicted = evicted_;
  report.asks = asks_total_;
  report.tells = tells_total_;
  report.tallies = tallies_;
  for (const auto& [id, managed] : sessions_) {
    if (managed->session.finished()) ++report.finished;
  }
  return report;
}

std::vector<SessionInfo> SessionManager::sessions() const {
  // Status-endpoint idle ages; never feed tuning results.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  std::vector<SessionInfo> infos;
  repro::MutexLock lock(mutex_);
  infos.reserve(sessions_.size());
  for (const auto& [id, managed] : sessions_) {
    SessionInfo info;
    info.id = id;
    info.algorithm = managed->session.algorithm_name();
    info.budget = managed->session.budget();
    info.asks = managed->session.asks();
    info.tells = managed->session.tells();
    info.finished = managed->session.finished();
    info.idle = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - managed->last_activity);
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace repro::service
