#pragma once
// Concurrent registry of ask/tell tuning sessions for the `tuned` daemon.
//
// Each open() materializes the requested search space, constructs the
// algorithm from the registry, and starts an AskTellSession (one dedicated
// search thread, parked in the proxy objective except while computing the
// next proposal). The manager serializes bookkeeping under one mutex but
// never holds it across a blocking session call — ask() can park for as
// long as a BO-GP refit takes, and close()/evict_idle() must stay
// responsive meanwhile.
//
// Lifecycle: open -> (ask -> tell)* -> result -> close. Sessions idle
// longer than the configured timeout are evicted (cancelled + destroyed);
// an op blocked on an evicted session surfaces ErrorCode::kSessionClosed,
// and later ops on its id surface kSessionEvicted (distinguishable from a
// never-existed kUnknownSession via a bounded tombstone list).
//
// Durability (SessionLimits::state_dir non-empty): every session journals
// its open parameters and each applied tell to a per-session fsync'd WAL
// (service/session_wal.hpp) *before* the acknowledging response leaves the
// daemon. recover() replays surviving journals through fresh
// AskTellSessions — deterministic search means replay reconstructs the
// exact pre-crash state, RNG stream included. Tell idempotency (per-session
// monotonic seq) makes the recovery window safe for retrying clients.
//
// Admission control: opening past max_sessions answers the retryable
// kRetryLater (with SessionLimits::retry_after_ms as the backoff hint)
// instead of a hard failure. With TenantQuotas configured, admission is
// additionally *tenant-fair*: each open carries a tenant identity (from
// the connection's hello; "" = anonymous), per-tenant session and
// in-flight-tell quotas bound any one tenant's footprint, and named
// in-quota opens that hit the global cap wait in a bounded admission
// queue drained deficit-round-robin (quantum one session) as slots free.
// Anonymous and over-quota opens are shed immediately — never queued —
// and in-flight sessions are never shed; pushback is always the typed
// retry_later whose retry_after_ms hint scales with queue depth.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "service/protocol.hpp"
#include "service/session_wal.hpp"
#include "service/wal_ship.hpp"
#include "store/results_store.hpp"
#include "tuner/ask_tell.hpp"

namespace repro::service {

/// Per-tenant fairness quotas. All zero (the default) disables the
/// machinery entirely — admission behaves exactly like the single global
/// cap. Tenant identity is OpenParams::tenant ("" = anonymous).
struct TenantQuotas {
  /// Live + queued-for-admission sessions one named tenant may hold.
  /// 0 = unlimited.
  std::size_t max_sessions_per_tenant = 0;
  /// Concurrent tell() calls one named tenant may have in flight (each
  /// blocks a connection thread through WAL fsync + ship ack). 0 =
  /// unlimited.
  std::size_t max_inflight_tells_per_tenant = 0;
  /// Bounded admission queue for named, in-quota opens arriving at the
  /// global session cap. 0 disables queueing (immediate retry_later).
  std::size_t admission_queue_cap = 0;
  /// Longest a queued open waits for a slot before retry_later.
  std::chrono::milliseconds admission_wait{0};

  [[nodiscard]] bool enabled() const noexcept {
    return max_sessions_per_tenant != 0 || max_inflight_tells_per_tenant != 0 ||
           admission_queue_cap != 0;
  }
};

struct SessionLimits {
  std::size_t max_sessions = 256;
  std::chrono::milliseconds idle_timeout{300000};  ///< 5 min; <=0 disables
  /// Session WAL directory; empty disables durability.
  std::string state_dir;
  /// Backoff hint carried by kRetryLater admission pushback.
  std::uint64_t retry_after_ms = 250;
  /// Cap on prior rows snapshotted into a warm-started open. Bounds both
  /// the seeding cost and the open record's frame size (512 rows ≈ 30 KiB,
  /// far under kMaxFrameBytes).
  std::size_t warm_start_max_rows = 512;
  /// Hot-standby replication target (ship.port == 0 disables). Requires a
  /// state_dir: the local journals are the resync source after an outage.
  /// ship.state_dir is filled from state_dir by the manager.
  ShipConfig ship;
  /// Per-tenant fairness quotas (all zero = off).
  TenantQuotas quotas;
};

/// What recover() found in the state dir at startup.
struct RecoveryStats {
  std::size_t sessions_recovered = 0;  ///< live journals replayed successfully
  std::size_t tells_replayed = 0;
  std::size_t sessions_failed = 0;  ///< unreadable/diverged journals (lost)
  std::size_t torn_tails = 0;       ///< journals whose final record was dropped
  std::size_t closed_discarded = 0;  ///< clean close record, journal deleted
  std::size_t evicted_tombstones = 0;  ///< eviction record, id tombstoned
};

/// Aggregate counters for the `status` endpoint. Tallies classify every
/// tell() by its EvalStatus — the service-level view of the PR-1 failure
/// accounting (per-session Evaluator counters additionally ride on each
/// `result` response).
struct StatusReport {
  std::size_t live_sessions = 0;
  std::size_t opened = 0;
  std::size_t closed = 0;
  std::size_t evicted = 0;
  std::size_t finished = 0;  ///< live sessions whose search already terminated
  std::size_t asks = 0;
  std::size_t tells = 0;
  std::size_t duplicate_tells = 0;  ///< idempotent seq replays acknowledged
  std::size_t wal_errors = 0;       ///< journal appends that failed (IO)
  std::size_t store_errors = 0;     ///< results-store appends that failed
  bool wal_enabled = false;
  bool store_enabled = false;       ///< a results store is attached
  RecoveryStats recovery;  ///< from the last recover() call
  tuner::FailureCounters tallies;
  /// Replication state (meaningful only when ship_enabled).
  bool ship_enabled = false;
  bool ship_connected = false;  ///< false while enabled = shard is degraded
  bool ship_fenced = false;     ///< follower was promoted; this shard is stale
  ShipState ship_state = ShipState::kDisabled;
  std::string ship_target;  ///< "host:port" currently shipped to ("" = none)
  ShipCounters ship;
  /// Per-tenant quota / admission state.
  struct TenantStatus {
    std::string tenant;
    std::size_t sessions = 0;        ///< live sessions held
    std::size_t inflight_tells = 0;  ///< tells currently executing
    std::size_t queued = 0;          ///< opens waiting in the admission queue
  };
  struct QuotaReport {
    bool enabled = false;          ///< any TenantQuotas knob configured
    std::size_t queue_depth = 0;   ///< opens currently waiting
    std::size_t queued = 0;        ///< cumulative opens that ever waited
    std::size_t granted = 0;       ///< queued opens later admitted
    std::size_t timeouts = 0;      ///< queued opens that gave up waiting
    std::size_t shed_anonymous = 0;   ///< anonymous opens refused at the cap
    std::size_t shed_over_quota = 0;  ///< opens refused by a tenant quota
    std::size_t shed_queue_full = 0;  ///< opens refused by the queue bound
    std::size_t tell_pushbacks = 0;   ///< tells refused by the in-flight quota
    std::vector<TenantStatus> tenants;  ///< sorted by tenant name
  };
  QuotaReport quotas;
};

/// One live session snapshot (status endpoint detail rows).
struct SessionInfo {
  std::string id;
  std::string algorithm;
  std::size_t budget = 0;
  std::size_t asks = 0;
  std::size_t tells = 0;
  bool finished = false;
  std::chrono::milliseconds idle{0};
};

class SessionManager {
 public:
  /// `store` (optional) is the daemon-wide results store: every
  /// acknowledged tell of a session that declared a (benchmark, arch)
  /// tenant — live, WAL-recovered or ship-applied — is appended to it, and
  /// warm_start opens snapshot their prior from it.
  explicit SessionManager(SessionLimits limits = {},
                          std::shared_ptr<store::ResultsStore> store = nullptr);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Replay journals left in limits_.state_dir by a previous process. Call
  /// once, before serving requests. No-op without a state dir; throws
  /// std::runtime_error when the state dir is unusable.
  RecoveryStats recover();

  /// Throws ProtocolError (kRetryLater at the session cap, kBadRequest for
  /// an unknown algorithm or bad space). Returns the new session id. A
  /// non-empty idempotency `token` makes re-opening after a lost response
  /// safe: a token already bound to a live session returns that session.
  [[nodiscard]] std::string open(const OpenParams& params,
                                 const std::string& token = {});

  /// Blocks until the session proposes a measurement (config) or finishes
  /// (nullopt). Throws ProtocolError kUnknownSession / kSessionEvicted /
  /// kAskPending / kSessionClosed / kDeadlineExceeded. `resume` re-fetches
  /// an already-outstanding proposal (reconnect path) instead of tripping
  /// kAskPending.
  [[nodiscard]] std::optional<tuner::Configuration> ask(
      const std::string& id,
      const std::optional<std::chrono::steady_clock::time_point>& deadline =
          std::nullopt,
      bool resume = false);

  struct TellAck {
    std::size_t remaining = 0;  ///< budget remaining estimate (budget - tells)
    bool duplicate = false;     ///< seq already applied; nothing re-applied
  };
  /// Apply one measurement. seq == 0 means "no idempotency" (legacy
  /// clients); otherwise seq must be applied_seq+1 (a replay of applied_seq
  /// or lower is acknowledged as duplicate, a gap is kBadRequest).
  TellAck tell(const std::string& id, const tuner::Evaluation& evaluation,
               std::uint64_t seq);
  std::size_t tell(const std::string& id, const tuner::Evaluation& evaluation) {
    return tell(id, evaluation, 0).remaining;
  }

  struct ResultPayload {
    tuner::TuneResult result;
    tuner::FailureCounters counters;
  };
  /// Blocks until the search terminates. kInternal carries an escaped
  /// search-thread exception's message.
  [[nodiscard]] ResultPayload result(
      const std::string& id,
      const std::optional<std::chrono::steady_clock::time_point>& deadline =
          std::nullopt);

  /// Cancel (if still running) and destroy; deletes the journal. Throws
  /// kUnknownSession / kSessionEvicted.
  void close(const std::string& id);

  /// Evict sessions idle beyond the limit; returns how many were evicted.
  /// Each victim's journal gets a terminal eviction record (so a restart
  /// tombstones it instead of resurrecting it) and its id is tombstoned.
  std::size_t evict_idle();

  /// Cancel and destroy every session (drain/shutdown path). Journals are
  /// left in place deliberately: sessions a daemon shuts down under are
  /// recovered — not lost — on the next start.
  void cancel_all();

  // --- standby (replica) apply path ----------------------------------------
  // These are the receiving half of WAL shipping: a follower daemon applies
  // shipped records through them. Each is idempotent against duplicate
  // delivery (resync re-ships whole journals), appends to the follower's own
  // journal before returning, and reuses the exact replay machinery of
  // recover() — the session state a standby holds is byte-identical to the
  // primary's.

  /// Apply a shipped open: create the session under the *primary's* id.
  /// Re-delivery of a known id is acknowledged idempotently. Throws
  /// ProtocolError kBadRequest on an unknown algorithm/space and
  /// kRetryLater at the session cap.
  void open_replica(const std::string& id, const OpenParams& params,
                    const std::string& token);

  /// Apply a shipped tell: ask the live session for its next proposal,
  /// verify it matches the shipped config (divergence = kBadRequest: the
  /// replica does not mirror the primary and must not pretend to), then
  /// tell. seq at or below the applied watermark is acked as duplicate.
  TellAck apply_replica_tell(const std::string& id, std::uint64_t seq,
                             const tuner::Configuration& config,
                             const tuner::Evaluation& evaluation);

  /// Apply a shipped close/evict terminal record. Both tolerate an unknown
  /// id (duplicate delivery after the first already removed the session).
  void close_replica(const std::string& id);
  void evict_replica(const std::string& id);

  /// Attempt the first follower connection (+ resync) eagerly so `status`
  /// reflects replication health immediately. No-op without ship config.
  void connect_shipper();

  // --- self-healing --------------------------------------------------------

  /// Point WAL shipping at a (new) follower and resync it from scratch:
  /// store snapshot, then every live journal, then the digest gate. The
  /// re-seeding path after a failover consumed the old standby. Returns
  /// true when the follower came up hot on this first attempt; false means
  /// it is still catching up (the shipper keeps redialing in the
  /// background). Throws ProtocolError kBadRequest without durability
  /// (resync needs local journals) or with port == 0.
  bool reseed(const std::string& host, std::uint16_t port);

  /// Demote this (deposed) primary into a clean standby: cancel every live
  /// session, delete their journals (the divergent tail the new primary
  /// never acknowledged), reset the results store to empty, and disable
  /// shipping. After this the daemon can be re-seeded by the new primary
  /// with zero operator action. Returns the number of sessions dropped.
  std::size_t demote_reset();

  /// Replicate an imported store seed batch to the hot standby so both
  /// stores converge without waiting for live tells. No-op without ship
  /// config; replication failure degrades, it never fails the import.
  void ship_store_import(const std::vector<store::TenantSnapshot>& tenants);

  /// Lock-free replication link state (kDisabled when no shipper exists).
  /// Cheap enough for the server's accept tick to poll for a fence.
  [[nodiscard]] ShipState ship_state() const noexcept {
    return shipper_ == nullptr ? ShipState::kDisabled : shipper_->state();
  }

  [[nodiscard]] std::size_t live() const;
  [[nodiscard]] StatusReport status() const;
  [[nodiscard]] std::vector<SessionInfo> sessions() const;
  [[nodiscard]] const SessionLimits& limits() const noexcept { return limits_; }

 private:
  /// Space + session bundle: the space must outlive the AskTellSession that
  /// references it, hence declaration order.
  struct ManagedSession {
    ManagedSession(tuner::ParamSpace space_in,
                   std::unique_ptr<tuner::SearchAlgorithm> algorithm,
                   std::size_t budget, std::uint64_t seed, tuner::RetryPolicy retry)
        : space(std::move(space_in)),
          session(space, std::move(algorithm), budget, seed, retry) {}

    tuner::ParamSpace space;
    tuner::AskTellSession session;
    /// Open-idempotency token ("" = none). Immutable once registered.
    std::string token;
    /// Quota identity from the open ("" = anonymous). Immutable once
    /// registered; every removal path credits it back to the tenant.
    std::string tenant;
    /// Results-store tenancy (immutable once registered): store_enabled is
    /// set when the open declared a (benchmark, arch) and a store is
    /// attached; store_key is the tenant every applied tell feeds.
    bool store_enabled = false;
    store::StoreKey store_key;
    /// Journal; null when durability is off or the journal died on an IO
    /// error. Appends are serialized by the per-session client protocol.
    std::unique_ptr<SessionWal> wal;
    /// The fields below are written only while the owning manager's mutex_
    /// is held (the analysis cannot express a guard that lives in another
    /// object, so this is a documented convention rather than a GUARDED_BY).
    std::chrono::steady_clock::time_point last_activity;
    /// Highest tell seq applied (idempotency watermark).
    std::uint64_t applied_seq = 0;
    /// True while the proposal a client may be answering was handed out by
    /// a previous incarnation (journal replay) or by the deposed primary
    /// (replica sessions never serve asks). Gates the tell re-ask amnesty;
    /// cleared the moment this incarnation serves the session a client op.
    bool orphan_proposal = false;
  };

  [[nodiscard]] std::shared_ptr<ManagedSession> find_and_touch(const std::string& id);
  /// Fill a session's store tenancy fields from its open params.
  void bind_store_tenant(ManagedSession& managed, const OpenParams& params) const;
  /// Append one applied tell to the results store (no-op when the session
  /// has no tenant). Store failures degrade (counted), never fail the tell.
  void store_append(const ManagedSession& managed, const tuner::Configuration& config,
                    const tuner::Evaluation& evaluation);
  /// Construct + register a session under a caller-chosen id (replica /
  /// recovery path). Returns nullptr when the id is already live.
  std::shared_ptr<ManagedSession> register_session(const std::string& id,
                                                   const OpenParams& params,
                                                   const std::string& token);
  /// Register an evicted id so later ops can be told the session was
  /// reaped (not "never existed"). Bounded FIFO. Requires mutex_.
  void add_tombstone(const std::string& id) REQUIRES(mutex_);
  void throw_missing(const std::string& id) REQUIRES(mutex_);

  /// One open() blocked in the admission queue. Shared between the waiting
  /// thread and the drain; all fields are written under mutex_.
  struct AdmissionWaiter {
    std::string tenant;
    bool granted = false;  ///< a freed slot was reserved for this waiter
    bool failed = false;   ///< abandoned (timeout) or flushed (shutdown)
  };

  /// Reserve one session slot for `tenant` or throw kRetryLater. On the
  /// overload path, named in-quota tenants wait in the admission queue up
  /// to quotas.admission_wait; anonymous/over-quota opens shed immediately.
  void admit(const std::string& tenant);
  /// Return an unconsumed admit() reservation (open failed before
  /// registering) and hand the slot to the next waiter.
  void release_admission(const std::string& tenant);
  /// Consume the caller's reservation into a live registration.
  void consume_reservation_locked(const std::string& tenant) REQUIRES(mutex_);
  /// Decrement a tenant's live-session count (no drain).
  void credit_tenant_locked(const std::string& tenant) REQUIRES(mutex_);
  /// Credit a removed session back to its tenant and wake queued opens.
  void note_removed_locked(const ManagedSession& managed) REQUIRES(mutex_);
  /// Hand freed slots to queued opens, deficit-round-robin across tenants
  /// (quantum one), until the cap is hit or the queue drains.
  void drain_admission_locked() REQUIRES(mutex_);
  /// Fail every queued open (shutdown/demote). Each wakes into retry_later.
  void flush_admission_locked() REQUIRES(mutex_);
  /// Depth-scaled backoff hint: the deeper the queue, the longer the
  /// caller should stay away.
  [[nodiscard]] std::uint64_t retry_hint_locked() const REQUIRES(mutex_);
  /// In-flight tell quota: charge one executing tell against `tenant`.
  /// Throws kRetryLater at the quota; returns false (nothing charged) for
  /// anonymous sessions or when the quota is off.
  bool begin_inflight_tell(const std::string& tenant);
  void end_inflight_tell(const std::string& tenant);

  const SessionLimits limits_;
  mutable repro::Mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> sessions_
      GUARDED_BY(mutex_);
  std::vector<std::string> tombstones_ GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  std::size_t opened_ GUARDED_BY(mutex_) = 0;
  std::size_t closed_ GUARDED_BY(mutex_) = 0;
  std::size_t evicted_ GUARDED_BY(mutex_) = 0;
  std::size_t asks_total_ GUARDED_BY(mutex_) = 0;
  std::size_t tells_total_ GUARDED_BY(mutex_) = 0;
  std::size_t duplicate_tells_ GUARDED_BY(mutex_) = 0;
  std::size_t wal_errors_ GUARDED_BY(mutex_) = 0;
  std::size_t store_errors_ GUARDED_BY(mutex_) = 0;
  RecoveryStats recovery_ GUARDED_BY(mutex_);
  tuner::FailureCounters tallies_ GUARDED_BY(mutex_);
  // --- tenant quota / admission state (all under mutex_) -------------------
  /// Live sessions per named tenant (anonymous sessions are uncounted).
  std::unordered_map<std::string, std::size_t> tenant_live_ GUARDED_BY(mutex_);
  /// Tell() calls currently executing per named tenant.
  std::unordered_map<std::string, std::size_t> tenant_inflight_ GUARDED_BY(mutex_);
  /// Slots reserved by admitted-but-not-yet-registered opens. Capacity is
  /// always sessions_.size() + reserved_ against max_sessions.
  std::size_t reserved_ GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::string, std::size_t> reserved_by_tenant_
      GUARDED_BY(mutex_);
  /// Per-tenant FIFO sub-queues (ordered map: the DRR cursor walks tenant
  /// names in sorted order, wrapping).
  std::map<std::string, std::deque<std::shared_ptr<AdmissionWaiter>>>
      admission_queues_ GUARDED_BY(mutex_);
  std::string drr_cursor_ GUARDED_BY(mutex_);
  std::size_t admission_depth_ GUARDED_BY(mutex_) = 0;
  std::size_t admission_queued_total_ GUARDED_BY(mutex_) = 0;
  std::size_t admission_granted_ GUARDED_BY(mutex_) = 0;
  std::size_t admission_timeouts_ GUARDED_BY(mutex_) = 0;
  std::size_t shed_anonymous_ GUARDED_BY(mutex_) = 0;
  std::size_t shed_over_quota_ GUARDED_BY(mutex_) = 0;
  std::size_t shed_queue_full_ GUARDED_BY(mutex_) = 0;
  std::size_t tell_pushbacks_ GUARDED_BY(mutex_) = 0;
  /// Waiters block here via MutexLock::native(); signalled by the drain.
  std::condition_variable admission_cv_;
  /// Primary-side replication; null unless ship.port != 0 or a state_dir is
  /// configured (the latter so a standby can later be re-seeded *from* —
  /// i.e. retargeted — without racing shipper_ creation). Own internal
  /// lock — ship calls must not (and do not) hold mutex_, they block on the
  /// follower's network ack.
  std::unique_ptr<WalShipper> shipper_;
  /// Daemon-wide results store; null disables tenancy. Thread-safe with its
  /// own internal locking — never touched under mutex_.
  std::shared_ptr<store::ResultsStore> store_;
};

}  // namespace repro::service
