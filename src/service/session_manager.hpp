#pragma once
// Concurrent registry of ask/tell tuning sessions for the `tuned` daemon.
//
// Each open() materializes the requested search space, constructs the
// algorithm from the registry, and starts an AskTellSession (one dedicated
// search thread, parked in the proxy objective except while computing the
// next proposal). The manager serializes bookkeeping under one mutex but
// never holds it across a blocking session call — ask() can park for as
// long as a BO-GP refit takes, and close()/evict_idle() must stay
// responsive meanwhile.
//
// Lifecycle: open -> (ask -> tell)* -> result -> close. Sessions idle
// longer than the configured timeout are evicted (cancelled + destroyed);
// an op blocked on an evicted session surfaces ErrorCode::kSessionClosed.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "service/protocol.hpp"
#include "tuner/ask_tell.hpp"

namespace repro::service {

struct SessionLimits {
  std::size_t max_sessions = 256;
  std::chrono::milliseconds idle_timeout{300000};  ///< 5 min; <=0 disables
};

/// Aggregate counters for the `status` endpoint. Tallies classify every
/// tell() by its EvalStatus — the service-level view of the PR-1 failure
/// accounting (per-session Evaluator counters additionally ride on each
/// `result` response).
struct StatusReport {
  std::size_t live_sessions = 0;
  std::size_t opened = 0;
  std::size_t closed = 0;
  std::size_t evicted = 0;
  std::size_t finished = 0;  ///< live sessions whose search already terminated
  std::size_t asks = 0;
  std::size_t tells = 0;
  tuner::FailureCounters tallies;
};

/// One live session snapshot (status endpoint detail rows).
struct SessionInfo {
  std::string id;
  std::string algorithm;
  std::size_t budget = 0;
  std::size_t asks = 0;
  std::size_t tells = 0;
  bool finished = false;
  std::chrono::milliseconds idle{0};
};

class SessionManager {
 public:
  explicit SessionManager(SessionLimits limits = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Throws ProtocolError (kSessionLimit, kBadRequest for an unknown
  /// algorithm or bad space). Returns the new session id.
  [[nodiscard]] std::string open(const OpenParams& params);

  /// Blocks until the session proposes a measurement (config) or finishes
  /// (nullopt). Throws ProtocolError kUnknownSession / kAskPending /
  /// kSessionClosed.
  [[nodiscard]] std::optional<tuner::Configuration> ask(const std::string& id);

  /// Returns the session's budget remaining estimate (budget - tells).
  std::size_t tell(const std::string& id, const tuner::Evaluation& evaluation);

  struct ResultPayload {
    tuner::TuneResult result;
    tuner::FailureCounters counters;
  };
  /// Blocks until the search terminates. kInternal carries an escaped
  /// search-thread exception's message.
  [[nodiscard]] ResultPayload result(const std::string& id);

  /// Cancel (if still running) and destroy. Throws kUnknownSession.
  void close(const std::string& id);

  /// Evict sessions idle beyond the limit; returns how many were evicted.
  std::size_t evict_idle();

  /// Cancel and destroy every session (drain/shutdown path).
  void cancel_all();

  [[nodiscard]] std::size_t live() const;
  [[nodiscard]] StatusReport status() const;
  [[nodiscard]] std::vector<SessionInfo> sessions() const;
  [[nodiscard]] const SessionLimits& limits() const noexcept { return limits_; }

 private:
  /// Space + session bundle: the space must outlive the AskTellSession that
  /// references it, hence declaration order.
  struct ManagedSession {
    ManagedSession(tuner::ParamSpace space_in,
                   std::unique_ptr<tuner::SearchAlgorithm> algorithm,
                   std::size_t budget, std::uint64_t seed, tuner::RetryPolicy retry)
        : space(std::move(space_in)),
          session(space, std::move(algorithm), budget, seed, retry) {}

    tuner::ParamSpace space;
    tuner::AskTellSession session;
    /// Written only while the owning manager's mutex_ is held (the analysis
    /// cannot express a guard that lives in another object, so this is a
    /// documented convention rather than a GUARDED_BY).
    std::chrono::steady_clock::time_point last_activity;
  };

  [[nodiscard]] std::shared_ptr<ManagedSession> find_and_touch(const std::string& id);

  const SessionLimits limits_;
  mutable repro::Mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> sessions_
      GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  std::size_t opened_ GUARDED_BY(mutex_) = 0;
  std::size_t closed_ GUARDED_BY(mutex_) = 0;
  std::size_t evicted_ GUARDED_BY(mutex_) = 0;
  std::size_t asks_total_ GUARDED_BY(mutex_) = 0;
  std::size_t tells_total_ GUARDED_BY(mutex_) = 0;
  tuner::FailureCounters tallies_ GUARDED_BY(mutex_);
};

}  // namespace repro::service
