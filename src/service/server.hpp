#pragma once
// `tuned` server core: a portable blocking-socket JSON-lines server with no
// poll/epoll dependency. One accept thread owns the listener (short
// SO_RCVTIMEO ticks double as the idle-eviction heartbeat); each accepted
// connection is handled by a worker of a dedicated repro::ThreadPool, which
// bounds concurrent connections to the pool size (excess connections queue
// in the pool until a worker frees up). Sessions are decoupled from
// connections — one connection may interleave any number of sessions by id,
// which is how a small pool serves 64+ concurrent sessions.
//
// Shutdown. stop() closes the listener, shuts down every live connection
// socket (unblocking parked readers), and cancels all sessions.
// drain(deadline) is the graceful path: stop accepting, let existing
// clients finish until no sessions/connections remain or the deadline
// expires, then stop().

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "service/protocol.hpp"
#include "service/session_manager.hpp"
#include "store/results_store.hpp"

namespace repro::service {

struct ServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::size_t connection_threads = 8;
  SessionLimits limits;
  /// Accept/read timeout tick: shutdown latency and eviction granularity.
  std::chrono::milliseconds poll_interval{200};
  /// Reap a connection that completes no request frame for this long
  /// (slow-loris / dead-peer guard). The timer only runs while the server
  /// waits for a frame — a request parked in a blocking ask/result does not
  /// count as idle. 0 disables.
  std::chrono::milliseconds connection_idle_timeout{0};
  /// Socket send timeout (a peer that stops reading cannot park a worker in
  /// write() forever). 0 leaves the OS default (unbounded).
  std::chrono::milliseconds write_timeout{10000};
  /// Hard cap on concurrently-open connections; excess accepts are answered
  /// with a retry_later error frame and closed. 0 = unlimited (the worker
  /// pool still bounds concurrent *service*; queued connections just wait).
  std::size_t max_connections = 0;
  /// Start as a hot standby: refuse normal session ops with wrong_role and
  /// accept ship_* records from a primary instead, until a promote op (or
  /// promote()) flips the role. A primary (standby=false) conversely
  /// refuses ship_* with wrong_role (promote is an idempotent ack).
  bool standby = false;
  /// Deposed-primary rejoin: when this primary's shipper fences (its
  /// follower was promoted — this daemon lost a failover race), demote
  /// automatically into a clean standby (drop divergent journals + store)
  /// so the new primary can re-seed it with zero operator action. Off by
  /// default: a fenced primary then keeps serving standalone (the operator
  /// decides), which is also what the in-process failover tests expect.
  bool auto_rejoin = false;
  /// Directory of the persistent cross-tenant results store ("" disables
  /// it). The store is loaded before session recovery so replayed tells can
  /// feed it, and every acknowledged tell of a tenant-identified session
  /// (open with benchmark+arch) is appended. Exposed over the wire as
  /// store_stats / store_export / store_import; warm-started opens read it.
  std::string store_dir;
  /// Live-record capacity of the results store (FIFO eviction past it).
  std::size_t store_capacity = 1u << 20;
  std::string name = "tuned/1";
};

class TuneServer {
 public:
  explicit TuneServer(ServerConfig config = {});
  ~TuneServer();

  TuneServer(const TuneServer&) = delete;
  TuneServer& operator=(const TuneServer&) = delete;

  /// Recover journaled sessions (when limits.state_dir is set), then bind,
  /// listen, and spawn the accept thread. Throws std::runtime_error when
  /// the state dir is unusable or the port cannot be bound.
  void start();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] bool draining() const noexcept;

  /// Stop accepting; wait for live sessions and connections to end on
  /// their own. Returns true when the drain completed before the deadline
  /// (callers typically follow up with stop() either way).
  bool drain(std::chrono::milliseconds deadline);

  /// Hard stop: close listener + connections, cancel sessions, join
  /// everything. Idempotent.
  void stop();

  /// True while acting as a hot standby (refusing session ops).
  [[nodiscard]] bool standby() const noexcept;
  /// Flip a standby to primary (idempotent; also reachable over the wire
  /// via {"op":"promote"}). Shipped sessions are already live, so the
  /// promoted shard serves its first ask with no replay delay. Returns
  /// true when the role flipped, false when already primary (the wire
  /// reply then carries "already_primary" so a racing double-promote is
  /// observable).
  bool promote();
  /// Flip a (deposed) primary back to standby, dropping its divergent
  /// state via SessionManager::demote_reset(). Idempotent. Driven by
  /// auto_rejoin when the shipper fences; also callable directly.
  void demote();
  /// Times demote() flipped the role (the rejoin counter).
  [[nodiscard]] std::size_t demotions() const;

  [[nodiscard]] SessionManager& sessions() noexcept { return *manager_; }
  [[nodiscard]] const SessionManager& sessions() const noexcept { return *manager_; }
  /// The daemon's results store; nullptr unless config.store_dir is set.
  [[nodiscard]] const std::shared_ptr<store::ResultsStore>& store() const noexcept {
    return store_;
  }
  [[nodiscard]] std::size_t active_connections() const;
  [[nodiscard]] std::size_t connections_accepted() const;
  /// Connections reaped by connection_idle_timeout.
  [[nodiscard]] std::size_t connections_reaped() const;
  /// Accepts refused by max_connections (answered retry_later).
  [[nodiscard]] std::size_t connections_refused() const;

 private:
  /// Per-connection protocol state. The tenant identity arrives once, in
  /// the hello, and is stamped into every open on this connection — quota
  /// identity is a property of the authenticated link, not of individual
  /// requests (a request-level field could be spoofed per-open).
  struct ConnState {
    bool hello_done = false;
    std::string tenant;
  };

  void accept_loop();
  void handle_connection(std::uint64_t id);
  /// Dispatch one parsed request; never throws (errors become frames).
  [[nodiscard]] Json dispatch(const Json& request, ConnState* conn, bool* fatal);

  ServerConfig config_;
  std::uint16_t port_ = 0;
  ListenSocket listener_;
  /// Created before (and shared with) the session manager; internally
  /// synchronized, so handlers use it without mutex_.
  std::shared_ptr<store::ResultsStore> store_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ThreadPool> pool_;
  /// The accept thread owns the blocking listener; a pool worker parked in
  /// accept() would starve connection handling on small pools.
  std::thread accept_thread_;  // NOLINT(reprolint-raw-thread)

  mutable repro::Mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Socket>> connections_
      GUARDED_BY(mutex_);
  std::uint64_t next_connection_id_ GUARDED_BY(mutex_) = 1;
  std::size_t connections_accepted_ GUARDED_BY(mutex_) = 0;
  std::size_t connections_reaped_ GUARDED_BY(mutex_) = 0;
  std::size_t connections_refused_ GUARDED_BY(mutex_) = 0;
  bool started_ GUARDED_BY(mutex_) = false;
  bool stopping_ GUARDED_BY(mutex_) = false;
  bool draining_ GUARDED_BY(mutex_) = false;
  bool standby_ GUARDED_BY(mutex_) = false;
  std::size_t promotions_ GUARDED_BY(mutex_) = 0;
  std::size_t demotions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace repro::service
