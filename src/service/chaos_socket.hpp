#pragma once
// Deterministic network-fault injection for the tuning service.
//
// ChaosSocket wraps a live Socket behind the same ByteIo interface the
// framing layer reads and writes, and — with seeded, reproducible draws —
// injects the network anomalies a tuning campaign meets in practice:
// connections dropped mid-exchange, frames torn mid-write (a prefix lands,
// then the stream dies), reads fragmented to a trickle, and scheduling
// delays. It follows the simgpu/faults conventions: a plain-struct model
// that is disabled by default, a dedicated RNG per stream so fault
// decisions never perturb any tuning RNG, and a *disabled injector never
// draws* — wiring chaos through a code path changes nothing until a test
// switches it on.
//
// The point of determinism here: tests/chaos replays the same seed against
// the same campaign and asserts the tuning outcome is byte-identical to a
// clean run — the retry/reconnect/idempotency machinery must absorb every
// injected fault without perturbing a single result.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/socket.hpp"

namespace repro::service {

/// Immutable chaos regime. Probabilities are per operation (one write_all =
/// one frame = one draw; one read_some = one draw) and mutually exclusive
/// where they conflict (a torn write implies the drop that follows it).
struct ChaosModel {
  bool enabled = false;
  /// Frame write replaced by a connection drop (nothing sent).
  double drop_probability = 0.0;
  /// Frame write torn: a strict prefix is sent, then the connection drops.
  double torn_write_probability = 0.0;
  /// Read capacity capped to a few bytes (forces reassembly paths).
  double short_read_probability = 0.0;
  /// Operation preceded by a short blocking delay (reordering pressure on
  /// timeout paths; keep tiny in tests).
  double delay_probability = 0.0;
  std::uint64_t delay_us = 500;

  /// Convenience regime: total fault rate split 35% drop, 35% torn write,
  /// 20% short read, 10% delay. rate <= 0 disables the model.
  [[nodiscard]] static ChaosModel with_rate(double rate) noexcept;
};

/// Tallies of injected faults (test assertions / client status).
struct ChaosCounters {
  std::size_t drops = 0;
  std::size_t torn_writes = 0;
  std::size_t short_reads = 0;
  std::size_t delays = 0;
};

/// One injector per connection. Not thread-safe (the client protocol is
/// strictly sequential per connection). When an injected fault kills the
/// connection the underlying socket is shut down, so the peer observes a
/// real mid-frame EOF — not a simulated one.
class ChaosSocket final : public ByteIo {
 public:
  /// Disabled pass-through: never draws, behaves exactly like `inner`.
  explicit ChaosSocket(Socket& inner) : inner_(inner) {}

  ChaosSocket(Socket& inner, const ChaosModel& model, std::uint64_t seed)
      : inner_(inner), model_(model), rng_(seed) {}

  [[nodiscard]] Io read_some(void* buffer, std::size_t capacity,
                             std::size_t* got) override;
  [[nodiscard]] bool write_all(const void* buffer, std::size_t length) override;

  [[nodiscard]] bool enabled() const noexcept { return model_.enabled; }
  [[nodiscard]] const ChaosCounters& counters() const noexcept { return counters_; }

 private:
  void delay();

  Socket& inner_;
  ChaosModel model_{};
  repro::Rng rng_{0};
  ChaosCounters counters_;
};

}  // namespace repro::service
