#pragma once
// Wire protocol of the tuning service: newline-delimited JSON frames with a
// hard frame-size cap, a versioned handshake, and typed errors.
//
// Framing. One frame = one JSON object serialized on a single line and
// terminated by '\n'. The reader enforces kMaxFrameBytes while scanning for
// the delimiter, so a hostile or corrupted peer cannot make the server
// buffer unbounded input; an oversized frame is a connection-fatal error
// (the stream can no longer be trusted to resynchronize).
//
// Handshake. The first frame on a connection must be
//   {"op":"hello","version":1,"client":"<name>"}
// and the server answers {"ok":true,"version":1,"server":...,
// "max_frame":...}. A version mismatch is answered with a typed error and
// the connection is closed; every other op before hello is rejected.
//
// Requests after the handshake:
//   {"op":"open","algorithm":"bogp","budget":100,"seed":42, ...}
//   {"op":"ask","session":"s1"}
//   {"op":"tell","session":"s1","value":123.5,"valid":true,"status":"ok"}
//   {"op":"result","session":"s1"}
//   {"op":"close","session":"s1"}
//   {"op":"status"}
// Responses are {"ok":true,...} or
// {"ok":false,"error":"<code>","message":"<human text>"}.
//
// Version-1 extension fields (all optional — an old client never sends
// them, an old server never answers them, so the version number stays 1
// and the hello response advertises them in "features"):
//   - blocking ops (ask/result) accept "deadline_ms"; expiry answers the
//     retryable error deadline_exceeded without touching session state.
//   - tell accepts a monotonic per-session "seq"; a replayed duplicate is
//     acknowledged ({"duplicate":true}) instead of double-applied.
//   - ask accepts "resume":true to re-fetch an outstanding proposal after a
//     reconnect instead of failing with ask_pending.
//   - open accepts an idempotency "token"; re-opening with a known token
//     returns the existing session instead of creating a second one.
//   - admission-control pushback is the error retry_later, carrying
//     "retry_after_ms".
//   - cluster replication ops (advertised as the "cluster" feature): a
//     primary shard streams WAL records to its hot standby as
//     ship_open/ship_tell/ship_close/ship_evict frames (acked only after
//     the standby has fsync'd and applied the record), and the router
//     promotes a standby with {"op":"promote"}. A standby answers normal
//     session ops — and a primary answers ship_*/promote — with the typed
//     error wrong_role. status additionally reports "role".
//   - multi-tenant quotas (advertised as the "quota" feature): hello accepts
//     an optional "tenant" identity; the server stamps it into opens (it
//     rides the WAL open record and ship_open) and enforces per-tenant
//     session + in-flight-tell quotas with a deficit-round-robin admission
//     queue. Pushback is retry_later with retry_after_ms scaled by queue
//     depth; status reports a "quotas" block.
//   - self-healing: {"op":"reseed","host":...,"port":...} retargets a
//     primary's shipper at a replacement follower (full journal + store
//     resync, hot flip gated on store digest equality); {"op":"promote"} is
//     idempotent — a shard already holding the role acks with
//     "already_primary":true instead of flipping again.
// The full grammar and session lifecycle live in docs/SERVICE.md.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/socket.hpp"
#include "store/results_store.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"
#include "tuner/tuner.hpp"
#include "tuner/warm_start.hpp"

namespace repro::service {

inline constexpr int kProtocolVersion = 1;
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

enum class ErrorCode {
  kBadRequest,       ///< well-formed JSON, invalid contents
  kMalformedFrame,   ///< frame is not valid JSON
  kOversizedFrame,   ///< frame exceeded kMaxFrameBytes (connection-fatal)
  kVersionMismatch,  ///< hello version != kProtocolVersion (connection-fatal)
  kHelloRequired,    ///< op before the handshake
  kUnknownOp,
  kUnknownSession,
  kSessionClosed,    ///< session cancelled while the op was blocked
  kSessionEvicted,   ///< session reaped by the idle-eviction policy; the
                     ///< loss is fatal for this session but the daemon is
                     ///< healthy (distinguishable from kUnknownSession)
  kAskPending,       ///< ask while a proposal is already outstanding
  kNoAskOutstanding, ///< tell with nothing to answer
  // Kept for wire compatibility: older daemons emit it and error_code_from
  // must keep parsing it; nothing current emits it (admission control
  // answers kRetryLater instead).
  // NOLINTNEXTLINE(svclint-wire-drift)
  kSessionLimit,     ///< max concurrent sessions reached (legacy; admission
                     ///< control now answers kRetryLater)
  kRetryLater,       ///< admission control pushback; the error frame carries
                     ///< retry_after_ms and the request is safe to retry
  kDeadlineExceeded, ///< the request's deadline_ms expired before the
                     ///< blocking op completed; session state is untouched
  kDraining,         ///< server is shutting down, no new sessions
  kWrongRole,        ///< session op sent to a standby, or a ship_*/promote op
                     ///< sent to a primary; the peer should re-resolve which
                     ///< endpoint currently holds the role it wants
  kInternal,         ///< search thread died with an unexpected exception
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;
/// Inverse of to_string; nullopt for unknown identifiers.
[[nodiscard]] std::optional<ErrorCode> error_code_from(std::string_view text) noexcept;

/// Carries a typed protocol error through server dispatch; the handler turns
/// it into an {"ok":false,...} response frame.
struct ProtocolError : std::runtime_error {
  ErrorCode code;
  /// Backoff hint; nonzero only with kRetryLater (rides the error frame as
  /// "retry_after_ms").
  std::uint64_t retry_after_ms = 0;
  ProtocolError(ErrorCode code_in, const std::string& message,
                std::uint64_t retry_after = 0)
      : std::runtime_error(message), code(code_in), retry_after_ms(retry_after) {}
};

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// kMidFrameEof is kClosed with bytes of an unterminated frame already
/// buffered: the peer died (or the stream was torn) mid-frame. The partial
/// frame is dropped either way, but clients surface the distinction as a
/// typed transport error.
enum class FrameStatus { kOk, kClosed, kMidFrameEof, kTimeout, kOversized, kError };

/// Buffered newline-delimited frame reader over one byte stream. kTimeout
/// (from the stream's read timeout, or after a read that grew the buffer
/// without completing a frame) retains the partial frame, so callers can
/// poll a stop flag or a slow-peer deadline and resume; at most one stream
/// read happens per next() call.
class FrameReader {
 public:
  explicit FrameReader(ByteIo& stream, std::size_t max_frame = kMaxFrameBytes)
      : stream_(stream), max_frame_(max_frame) {}

  /// Read the next frame into `line` (without the trailing '\n').
  [[nodiscard]] FrameStatus next(std::string* line);

 private:
  ByteIo& stream_;
  std::size_t max_frame_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< prefix of buffer_ already known '\n'-free
};

/// Serialize `message` and send it as one frame.
[[nodiscard]] bool write_frame(ByteIo& stream, const Json& message);

// ---------------------------------------------------------------------------
// Field access helpers (throw ProtocolError{kBadRequest} on mismatch)
// ---------------------------------------------------------------------------

[[nodiscard]] const Json& require(const Json& object, std::string_view key);
[[nodiscard]] std::string require_string(const Json& object, std::string_view key);
[[nodiscard]] std::uint64_t require_uint(const Json& object, std::string_view key);
[[nodiscard]] bool require_bool(const Json& object, std::string_view key);

/// Optional non-negative integer field; nullopt when absent, kBadRequest
/// when present with the wrong type. Used for deadline_ms and seq.
[[nodiscard]] std::optional<std::uint64_t> optional_uint(const Json& object,
                                                         std::string_view key);

// ---------------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------------

/// Parameters of an `open` request. The search space defaults to the
/// paper's 6-parameter space; a custom space can be sent inline as
/// {"space":{"params":[{"name":...,"lo":...,"hi":...},...],
///           "constraint":"none"|"wg256"}}.
struct OpenParams {
  std::string algorithm = "rs";
  std::size_t budget = 100;
  std::uint64_t seed = 1;
  tuner::RetryPolicy retry;
  bool custom_space = false;
  std::vector<tuner::ParamRange> params;
  std::string constraint = "none";  ///< "none" or "wg256" (paper constraint)

  // Results-store tenancy (all optional; absent fields keep the frame —
  // and therefore existing WAL/ship byte streams — unchanged). benchmark +
  // arch identify the tenant whose history the session's tells feed; when
  // warm_start is set the daemon snapshots compatible prior history into
  // `prior` exactly once at open time. The snapshot rides the WAL open
  // record and ship_open, so recovery and replica replay reuse it verbatim
  // instead of re-deriving it from a store that has since moved on —
  // replayed proposals stay byte-identical.
  std::string benchmark;  ///< tenant kernel name ("" = anonymous, no store)
  std::string arch;       ///< tenant architecture name
  bool warm_start = false;
  tuner::PriorHandle prior;  ///< server-filled prior snapshot

  /// Quota identity (optional, distinct from store tenancy): the client
  /// identity from the hello, stamped into the open by the server so
  /// per-tenant quotas survive reconnects, recovery, and replica replay
  /// (the field rides the WAL open record and ship_open). "" = anonymous —
  /// admitted while capacity lasts, shed first under overload.
  std::string tenant;

  /// Materialize the requested space (paper space unless custom).
  [[nodiscard]] tuner::ParamSpace make_space() const;
};

/// Canonical store fingerprint of the space an open request resolves to
/// (store/fingerprint.hpp; the paper space fingerprints its own params with
/// constraint "wg256").
[[nodiscard]] std::string space_fingerprint_of(const OpenParams& params);

[[nodiscard]] Json encode_open(const OpenParams& params);
[[nodiscard]] OpenParams decode_open(const Json& request);

[[nodiscard]] Json encode_config(const tuner::Configuration& config);
[[nodiscard]] tuner::Configuration decode_config(const Json& array);

/// Evaluation <-> tell payload fields (value/valid/status). A NaN value
/// crosses the wire as null.
void encode_evaluation_into(Json& object, const tuner::Evaluation& eval);
[[nodiscard]] tuner::Evaluation decode_evaluation(const Json& object);

[[nodiscard]] Json encode_tune_result(const tuner::TuneResult& result,
                                      const tuner::FailureCounters& counters);
void decode_tune_result(const Json& object, tuner::TuneResult* result,
                        tuner::FailureCounters* counters);

[[nodiscard]] Json encode_counters(const tuner::FailureCounters& counters);
[[nodiscard]] tuner::FailureCounters decode_counters(const Json& object);

/// Results-store export payload <-> wire form. One tenant is
/// {"benchmark":...,"arch":...,"space":"<fingerprint>",
///  "rows":[{"c":[<ints>],"v":<us|null>,"ok":<bool>},...]}
/// (the same row shape the store's on-disk log uses). Used by the
/// store_export / store_import ops.
[[nodiscard]] Json encode_tenants(const std::vector<store::TenantSnapshot>& tenants);
[[nodiscard]] std::vector<store::TenantSnapshot> decode_tenants(const Json& array);

[[nodiscard]] std::optional<tuner::EvalStatus> eval_status_from(std::string_view text) noexcept;

// ---------------------------------------------------------------------------
// Response helpers
// ---------------------------------------------------------------------------

[[nodiscard]] Json make_ok();
[[nodiscard]] Json make_error(ErrorCode code, const std::string& message);
/// RETRY_LATER pushback frame: make_error(kRetryLater, ...) plus the
/// machine-readable retry_after_ms hint.
[[nodiscard]] Json make_retry_later(const std::string& message,
                                    std::uint64_t retry_after_ms);

}  // namespace repro::service
