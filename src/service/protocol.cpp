#include "service/protocol.hpp"

#include <cmath>
#include <limits>
#include <memory>

#include "store/fingerprint.hpp"

namespace repro::service {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kMalformedFrame: return "malformed_frame";
    case ErrorCode::kOversizedFrame: return "oversized_frame";
    case ErrorCode::kVersionMismatch: return "version_mismatch";
    case ErrorCode::kHelloRequired: return "hello_required";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kSessionClosed: return "session_closed";
    case ErrorCode::kSessionEvicted: return "session_evicted";
    case ErrorCode::kAskPending: return "ask_pending";
    case ErrorCode::kNoAskOutstanding: return "no_ask_outstanding";
    case ErrorCode::kSessionLimit: return "session_limit";
    case ErrorCode::kRetryLater: return "retry_later";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kWrongRole: return "wrong_role";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::optional<ErrorCode> error_code_from(std::string_view text) noexcept {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kMalformedFrame, ErrorCode::kOversizedFrame,
        ErrorCode::kVersionMismatch, ErrorCode::kHelloRequired, ErrorCode::kUnknownOp,
        ErrorCode::kUnknownSession, ErrorCode::kSessionClosed,
        ErrorCode::kSessionEvicted, ErrorCode::kAskPending,
        ErrorCode::kNoAskOutstanding, ErrorCode::kSessionLimit,
        ErrorCode::kRetryLater, ErrorCode::kDeadlineExceeded, ErrorCode::kDraining,
        ErrorCode::kWrongRole, ErrorCode::kInternal}) {
    if (text == to_string(code)) return code;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

FrameStatus FrameReader::next(std::string* line) {
  line->clear();
  // Scan only bytes not inspected on previous passes.
  const auto scan = [this, line]() -> bool {
    for (; scanned_ < buffer_.size(); ++scanned_) {
      if (buffer_[scanned_] == '\n') {
        line->assign(buffer_, 0, scanned_);
        buffer_.erase(0, scanned_ + 1);
        scanned_ = 0;
        return true;
      }
    }
    return false;
  };
  if (scan()) return FrameStatus::kOk;
  if (buffer_.size() > max_frame_) return FrameStatus::kOversized;

  char chunk[4096];
  std::size_t got = 0;
  switch (stream_.read_some(chunk, sizeof(chunk), &got)) {
    case Socket::Io::kOk: buffer_.append(chunk, got); break;
    case Socket::Io::kClosed:
      // A close mid-frame drops the partial frame, mirroring the
      // torn-final-line rule of the checkpoint format; the buffered bytes
      // distinguish a torn stream from an orderly between-frames close.
      return buffer_.empty() ? FrameStatus::kClosed : FrameStatus::kMidFrameEof;
    case Socket::Io::kTimeout: return FrameStatus::kTimeout;
    case Socket::Io::kError: return FrameStatus::kError;
  }
  if (scan()) return FrameStatus::kOk;
  if (buffer_.size() > max_frame_) return FrameStatus::kOversized;
  // Bytes arrived but no complete frame yet: yield to the caller (partial
  // frame retained, like a read timeout) instead of looping. This keeps a
  // byte-at-a-time peer from pinning the reader — the caller's poll loop
  // gets to check its stop flag and slow-peer deadline between reads.
  return FrameStatus::kTimeout;
}

bool write_frame(ByteIo& stream, const Json& message) {
  std::string text = message.dump();
  text += '\n';
  return stream.write_all(text.data(), text.size());
}

// ---------------------------------------------------------------------------
// Field access helpers
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_request(const std::string& message) {
  throw ProtocolError(ErrorCode::kBadRequest, message);
}

}  // namespace

const Json& require(const Json& object, std::string_view key) {
  if (!object.is_object()) bad_request("request is not an object");
  const Json* field = object.find(key);
  if (field == nullptr) bad_request("missing field: " + std::string(key));
  return *field;
}

std::string require_string(const Json& object, std::string_view key) {
  const Json& field = require(object, key);
  if (!field.is_string()) bad_request("field must be a string: " + std::string(key));
  return field.as_string();
}

std::uint64_t require_uint(const Json& object, std::string_view key) {
  const Json& field = require(object, key);
  try {
    return field.as_uint64();
  } catch (const JsonError&) {
    bad_request("field must be a non-negative integer: " + std::string(key));
  }
}

bool require_bool(const Json& object, std::string_view key) {
  const Json& field = require(object, key);
  if (!field.is_bool()) bad_request("field must be a bool: " + std::string(key));
  return field.as_bool();
}

std::optional<std::uint64_t> optional_uint(const Json& object, std::string_view key) {
  if (!object.is_object()) bad_request("request is not an object");
  const Json* field = object.find(key);
  if (field == nullptr) return std::nullopt;
  try {
    return field->as_uint64();
  } catch (const JsonError&) {
    bad_request("field must be a non-negative integer: " + std::string(key));
  }
}

// ---------------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------------

tuner::ParamSpace OpenParams::make_space() const {
  if (!custom_space) return tuner::paper_search_space();
  tuner::ParamSpace::Constraint constraint_fn = nullptr;
  if (constraint == "wg256") {
    constraint_fn = [](const tuner::Configuration& config) {
      // Paper executability rule on the trailing three (work-group) axes.
      if (config.size() < 3) return true;
      const std::size_t n = config.size();
      return config[n - 3] * config[n - 2] * config[n - 1] <= 256;
    };
  } else if (constraint != "none") {
    bad_request("unknown constraint: " + constraint);
  }
  if (params.empty()) bad_request("custom space needs at least one parameter");
  return tuner::ParamSpace(params, std::move(constraint_fn));
}

Json encode_open(const OpenParams& params) {
  Json request = Json::object();
  request.set("op", "open");
  request.set("algorithm", params.algorithm);
  request.set("budget", static_cast<std::uint64_t>(params.budget));
  request.set("seed", params.seed);
  if (params.retry.max_retries > 0) {
    Json retry = Json::object();
    retry.set("max_retries", static_cast<std::uint64_t>(params.retry.max_retries));
    retry.set("backoff_initial_us", params.retry.backoff_initial_us);
    retry.set("backoff_multiplier", params.retry.backoff_multiplier);
    retry.set("backoff_max_us", params.retry.backoff_max_us);
    request.set("retry", std::move(retry));
  }
  if (params.custom_space) {
    Json space = Json::object();
    Json ranges = Json::array();
    for (const tuner::ParamRange& range : params.params) {
      Json entry = Json::object();
      entry.set("name", range.name);
      entry.set("lo", static_cast<long long>(range.lo));
      entry.set("hi", static_cast<long long>(range.hi));
      ranges.push_back(std::move(entry));
    }
    space.set("params", std::move(ranges));
    space.set("constraint", params.constraint);
    request.set("space", std::move(space));
  }
  // Store-tenancy extension fields: emitted only when set, so frames (and
  // the WAL/ship records built from them) from store-less sessions stay
  // byte-identical to pre-store builds.
  if (!params.benchmark.empty()) request.set("benchmark", params.benchmark);
  if (!params.arch.empty()) request.set("arch", params.arch);
  if (params.warm_start) request.set("warm_start", true);
  if (!params.tenant.empty()) request.set("tenant", params.tenant);
  if (params.prior != nullptr && !params.prior->empty()) {
    Json rows = Json::array();
    for (const tuner::PriorObservation& row : *params.prior) {
      Json entry = Json::object();
      entry.set("c", encode_config(row.config));
      entry.set("v", row.valid && std::isfinite(row.value) ? Json(row.value)
                                                           : Json(nullptr));
      entry.set("ok", row.valid);
      rows.push_back(std::move(entry));
    }
    request.set("prior", std::move(rows));
  }
  return request;
}

OpenParams decode_open(const Json& request) {
  OpenParams params;
  params.algorithm = require_string(request, "algorithm");
  params.budget = static_cast<std::size_t>(require_uint(request, "budget"));
  if (params.budget == 0) bad_request("budget must be positive");
  params.seed = require_uint(request, "seed");
  if (const Json* retry = request.find("retry"); retry != nullptr) {
    params.retry.max_retries =
        static_cast<std::size_t>(require_uint(*retry, "max_retries"));
    if (const Json* v = retry->find("backoff_initial_us"))
      params.retry.backoff_initial_us = v->as_double();
    if (const Json* v = retry->find("backoff_multiplier"))
      params.retry.backoff_multiplier = v->as_double();
    if (const Json* v = retry->find("backoff_max_us"))
      params.retry.backoff_max_us = v->as_double();
  }
  if (const Json* space = request.find("space"); space != nullptr) {
    params.custom_space = true;
    const Json& ranges = require(*space, "params");
    if (!ranges.is_array()) bad_request("space.params must be an array");
    for (const Json& entry : ranges.as_array()) {
      tuner::ParamRange range;
      range.name = require_string(entry, "name");
      try {
        range.lo = static_cast<int>(require(entry, "lo").as_int64());
        range.hi = static_cast<int>(require(entry, "hi").as_int64());
      } catch (const JsonError&) {
        bad_request("space bounds must be integers");
      }
      if (range.hi < range.lo) bad_request("space range is empty: " + range.name);
      params.params.push_back(std::move(range));
    }
    if (const Json* constraint = space->find("constraint"))
      params.constraint = constraint->as_string();
  }
  if (const Json* benchmark = request.find("benchmark"))
    params.benchmark = benchmark->as_string();
  if (const Json* arch = request.find("arch")) params.arch = arch->as_string();
  if (const Json* warm = request.find("warm_start")) params.warm_start = warm->as_bool();
  if (const Json* tenant = request.find("tenant")) params.tenant = tenant->as_string();
  if (const Json* prior = request.find("prior"); prior != nullptr) {
    if (!prior->is_array()) bad_request("prior must be an array");
    tuner::PriorHistory rows;
    rows.reserve(prior->as_array().size());
    for (const Json& entry : prior->as_array()) {
      if (!entry.is_object()) bad_request("prior rows must be objects");
      tuner::PriorObservation row;
      row.config = decode_config(require(entry, "c"));
      if (row.config.empty()) bad_request("prior row has an empty config");
      row.valid = require_bool(entry, "ok");
      const Json* value = entry.find("v");
      if (value != nullptr && !value->is_null()) {
        row.value = value->as_double();
      } else {
        row.valid = false;  // a "valid" row without a runtime cannot seed
      }
      rows.push_back(std::move(row));
    }
    params.prior = std::make_shared<const tuner::PriorHistory>(std::move(rows));
  }
  return params;
}

std::string space_fingerprint_of(const OpenParams& params) {
  if (params.custom_space) {
    return store::space_fingerprint(params.params, params.constraint);
  }
  return store::paper_space_fingerprint();
}

Json encode_config(const tuner::Configuration& config) {
  Json array = Json::array();
  for (const int value : config) array.push_back(static_cast<long long>(value));
  return array;
}

tuner::Configuration decode_config(const Json& array) {
  if (!array.is_array()) bad_request("config must be an array of integers");
  tuner::Configuration config;
  config.reserve(array.as_array().size());
  for (const Json& value : array.as_array()) {
    try {
      config.push_back(static_cast<int>(value.as_int64()));
    } catch (const JsonError&) {
      bad_request("config must be an array of integers");
    }
  }
  return config;
}

void encode_evaluation_into(Json& object, const tuner::Evaluation& eval) {
  object.set("value", std::isfinite(eval.value) ? Json(eval.value) : Json(nullptr));
  object.set("valid", eval.valid);
  object.set("status", tuner::to_string(eval.status));
}

tuner::Evaluation decode_evaluation(const Json& object) {
  tuner::Evaluation eval;
  const Json& value = require(object, "value");
  eval.value = value.is_null() ? std::numeric_limits<double>::quiet_NaN()
                               : value.as_double();
  eval.valid = require_bool(object, "valid");
  const std::string status_text = require_string(object, "status");
  const auto status = eval_status_from(status_text);
  if (!status) bad_request("unknown evaluation status: " + status_text);
  eval.status = *status;
  return eval;
}

Json encode_counters(const tuner::FailureCounters& counters) {
  Json object = Json::object();
  object.set("ok", static_cast<std::uint64_t>(counters.ok));
  object.set("invalid", static_cast<std::uint64_t>(counters.invalid));
  object.set("transient", static_cast<std::uint64_t>(counters.transient));
  object.set("timeout", static_cast<std::uint64_t>(counters.timeout));
  object.set("crashed", static_cast<std::uint64_t>(counters.crashed));
  object.set("retries", static_cast<std::uint64_t>(counters.retries));
  object.set("retry_successes", static_cast<std::uint64_t>(counters.retry_successes));
  object.set("backoff_us", counters.backoff_us);
  return object;
}

tuner::FailureCounters decode_counters(const Json& object) {
  tuner::FailureCounters counters;
  counters.ok = static_cast<std::size_t>(require_uint(object, "ok"));
  counters.invalid = static_cast<std::size_t>(require_uint(object, "invalid"));
  counters.transient = static_cast<std::size_t>(require_uint(object, "transient"));
  counters.timeout = static_cast<std::size_t>(require_uint(object, "timeout"));
  counters.crashed = static_cast<std::size_t>(require_uint(object, "crashed"));
  counters.retries = static_cast<std::size_t>(require_uint(object, "retries"));
  counters.retry_successes =
      static_cast<std::size_t>(require_uint(object, "retry_successes"));
  counters.backoff_us = require(object, "backoff_us").as_double();
  return counters;
}

Json encode_tune_result(const tuner::TuneResult& result,
                        const tuner::FailureCounters& counters) {
  Json object = Json::object();
  object.set("found_valid", result.found_valid);
  object.set("best_config", encode_config(result.best_config));
  object.set("best_value",
             std::isfinite(result.best_value) ? Json(result.best_value) : Json(nullptr));
  object.set("evaluations_used", static_cast<std::uint64_t>(result.evaluations_used));
  object.set("counters", encode_counters(counters));
  return object;
}

void decode_tune_result(const Json& object, tuner::TuneResult* result,
                        tuner::FailureCounters* counters) {
  result->found_valid = require_bool(object, "found_valid");
  result->best_config = decode_config(require(object, "best_config"));
  const Json& best = require(object, "best_value");
  result->best_value =
      best.is_null() ? std::numeric_limits<double>::quiet_NaN() : best.as_double();
  result->evaluations_used =
      static_cast<std::size_t>(require_uint(object, "evaluations_used"));
  if (counters != nullptr) *counters = decode_counters(require(object, "counters"));
}

Json encode_tenants(const std::vector<store::TenantSnapshot>& tenants) {
  Json array = Json::array();
  for (const store::TenantSnapshot& tenant : tenants) {
    Json entry = Json::object();
    entry.set("benchmark", tenant.key.benchmark);
    entry.set("arch", tenant.key.arch);
    entry.set("space", tenant.key.fingerprint);
    Json rows = Json::array();
    for (const store::StoreRecord& row : tenant.rows) {
      Json record = Json::object();
      record.set("c", encode_config(row.config));
      record.set("v", std::isfinite(row.value) ? Json(row.value) : Json(nullptr));
      record.set("ok", row.valid);
      rows.push_back(std::move(record));
    }
    entry.set("rows", std::move(rows));
    array.push_back(std::move(entry));
  }
  return array;
}

std::vector<store::TenantSnapshot> decode_tenants(const Json& array) {
  if (!array.is_array()) bad_request("tenants must be an array");
  std::vector<store::TenantSnapshot> tenants;
  tenants.reserve(array.as_array().size());
  for (const Json& entry : array.as_array()) {
    store::TenantSnapshot tenant;
    tenant.key.benchmark = require_string(entry, "benchmark");
    tenant.key.arch = require_string(entry, "arch");
    tenant.key.fingerprint = require_string(entry, "space");
    const Json& rows = require(entry, "rows");
    if (!rows.is_array()) bad_request("tenant rows must be an array");
    tenant.rows.reserve(rows.as_array().size());
    for (const Json& record : rows.as_array()) {
      store::StoreRecord row;
      row.config = decode_config(require(record, "c"));
      if (row.config.empty()) bad_request("tenant row config must be non-empty");
      const Json* value = record.find("v");
      row.value = (value == nullptr || value->is_null())
                      ? std::numeric_limits<double>::quiet_NaN()
                      : value->as_double();
      row.valid = require_bool(record, "ok");
      tenant.rows.push_back(std::move(row));
    }
    tenants.push_back(std::move(tenant));
  }
  return tenants;
}

std::optional<tuner::EvalStatus> eval_status_from(std::string_view text) noexcept {
  for (const tuner::EvalStatus status :
       {tuner::EvalStatus::kOk, tuner::EvalStatus::kInvalid, tuner::EvalStatus::kTransient,
        tuner::EvalStatus::kTimeout, tuner::EvalStatus::kCrashed}) {
    if (text == tuner::to_string(status)) return status;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Response helpers
// ---------------------------------------------------------------------------

Json make_ok() {
  Json response = Json::object();
  response.set("ok", true);
  return response;
}

Json make_error(ErrorCode code, const std::string& message) {
  Json response = Json::object();
  response.set("ok", false);
  response.set("error", to_string(code));
  response.set("message", message);
  return response;
}

Json make_retry_later(const std::string& message, std::uint64_t retry_after_ms) {
  Json response = make_error(ErrorCode::kRetryLater, message);
  response.set("retry_after_ms", retry_after_ms);
  return response;
}

}  // namespace repro::service
