#include "service/server.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace repro::service {
namespace {

/// "deadline_ms" request field -> absolute steady-clock deadline for the
/// blocking session ops. Deadline bookkeeping; never feeds tuning results.
[[nodiscard]] std::optional<std::chrono::steady_clock::time_point> request_deadline(
    const Json& request) {
  const std::optional<std::uint64_t> ms = optional_uint(request, "deadline_ms");
  if (!ms) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(static_cast<std::int64_t>(*ms));
}

}  // namespace

namespace {

// store_export resume cursor: hex(tenant flat key) + ":" + row offset. The
// flat key embeds unit-separator bytes, so it crosses the wire hex-encoded
// and the whole cursor stays an opaque printable token to clients.

[[nodiscard]] std::string encode_export_cursor(const std::string& flat,
                                               std::size_t row) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(flat.size() * 2 + 8);
  for (const char byte : flat) {
    const auto value = static_cast<unsigned char>(byte);
    out.push_back(kHex[value >> 4]);
    out.push_back(kHex[value & 0xF]);
  }
  out.push_back(':');
  out += std::to_string(row);
  return out;
}

[[nodiscard]] bool decode_export_cursor(const std::string& text,
                                        std::string& flat, std::size_t& row) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0 || colon % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  flat.clear();
  for (std::size_t i = 0; i < colon; i += 2) {
    const int hi = nibble(text[i]);
    const int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return false;
    flat.push_back(static_cast<char>((hi << 4) | lo));
  }
  if (colon + 1 >= text.size()) return false;
  row = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    row = row * 10 + static_cast<std::size_t>(text[i] - '0');
  }
  return true;
}

[[nodiscard]] std::shared_ptr<store::ResultsStore> make_store(const ServerConfig& config) {
  if (config.store_dir.empty()) return nullptr;
  store::StoreOptions options;
  options.dir = config.store_dir;
  options.capacity = config.store_capacity;
  return std::make_shared<store::ResultsStore>(std::move(options));
}

}  // namespace

TuneServer::TuneServer(ServerConfig config)
    : config_(std::move(config)),
      store_(make_store(config_)),
      manager_(std::make_unique<SessionManager>(config_.limits, store_)) {
  standby_ = config_.standby;
}

TuneServer::~TuneServer() { stop(); }

void TuneServer::start() {
  {
    repro::MutexLock lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  if (store_ != nullptr) {
    // The store loads before session recovery: replayed tells re-append
    // their records (dedup makes that idempotent), and recovered sessions
    // may carry journaled warm-start priors that postdate the store's tail.
    store_->load();
    const store::StoreStats stats = store_->stats();
    log_info("tuned: results store at {}: {} records across {} tenants "
             "loaded{}",
             config_.store_dir, stats.loaded_records, stats.tenants,
             stats.torn_tail ? " (torn tail dropped)" : "");
  }
  if (!config_.limits.state_dir.empty()) {
    // Recover before the first client can connect: replayed sessions must
    // be visible (and their ids reserved) before any new open lands.
    const RecoveryStats stats = manager_->recover();
    log_info("tuned: recovery from {}: {} sessions restored ({} tells), "
             "{} failed, {} torn tails, {} closed discarded, {} tombstoned",
             config_.limits.state_dir, stats.sessions_recovered,
             stats.tells_replayed, stats.sessions_failed, stats.torn_tails,
             stats.closed_discarded, stats.evicted_tombstones);
  }
  // Eager first ship connect (+ resync of recovered sessions) so `status`
  // reports replication health from the first probe. Failure just leaves
  // the shard degraded; the next ship attempt retries.
  manager_->connect_shipper();
  listener_ = ListenSocket::listen_loopback(config_.port);
  listener_.set_accept_timeout(config_.poll_interval);
  port_ = listener_.port();
  pool_ = std::make_unique<ThreadPool>(config_.connection_threads);
  // Dedicated accept thread by design (see the member's comment in the header).
  accept_thread_ = std::thread([this] { accept_loop(); });  // NOLINT(reprolint-raw-thread)
  log_info("tuned: listening on 127.0.0.1:{} ({} connection workers, "
           "max {} sessions{})",
           port_, config_.connection_threads, config_.limits.max_sessions,
           config_.standby ? ", standby" : "");
}

bool TuneServer::standby() const noexcept {
  repro::MutexLock lock(mutex_);
  return standby_;
}

bool TuneServer::promote() {
  {
    repro::MutexLock lock(mutex_);
    if (!standby_) return false;  // already primary: idempotent no-op
    standby_ = false;
    ++promotions_;
  }
  log_info("tuned: promoted to primary ({} live sessions, hot)", manager_->live());
  return true;
}

void TuneServer::demote() {
  {
    repro::MutexLock lock(mutex_);
    if (standby_) return;  // already a standby: idempotent no-op
    standby_ = true;
    ++demotions_;
  }
  // Outside the lock: demote_reset cancels sessions (joins search threads)
  // and truncates the store — none of it needs the server mutex.
  const std::size_t dropped = manager_->demote_reset();
  log_info("tuned: demoted to standby ({} divergent session(s) dropped); "
           "awaiting re-seed from the new primary",
           dropped);
}

std::size_t TuneServer::demotions() const {
  repro::MutexLock lock(mutex_);
  return demotions_;
}

bool TuneServer::running() const noexcept {
  repro::MutexLock lock(mutex_);
  return started_ && !stopping_;
}

bool TuneServer::draining() const noexcept {
  repro::MutexLock lock(mutex_);
  return draining_;
}

bool TuneServer::drain(std::chrono::milliseconds deadline) {
  {
    repro::MutexLock lock(mutex_);
    if (!started_ || stopping_) return true;
  }
  listener_.close();  // stop accepting; live connections keep running
  {
    // Flag set only after the listener is gone, so an observer of
    // draining()==true can rely on new connections being refused.
    repro::MutexLock lock(mutex_);
    draining_ = true;
  }
  log_info("tuned: draining ({} live sessions, {} connections)",
           manager_->live(), active_connections());
  // Shutdown deadline; never feeds tuning results.
  const auto stop_at = std::chrono::steady_clock::now() + deadline;  // NOLINT(reprolint-wall-clock)
  while (std::chrono::steady_clock::now() < stop_at) {  // NOLINT(reprolint-wall-clock)
    if (manager_->live() == 0 && active_connections() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return manager_->live() == 0 && active_connections() == 0;
}

void TuneServer::stop() {
  std::vector<std::shared_ptr<Socket>> sockets;
  {
    repro::MutexLock lock(mutex_);
    if (!started_ || stopping_) {
      if (!started_) return;
      // fallthrough for idempotent stop after a previous stop() finished
    }
    stopping_ = true;
    sockets.reserve(connections_.size());
    // Shutdown broadcast: every socket gets shut down, so the unordered
    // iteration order is immaterial.
    for (auto& [id, socket] : connections_) sockets.push_back(socket);  // NOLINT(reprolint-unordered-iteration)
  }
  listener_.close();
  for (const auto& socket : sockets) socket->shutdown_both();
  // Unblock handlers parked in session ask()/result() before joining them.
  manager_->cancel_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // joins connection workers
}

std::size_t TuneServer::active_connections() const {
  repro::MutexLock lock(mutex_);
  return connections_.size();
}

std::size_t TuneServer::connections_accepted() const {
  repro::MutexLock lock(mutex_);
  return connections_accepted_;
}

std::size_t TuneServer::connections_reaped() const {
  repro::MutexLock lock(mutex_);
  return connections_reaped_;
}

std::size_t TuneServer::connections_refused() const {
  repro::MutexLock lock(mutex_);
  return connections_refused_;
}

void TuneServer::accept_loop() {
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    Socket socket;
    const Socket::Io io = listener_.accept(&socket);
    if (io == Socket::Io::kTimeout) {
      // The accept tick doubles as the idle-eviction heartbeat. A standby
      // must not run its own idle clock: its sessions only see activity
      // when records arrive, so it evicts exactly when the primary ships a
      // ship_evict record (keeping both sides' tombstones in lockstep).
      if (!standby()) {
        (void)manager_->evict_idle();
        // Deposed-primary rejoin: a fence means our follower was promoted
        // — this daemon lost a failover race and its unshipped tail is
        // divergent. Demote into a clean standby so the new primary can
        // re-seed us, with zero operator action.
        if (config_.auto_rejoin &&
            manager_->ship_state() == ShipState::kFenced) {
          demote();
        }
      }
      continue;
    }
    if (io == Socket::Io::kClosed) return;  // stop() or drain() closed us
    if (io == Socket::Io::kError) continue;

    auto shared = std::make_shared<Socket>(std::move(socket));
    std::uint64_t id = 0;
    bool refused = false;
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) continue;  // socket closes as `shared` dies
      if (config_.max_connections > 0 &&
          connections_.size() >= config_.max_connections) {
        ++connections_refused_;
        refused = true;
      } else {
        id = next_connection_id_++;
        connections_[id] = shared;
        ++connections_accepted_;
      }
    }
    if (refused) {
      // Admission pushback on the accept thread: one short best-effort
      // write, then close (as `shared` dies).
      shared->set_write_timeout(config_.poll_interval);
      (void)write_frame(*shared,
                        make_retry_later("connection limit reached",
                                         config_.limits.retry_after_ms));
      continue;
    }
    std::vector<std::function<void()>> task;
    task.emplace_back([this, id] {
      try {
        handle_connection(id);
      } catch (const std::exception& error) {
        log_error("tuned: connection {} handler failed: {}", id, error.what());
      }
      repro::MutexLock lock(mutex_);
      connections_.erase(id);
    });
    pool_->submit_batch(std::move(task));
  }
}

void TuneServer::handle_connection(std::uint64_t id) {
  std::shared_ptr<Socket> socket;
  {
    repro::MutexLock lock(mutex_);
    const auto it = connections_.find(id);
    if (it == connections_.end()) return;
    socket = it->second;
  }
  socket->set_read_timeout(config_.poll_interval);
  if (config_.write_timeout.count() > 0)
    socket->set_write_timeout(config_.write_timeout);
  FrameReader reader(*socket);
  ConnState conn;
  std::string line;
  // Liveness deadline bookkeeping; never feeds tuning results.
  auto last_frame = std::chrono::steady_clock::now();
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    const FrameStatus status = reader.next(&line);
    if (status == FrameStatus::kTimeout) {
      // Slow-loris / dead-peer guard: a connection that cannot finish a
      // frame (silent or trickling bytes) is reaped; its sessions survive
      // and a reconnect resumes them (resume:true, seq idempotency).
      if (config_.connection_idle_timeout.count() > 0 &&
          std::chrono::steady_clock::now() - last_frame >
              config_.connection_idle_timeout) {
        log_info("tuned: reaping connection {} (no frame in {}ms)", id,
                 config_.connection_idle_timeout.count());
        repro::MutexLock lock(mutex_);
        ++connections_reaped_;
        return;
      }
      continue;
    }
    if (status == FrameStatus::kClosed || status == FrameStatus::kMidFrameEof ||
        status == FrameStatus::kError)
      return;
    if (status == FrameStatus::kOversized) {
      // The stream cannot resynchronize after an oversized frame.
      // Protocol-error reply, not an ack: the request was never parsed, so
      // no durable state exists to fsync before answering.
      // NOLINTNEXTLINE(svclint-durability)
      (void)write_frame(*socket, make_error(ErrorCode::kOversizedFrame,
                                            "frame exceeds " +
                                                std::to_string(kMaxFrameBytes) +
                                                " bytes"));
      return;
    }

    Json request;
    try {
      request = Json::parse(line);
    } catch (const JsonError& error) {
      // Malformed-frame reply carries no durable state — the bytes never
      // became a request, so there is nothing to append.
      // NOLINTNEXTLINE(svclint-durability)
      if (!write_frame(*socket, make_error(ErrorCode::kMalformedFrame, error.what())))
        return;
      continue;
    }
    bool fatal = false;
    const Json response = dispatch(request, &conn, &fatal);
    if (!write_frame(*socket, response)) return;
    if (fatal) return;
    // Restart the liveness clock only after the response is out: time spent
    // blocked inside dispatch (a parked ask) must not count against the
    // client, and the clock measures the peer's progress, not ours.
    last_frame = std::chrono::steady_clock::now();
  }
}

Json TuneServer::dispatch(const Json& request, ConnState* conn, bool* fatal) {
  *fatal = false;
  try {
    const std::string op = require_string(request, "op");
    if (op == "hello") {
      const std::uint64_t version = require_uint(request, "version");
      if (version != static_cast<std::uint64_t>(kProtocolVersion)) {
        *fatal = true;
        return make_error(ErrorCode::kVersionMismatch,
                          "server speaks protocol version " +
                              std::to_string(kProtocolVersion) + ", client sent " +
                              std::to_string(version));
      }
      conn->hello_done = true;
      // Quota identity: optional, connection-scoped, stamped into every
      // open below. A repeated hello may change it (same trust model as
      // the identity itself — the loopback peer is who it says it is).
      if (const Json* field = request.find("tenant"))
        conn->tenant = field->as_string();
      Json response = make_ok();
      response.set("version", static_cast<std::uint64_t>(kProtocolVersion));
      response.set("server", config_.name);
      response.set("max_frame", static_cast<std::uint64_t>(kMaxFrameBytes));
      // Role in the handshake: a shipper that dials a promoted daemon can
      // fence before shipping a single record (see wal_ship.cpp).
      response.set("role", standby() ? "standby" : "primary");
      // Version-1 extension fields this server understands (see the
      // protocol header); old servers simply omit the list.
      Json features = Json::array();
      for (const char* feature :
           {"deadline_ms", "seq", "resume", "token", "retry_later", "cluster",
            "store", "quota"})
        features.push_back(feature);
      response.set("features", std::move(features));
      return response;
    }
    if (!conn->hello_done) {
      return make_error(ErrorCode::kHelloRequired,
                        "first frame must be a hello handshake");
    }
    if (op == "ping") return make_ok();
    const bool is_session_op = op == "open" || op == "ask" || op == "tell" ||
                               op == "result" || op == "close";
    const bool is_ship_op = op == "ship_open" || op == "ship_tell" ||
                            op == "ship_close" || op == "ship_evict";
    if (is_session_op && standby()) {
      return make_error(ErrorCode::kWrongRole,
                        "this daemon is a hot standby; session ops belong on "
                        "the primary (or promote this one first)");
    }
    if (is_ship_op && !standby()) {
      // A fenced ex-primary must never accept replication records; the
      // shipper on the other side fences itself on this answer.
      return make_error(ErrorCode::kWrongRole,
                        "this daemon is a primary; ship_* records belong on "
                        "a standby");
    }
    if (op == "ship_open") {
      const std::string session = require_string(request, "session");
      const Json* open_field = request.find("open");
      if (open_field == nullptr)
        return make_error(ErrorCode::kBadRequest, "ship_open requires 'open'");
      const OpenParams params = decode_open(*open_field);
      std::string token;
      if (const Json* field = request.find("token")) token = field->as_string();
      manager_->open_replica(session, params, token);
      return make_ok();
    }
    if (op == "ship_tell") {
      const std::string session = require_string(request, "session");
      const std::uint64_t seq = require_uint(request, "seq");
      const Json* config_field = request.find("config");
      if (config_field == nullptr)
        return make_error(ErrorCode::kBadRequest, "ship_tell requires 'config'");
      const tuner::Configuration config = decode_config(*config_field);
      const tuner::Evaluation evaluation = decode_evaluation(request);
      const SessionManager::TellAck ack =
          manager_->apply_replica_tell(session, seq, config, evaluation);
      Json response = make_ok();
      response.set("remaining", static_cast<std::uint64_t>(ack.remaining));
      if (ack.duplicate) response.set("duplicate", true);
      return response;
    }
    if (op == "ship_close") {
      manager_->close_replica(require_string(request, "session"));
      return make_ok();
    }
    if (op == "ship_evict") {
      manager_->evict_replica(require_string(request, "session"));
      return make_ok();
    }
    if (op == "promote") {
      // Idempotent: promoting a primary is a no-op ack, so a router that
      // lost the first response can safely retry. The reply distinguishes
      // the no-op ("already_primary") so a double-promote race is
      // observable without being an error.
      Json response = make_ok();
      if (!promote()) response.set("already_primary", true);
      response.set("role", "primary");
      return response;
    }
    if (op == "reseed") {
      // Router-orchestrated standby re-seeding: point this primary's
      // shipper at a replacement follower and resync it (store snapshot +
      // journals + digest gate). Primary-only: a standby has nothing to
      // ship.
      if (standby()) {
        return make_error(ErrorCode::kWrongRole,
                          "reseed belongs on the primary");
      }
      std::string host = "127.0.0.1";
      if (const Json* field = request.find("host")) host = field->as_string();
      const std::uint64_t port = require_uint(request, "port");
      if (port == 0 || port > 65535)
        return make_error(ErrorCode::kBadRequest, "reseed port out of range");
      const bool hot = manager_->reseed(host, static_cast<std::uint16_t>(port));
      Json response = make_ok();
      response.set("hot", hot);
      response.set("ship_state", to_string(manager_->ship_state()));
      return response;
    }
    // Store ops answer on any role: a standby's store is inspectable (and
    // seedable) without promoting it.
    if (op == "store_stats") {
      Json response = make_ok();
      response.set("store_enabled", store_ != nullptr);
      if (store_ != nullptr) {
        const store::StoreStats stats = store_->stats();
        response.set("dir", config_.store_dir);
        response.set("records", static_cast<std::uint64_t>(stats.records));
        response.set("tenants", static_cast<std::uint64_t>(stats.tenants));
        response.set("appends", stats.appends);
        response.set("duplicates", stats.duplicates);
        response.set("rejected", stats.rejected);
        response.set("evictions", stats.evictions);
        response.set("compactions", stats.compactions);
        response.set("io_errors", stats.io_errors);
        response.set("log_records", static_cast<std::uint64_t>(stats.log_records));
        response.set("log_bytes", stats.log_bytes);
        response.set("loaded_records",
                     static_cast<std::uint64_t>(stats.loaded_records));
        response.set("torn_tail", stats.torn_tail);
        response.set("digest", store_->digest());
      }
      return response;
    }
    if (op == "store_export") {
      if (store_ == nullptr)
        return make_error(ErrorCode::kBadRequest, "no results store configured");
      std::string benchmark;
      std::string arch;
      if (const Json* field = request.find("benchmark")) benchmark = field->as_string();
      if (const Json* field = request.find("arch")) arch = field->as_string();
      // Row cap keeps every page inside kMaxFrameBytes (a row is ~60 wire
      // bytes); "next_cursor" in the reply resumes the export past it, so
      // stores of any size stream out page by page.
      constexpr std::uint64_t kExportRowCap = 8192;
      const std::uint64_t limit =
          std::min(optional_uint(request, "limit").value_or(kExportRowCap),
                   kExportRowCap);
      std::string start_flat;
      std::size_t start_row = 0;
      if (const Json* field = request.find("cursor")) {
        if (!field->is_string() ||
            !decode_export_cursor(field->as_string(), start_flat, start_row)) {
          return make_error(ErrorCode::kBadRequest, "malformed export cursor");
        }
      }
      const store::ResultsStore::ExportPage page = store_->export_page(
          benchmark, arch, static_cast<std::size_t>(limit), start_flat, start_row);
      std::uint64_t rows = 0;
      for (const store::TenantSnapshot& tenant : page.tenants) rows += tenant.rows.size();
      Json response = make_ok();
      response.set("tenants", encode_tenants(page.tenants));
      response.set("records", rows);
      response.set("truncated", page.more);
      if (page.more) {
        response.set("next_cursor",
                     encode_export_cursor(page.next_tenant_flat, page.next_row));
      }
      return response;
    }
    if (op == "store_import") {
      if (store_ == nullptr)
        return make_error(ErrorCode::kBadRequest, "no results store configured");
      const std::vector<store::TenantSnapshot> tenants =
          decode_tenants(require(request, "tenants"));
      std::size_t offered = 0;
      for (const store::TenantSnapshot& tenant : tenants) offered += tenant.rows.size();
      try {
        const std::size_t imported = store_->import_tenants(tenants);
        // Replicate the seed batch to the hot standby; redelivery is safe
        // (the standby's store dedups), so ship even when everything was a
        // local duplicate — the standby may still be missing the rows.
        manager_->ship_store_import(tenants);
        Json response = make_ok();
        response.set("imported", static_cast<std::uint64_t>(imported));
        response.set("duplicates", static_cast<std::uint64_t>(offered - imported));
        return response;
      } catch (const store::IncompatibleSpaceError& error) {
        return make_error(ErrorCode::kBadRequest, error.what());
      }
    }
    if (op == "open") {
      {
        repro::MutexLock lock(mutex_);
        if (draining_ || stopping_) {
          return make_error(ErrorCode::kDraining, "server is draining");
        }
      }
      OpenParams params = decode_open(request);
      // The server stamps the quota identity from the connection's hello —
      // unconditionally, so a request-level "tenant" field can never spoof
      // another tenant's budget. The stamped value rides the WAL open
      // record and ship_open, surviving recovery and failover.
      params.tenant = conn->tenant;
      std::string token;
      if (const Json* field = request.find("token")) token = field->as_string();
      Json response = make_ok();
      response.set("session", manager_->open(params, token));
      return response;
    }
    if (op == "ask") {
      const std::string session = require_string(request, "session");
      bool resume = false;
      if (const Json* field = request.find("resume")) resume = field->as_bool();
      const auto config =
          manager_->ask(session, request_deadline(request), resume);
      Json response = make_ok();
      response.set("done", !config.has_value());
      if (config) response.set("config", encode_config(*config));
      return response;
    }
    if (op == "tell") {
      const std::string session = require_string(request, "session");
      const tuner::Evaluation evaluation = decode_evaluation(request);
      const std::uint64_t seq = optional_uint(request, "seq").value_or(0);
      const SessionManager::TellAck ack = manager_->tell(session, evaluation, seq);
      Json response = make_ok();
      response.set("remaining", static_cast<std::uint64_t>(ack.remaining));
      if (ack.duplicate) response.set("duplicate", true);
      return response;
    }
    if (op == "result") {
      const std::string session = require_string(request, "session");
      const SessionManager::ResultPayload payload =
          manager_->result(session, request_deadline(request));
      Json response = make_ok();
      response.set("result", encode_tune_result(payload.result, payload.counters));
      return response;
    }
    if (op == "close") {
      manager_->close(require_string(request, "session"));
      return make_ok();
    }
    if (op == "status") {
      const StatusReport report = manager_->status();
      Json response = make_ok();
      response.set("server", config_.name);
      response.set("version", static_cast<std::uint64_t>(kProtocolVersion));
      response.set("live_sessions", static_cast<std::uint64_t>(report.live_sessions));
      response.set("opened", static_cast<std::uint64_t>(report.opened));
      response.set("closed", static_cast<std::uint64_t>(report.closed));
      response.set("evicted", static_cast<std::uint64_t>(report.evicted));
      response.set("finished", static_cast<std::uint64_t>(report.finished));
      response.set("asks", static_cast<std::uint64_t>(report.asks));
      response.set("tells", static_cast<std::uint64_t>(report.tells));
      response.set("duplicate_tells",
                   static_cast<std::uint64_t>(report.duplicate_tells));
      response.set("tallies", encode_counters(report.tallies));
      response.set("wal_enabled", report.wal_enabled);
      if (report.wal_enabled) {
        response.set("wal_errors", static_cast<std::uint64_t>(report.wal_errors));
        Json recovery = Json::object();
        recovery.set("sessions_recovered",
                     static_cast<std::uint64_t>(report.recovery.sessions_recovered));
        recovery.set("tells_replayed",
                     static_cast<std::uint64_t>(report.recovery.tells_replayed));
        recovery.set("sessions_failed",
                     static_cast<std::uint64_t>(report.recovery.sessions_failed));
        recovery.set("torn_tails",
                     static_cast<std::uint64_t>(report.recovery.torn_tails));
        recovery.set("closed_discarded",
                     static_cast<std::uint64_t>(report.recovery.closed_discarded));
        recovery.set("evicted_tombstones",
                     static_cast<std::uint64_t>(report.recovery.evicted_tombstones));
        response.set("recovery", std::move(recovery));
      }
      response.set("store_enabled", report.store_enabled);
      if (report.store_enabled && store_ != nullptr) {
        const store::StoreStats stats = store_->stats();
        Json store_summary = Json::object();
        store_summary.set("records", static_cast<std::uint64_t>(stats.records));
        store_summary.set("tenants", static_cast<std::uint64_t>(stats.tenants));
        store_summary.set("append_errors",
                          static_cast<std::uint64_t>(report.store_errors));
        store_summary.set("io_errors", stats.io_errors);
        response.set("store", std::move(store_summary));
      }
      response.set("ship_enabled", report.ship_enabled);
      response.set("ship_state", to_string(report.ship_state));
      if (report.ship_enabled) {
        response.set("ship_connected", report.ship_connected);
        response.set("ship_fenced", report.ship_fenced);
        if (!report.ship_target.empty())
          response.set("ship_target", report.ship_target);
        Json ship = Json::object();
        ship.set("records_shipped",
                 static_cast<std::uint64_t>(report.ship.records_shipped));
        ship.set("duplicates_acked",
                 static_cast<std::uint64_t>(report.ship.duplicates_acked));
        ship.set("resyncs", static_cast<std::uint64_t>(report.ship.resyncs));
        ship.set("reconnects", static_cast<std::uint64_t>(report.ship.reconnects));
        ship.set("failures", static_cast<std::uint64_t>(report.ship.failures));
        ship.set("retargets", static_cast<std::uint64_t>(report.ship.retargets));
        ship.set("store_rows_resynced",
                 static_cast<std::uint64_t>(report.ship.store_rows_resynced));
        response.set("ship", std::move(ship));
      }
      {
        // Quota block: aggregate shed/pushback counters plus one row per
        // named tenant, so the router can merge fairness state cluster-wide.
        Json quotas = Json::object();
        quotas.set("enabled", report.quotas.enabled);
        quotas.set("queue_depth",
                   static_cast<std::uint64_t>(report.quotas.queue_depth));
        quotas.set("queued", static_cast<std::uint64_t>(report.quotas.queued));
        quotas.set("granted", static_cast<std::uint64_t>(report.quotas.granted));
        quotas.set("timeouts",
                   static_cast<std::uint64_t>(report.quotas.timeouts));
        quotas.set("shed_anonymous",
                   static_cast<std::uint64_t>(report.quotas.shed_anonymous));
        quotas.set("shed_over_quota",
                   static_cast<std::uint64_t>(report.quotas.shed_over_quota));
        quotas.set("shed_queue_full",
                   static_cast<std::uint64_t>(report.quotas.shed_queue_full));
        quotas.set("tell_pushbacks",
                   static_cast<std::uint64_t>(report.quotas.tell_pushbacks));
        Json tenants = Json::array();
        for (const StatusReport::TenantStatus& row : report.quotas.tenants) {
          Json entry = Json::object();
          entry.set("tenant", row.tenant);
          entry.set("sessions", static_cast<std::uint64_t>(row.sessions));
          entry.set("inflight_tells",
                    static_cast<std::uint64_t>(row.inflight_tells));
          entry.set("queued", static_cast<std::uint64_t>(row.queued));
          tenants.push_back(std::move(entry));
        }
        quotas.set("tenants", std::move(tenants));
        response.set("quotas", std::move(quotas));
      }
      {
        repro::MutexLock lock(mutex_);
        response.set("role", standby_ ? "standby" : "primary");
        response.set("promotions", static_cast<std::uint64_t>(promotions_));
        response.set("demotions", static_cast<std::uint64_t>(demotions_));
        response.set("draining", draining_ || stopping_);
        response.set("active_connections",
                     static_cast<std::uint64_t>(connections_.size()));
        response.set("connections_accepted",
                     static_cast<std::uint64_t>(connections_accepted_));
        response.set("connections_reaped",
                     static_cast<std::uint64_t>(connections_reaped_));
        response.set("connections_refused",
                     static_cast<std::uint64_t>(connections_refused_));
      }
      Json sessions = Json::array();
      for (const SessionInfo& info : manager_->sessions()) {
        Json entry = Json::object();
        entry.set("id", info.id);
        entry.set("algorithm", info.algorithm);
        entry.set("budget", static_cast<std::uint64_t>(info.budget));
        entry.set("asks", static_cast<std::uint64_t>(info.asks));
        entry.set("tells", static_cast<std::uint64_t>(info.tells));
        entry.set("finished", info.finished);
        entry.set("idle_ms", static_cast<std::uint64_t>(info.idle.count()));
        sessions.push_back(std::move(entry));
      }
      response.set("sessions", std::move(sessions));
      return response;
    }
    return make_error(ErrorCode::kUnknownOp, "unknown op: " + op);
  } catch (const ProtocolError& error) {
    if (error.code == ErrorCode::kRetryLater)
      return make_retry_later(error.what(), error.retry_after_ms);
    return make_error(error.code, error.what());
  } catch (const JsonError& error) {
    return make_error(ErrorCode::kBadRequest, error.what());
  } catch (const std::exception& error) {
    return make_error(ErrorCode::kInternal, error.what());
  }
}

}  // namespace repro::service
