#include "service/server.hpp"

#include <utility>

#include "common/log.hpp"

namespace repro::service {

TuneServer::TuneServer(ServerConfig config)
    : config_(std::move(config)), manager_(std::make_unique<SessionManager>(config_.limits)) {}

TuneServer::~TuneServer() { stop(); }

void TuneServer::start() {
  {
    repro::MutexLock lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  listener_ = ListenSocket::listen_loopback(config_.port);
  listener_.set_accept_timeout(config_.poll_interval);
  port_ = listener_.port();
  pool_ = std::make_unique<ThreadPool>(config_.connection_threads);
  // Dedicated accept thread by design (see the member's comment in the header).
  accept_thread_ = std::thread([this] { accept_loop(); });  // NOLINT(reprolint-raw-thread)
  log_info("tuned: listening on 127.0.0.1:{} ({} connection workers, "
           "max {} sessions)",
           port_, config_.connection_threads, config_.limits.max_sessions);
}

bool TuneServer::running() const noexcept {
  repro::MutexLock lock(mutex_);
  return started_ && !stopping_;
}

bool TuneServer::draining() const noexcept {
  repro::MutexLock lock(mutex_);
  return draining_;
}

bool TuneServer::drain(std::chrono::milliseconds deadline) {
  {
    repro::MutexLock lock(mutex_);
    if (!started_ || stopping_) return true;
  }
  listener_.close();  // stop accepting; live connections keep running
  {
    // Flag set only after the listener is gone, so an observer of
    // draining()==true can rely on new connections being refused.
    repro::MutexLock lock(mutex_);
    draining_ = true;
  }
  log_info("tuned: draining ({} live sessions, {} connections)",
           manager_->live(), active_connections());
  // Shutdown deadline; never feeds tuning results.
  const auto stop_at = std::chrono::steady_clock::now() + deadline;  // NOLINT(reprolint-wall-clock)
  while (std::chrono::steady_clock::now() < stop_at) {  // NOLINT(reprolint-wall-clock)
    if (manager_->live() == 0 && active_connections() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return manager_->live() == 0 && active_connections() == 0;
}

void TuneServer::stop() {
  std::vector<std::shared_ptr<Socket>> sockets;
  {
    repro::MutexLock lock(mutex_);
    if (!started_ || stopping_) {
      if (!started_) return;
      // fallthrough for idempotent stop after a previous stop() finished
    }
    stopping_ = true;
    sockets.reserve(connections_.size());
    // Shutdown broadcast: every socket gets shut down, so the unordered
    // iteration order is immaterial.
    for (auto& [id, socket] : connections_) sockets.push_back(socket);  // NOLINT(reprolint-unordered-iteration)
  }
  listener_.close();
  for (const auto& socket : sockets) socket->shutdown_both();
  // Unblock handlers parked in session ask()/result() before joining them.
  manager_->cancel_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // joins connection workers
}

std::size_t TuneServer::active_connections() const {
  repro::MutexLock lock(mutex_);
  return connections_.size();
}

std::size_t TuneServer::connections_accepted() const {
  repro::MutexLock lock(mutex_);
  return connections_accepted_;
}

void TuneServer::accept_loop() {
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    Socket socket;
    const Socket::Io io = listener_.accept(&socket);
    if (io == Socket::Io::kTimeout) {
      // The accept tick doubles as the idle-eviction heartbeat.
      (void)manager_->evict_idle();
      continue;
    }
    if (io == Socket::Io::kClosed) return;  // stop() or drain() closed us
    if (io == Socket::Io::kError) continue;

    auto shared = std::make_shared<Socket>(std::move(socket));
    std::uint64_t id = 0;
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) continue;  // socket closes as `shared` dies
      id = next_connection_id_++;
      connections_[id] = shared;
      ++connections_accepted_;
    }
    std::vector<std::function<void()>> task;
    task.emplace_back([this, id] {
      try {
        handle_connection(id);
      } catch (const std::exception& error) {
        log_error("tuned: connection {} handler failed: {}", id, error.what());
      }
      repro::MutexLock lock(mutex_);
      connections_.erase(id);
    });
    pool_->submit_batch(std::move(task));
  }
}

void TuneServer::handle_connection(std::uint64_t id) {
  std::shared_ptr<Socket> socket;
  {
    repro::MutexLock lock(mutex_);
    const auto it = connections_.find(id);
    if (it == connections_.end()) return;
    socket = it->second;
  }
  socket->set_read_timeout(config_.poll_interval);
  FrameReader reader(*socket);
  bool hello_done = false;
  std::string line;
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    const FrameStatus status = reader.next(&line);
    if (status == FrameStatus::kTimeout) continue;
    if (status == FrameStatus::kClosed || status == FrameStatus::kError) return;
    if (status == FrameStatus::kOversized) {
      // The stream cannot resynchronize after an oversized frame.
      (void)write_frame(*socket, make_error(ErrorCode::kOversizedFrame,
                                            "frame exceeds " +
                                                std::to_string(kMaxFrameBytes) +
                                                " bytes"));
      return;
    }

    Json request;
    try {
      request = Json::parse(line);
    } catch (const JsonError& error) {
      if (!write_frame(*socket, make_error(ErrorCode::kMalformedFrame, error.what())))
        return;
      continue;
    }
    bool fatal = false;
    const Json response = dispatch(request, &hello_done, &fatal);
    if (!write_frame(*socket, response)) return;
    if (fatal) return;
  }
}

Json TuneServer::dispatch(const Json& request, bool* hello_done, bool* fatal) {
  *fatal = false;
  try {
    const std::string op = require_string(request, "op");
    if (op == "hello") {
      const std::uint64_t version = require_uint(request, "version");
      if (version != static_cast<std::uint64_t>(kProtocolVersion)) {
        *fatal = true;
        return make_error(ErrorCode::kVersionMismatch,
                          "server speaks protocol version " +
                              std::to_string(kProtocolVersion) + ", client sent " +
                              std::to_string(version));
      }
      *hello_done = true;
      Json response = make_ok();
      response.set("version", static_cast<std::uint64_t>(kProtocolVersion));
      response.set("server", config_.name);
      response.set("max_frame", static_cast<std::uint64_t>(kMaxFrameBytes));
      return response;
    }
    if (!*hello_done) {
      return make_error(ErrorCode::kHelloRequired,
                        "first frame must be a hello handshake");
    }
    if (op == "ping") return make_ok();
    if (op == "open") {
      {
        repro::MutexLock lock(mutex_);
        if (draining_ || stopping_) {
          return make_error(ErrorCode::kDraining, "server is draining");
        }
      }
      const OpenParams params = decode_open(request);
      Json response = make_ok();
      response.set("session", manager_->open(params));
      return response;
    }
    if (op == "ask") {
      const std::string session = require_string(request, "session");
      const auto config = manager_->ask(session);
      Json response = make_ok();
      response.set("done", !config.has_value());
      if (config) response.set("config", encode_config(*config));
      return response;
    }
    if (op == "tell") {
      const std::string session = require_string(request, "session");
      const tuner::Evaluation evaluation = decode_evaluation(request);
      const std::size_t remaining = manager_->tell(session, evaluation);
      Json response = make_ok();
      response.set("remaining", static_cast<std::uint64_t>(remaining));
      return response;
    }
    if (op == "result") {
      const std::string session = require_string(request, "session");
      const SessionManager::ResultPayload payload = manager_->result(session);
      Json response = make_ok();
      response.set("result", encode_tune_result(payload.result, payload.counters));
      return response;
    }
    if (op == "close") {
      manager_->close(require_string(request, "session"));
      return make_ok();
    }
    if (op == "status") {
      const StatusReport report = manager_->status();
      Json response = make_ok();
      response.set("server", config_.name);
      response.set("version", static_cast<std::uint64_t>(kProtocolVersion));
      response.set("live_sessions", static_cast<std::uint64_t>(report.live_sessions));
      response.set("opened", static_cast<std::uint64_t>(report.opened));
      response.set("closed", static_cast<std::uint64_t>(report.closed));
      response.set("evicted", static_cast<std::uint64_t>(report.evicted));
      response.set("finished", static_cast<std::uint64_t>(report.finished));
      response.set("asks", static_cast<std::uint64_t>(report.asks));
      response.set("tells", static_cast<std::uint64_t>(report.tells));
      response.set("tallies", encode_counters(report.tallies));
      {
        repro::MutexLock lock(mutex_);
        response.set("draining", draining_ || stopping_);
        response.set("active_connections",
                     static_cast<std::uint64_t>(connections_.size()));
        response.set("connections_accepted",
                     static_cast<std::uint64_t>(connections_accepted_));
      }
      Json sessions = Json::array();
      for (const SessionInfo& info : manager_->sessions()) {
        Json entry = Json::object();
        entry.set("id", info.id);
        entry.set("algorithm", info.algorithm);
        entry.set("budget", static_cast<std::uint64_t>(info.budget));
        entry.set("asks", static_cast<std::uint64_t>(info.asks));
        entry.set("tells", static_cast<std::uint64_t>(info.tells));
        entry.set("finished", info.finished);
        entry.set("idle_ms", static_cast<std::uint64_t>(info.idle.count()));
        sessions.push_back(std::move(entry));
      }
      response.set("sessions", std::move(sessions));
      return response;
    }
    return make_error(ErrorCode::kUnknownOp, "unknown op: " + op);
  } catch (const ProtocolError& error) {
    return make_error(error.code, error.what());
  } catch (const JsonError& error) {
    return make_error(ErrorCode::kBadRequest, error.what());
  } catch (const std::exception& error) {
    return make_error(ErrorCode::kInternal, error.what());
  }
}

}  // namespace repro::service
