#pragma once
// WAL shipping: hot-standby replication for `tuned` shards.
//
// A primary shard with --ship-to configured streams every session WAL
// record (open / tell / close / evict) to a follower daemon over the
// ordinary JSON-lines protocol (ops ship_open / ship_tell / ship_close /
// ship_evict, advertised as the "cluster" hello feature). The follower
// appends each record to its *own* fsync'd per-session journal and applies
// it through an unmodified AskTellSession — deterministic search means the
// standby holds the exact same session state as the primary, RNG stream
// included. Promotion is therefore instant: a promoted standby just starts
// answering normal session ops on sessions that are already live.
//
// Durability contract. A ship call is synchronous: the primary's tell ack
// leaves only after (a) the local journal fsync and (b) the follower's ack
// — and the follower acks only after its own fsync + apply. While the link
// is up, an acknowledged tell exists on two disks and in two live
// sessions, so a SIGKILL'd primary loses nothing. When the link is down
// the primary keeps serving (availability over replication) and reports
// itself degraded via `status`; every successful (re)connect first
// re-ships all live journals from the state dir ("resync"), and the
// follower acknowledges duplicates idempotently (per-session seq
// watermark), so a follower that crashed, tore its journal tail, or missed
// records while partitioned converges back to the primary's state.
//
// Fencing. A follower that has been promoted answers ship ops with the
// typed error wrong_role; the shipper then fences itself permanently — a
// stale primary must never again be treated as replicated, and the router
// has already stopped routing to it.

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/socket.hpp"
#include "common/thread_annotations.hpp"
#include "service/protocol.hpp"

namespace repro::service {

struct ShipConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 disables shipping entirely
  /// The primary's own journal directory — the resync source. Shipping
  /// requires durability: without local journals there is nothing to
  /// re-ship after a link outage.
  std::string state_dir;
  /// Per-RPC deadline: connect, handshake, and each ship call must finish
  /// within this bound or the link is declared down (a hung follower must
  /// not park the primary's tell path forever).
  std::chrono::milliseconds rpc_timeout{5000};
  /// Minimum spacing between reconnect attempts while the link is down, so
  /// a dead follower costs one connect() per interval, not per tell.
  std::chrono::milliseconds reconnect_interval{250};
  std::string name = "wal_ship/1";
};

/// Replication-side tallies (surfaced through the `status` endpoint).
struct ShipCounters {
  std::size_t records_shipped = 0;    ///< acked ship RPCs (all kinds)
  std::size_t duplicates_acked = 0;   ///< follower answered {"duplicate":true}
  std::size_t resyncs = 0;            ///< full journal re-ships performed
  std::size_t reconnects = 0;         ///< successful connects after the first
  std::size_t failures = 0;           ///< RPCs that failed (link went down)
};

/// Primary-side shipper. Thread-safe: ship calls from concurrent session
/// ops are serialized on one link (per-session record order is already
/// guaranteed by the session protocol; the mutex only interleaves
/// sessions). Every method is non-throwing: replication failure degrades
/// the shard, it never fails the client's request.
class WalShipper {
 public:
  explicit WalShipper(ShipConfig config);
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Each returns true when the follower acked (record is on two disks).
  bool ship_open(const std::string& id, const std::string& token,
                 const OpenParams& params);
  bool ship_tell(const std::string& id, std::uint64_t seq,
                 const tuner::Configuration& config,
                 const tuner::Evaluation& evaluation);
  bool ship_close(const std::string& id);
  bool ship_evict(const std::string& id);

  /// Replicate a store_import seed batch to the follower's store (store
  /// ops answer on any role, so the record rides the same link as ship_*).
  /// Idempotent on redelivery: the follower's store dedups rows.
  bool ship_store_import(const std::vector<store::TenantSnapshot>& tenants);

  /// Link currently established and not fenced. False = the shard is
  /// degraded (serving without a live standby).
  [[nodiscard]] bool connected() const;
  /// Permanently stopped after the follower reported wrong_role (it was
  /// promoted; this process is a stale primary).
  [[nodiscard]] bool fenced() const;
  [[nodiscard]] ShipCounters counters() const;

  /// Force a connect (+ resync) attempt now, ignoring the reconnect
  /// backoff window. Returns connected(). Used at startup and by tests.
  bool connect_now();

 private:
  struct Link;  // Socket + FrameReader bundle (defined in wal_ship.cpp)

  /// Ensure the link is up, resyncing journals on a fresh connect.
  bool ensure_link(bool ignore_backoff) REQUIRES(mutex_);
  /// One RPC on the established link; tears the link down on failure.
  [[nodiscard]] std::optional<Json> call(const Json& request) REQUIRES(mutex_);
  /// Ship one record, transparently resync-retrying an unknown_session
  /// answer once (the follower restarted and lost a journal tail).
  bool ship(const Json& request) ;
  /// Re-ship every live journal in state_dir (duplicates acked).
  bool resync() REQUIRES(mutex_);

  const ShipConfig config_;
  mutable repro::Mutex mutex_;
  std::unique_ptr<Link> link_ GUARDED_BY(mutex_);
  bool fenced_ GUARDED_BY(mutex_) = false;
  bool ever_connected_ GUARDED_BY(mutex_) = false;
  /// Reconnect pacing; never feeds tuning results.
  std::chrono::steady_clock::time_point last_attempt_ GUARDED_BY(mutex_);
  bool attempted_ GUARDED_BY(mutex_) = false;
  ShipCounters counters_ GUARDED_BY(mutex_);
};

}  // namespace repro::service
