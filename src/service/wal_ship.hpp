#pragma once
// WAL shipping: hot-standby replication for `tuned` shards.
//
// A primary shard with --ship-to configured streams every session WAL
// record (open / tell / close / evict) to a follower daemon over the
// ordinary JSON-lines protocol (ops ship_open / ship_tell / ship_close /
// ship_evict, advertised as the "cluster" hello feature). The follower
// appends each record to its *own* fsync'd per-session journal and applies
// it through an unmodified AskTellSession — deterministic search means the
// standby holds the exact same session state as the primary, RNG stream
// included. Promotion is therefore instant: a promoted standby just starts
// answering normal session ops on sessions that are already live.
//
// Durability contract. A ship call is synchronous: the primary's tell ack
// leaves only after (a) the local journal fsync and (b) the follower's ack
// — and the follower acks only after its own fsync + apply. While the link
// is up, an acknowledged tell exists on two disks and in two live
// sessions, so a SIGKILL'd primary loses nothing. When the link is down
// the primary keeps serving (availability over replication) and reports
// itself degraded via `status`; every successful (re)connect first
// re-ships all live journals from the state dir ("resync"), and the
// follower acknowledges duplicates idempotently (per-session seq
// watermark), so a follower that crashed, tore its journal tail, or missed
// records while partitioned converges back to the primary's state.
//
// Catch-up state machine. The link is one of:
//
//   down ──connect──▶ catching_up ──resync + digest gate──▶ hot
//     ▲                   │  ▲                                │
//     └── RPC failure ────┘  └──────── link loss ─────────────┘
//   (fenced is terminal until retarget())
//
// A fresh link is *catching up* while the resync re-ships every live
// journal and (when a results store is attached) a full store snapshot.
// It flips *hot* only once the watermark gap is closed — every journaled
// record acked — and the follower's ResultsStore::digest() equals the
// local one. Live records ship during catch-up too (they serialize behind
// the resync on the link mutex), so the gap only shrinks. A re-seeded
// follower killed mid-catch-up resumes from its per-session seq
// watermarks on the next redial: duplicates are acked idempotently, never
// re-applied.
//
// Re-seeding. retarget() points the shipper at a replacement follower
// (clearing a fence), which is how a promoted primary regains a standby —
// either by operator action or automatically via the router's `reseed`
// wire op. A background redial thread keeps re-dialing a lost follower on
// the reconnect interval so re-seeding needs no live client traffic to
// make progress.
//
// Fencing. A follower that has been promoted answers ship ops with the
// typed error wrong_role (its hello also advertises role "primary"); the
// shipper then fences itself — a stale primary must never again be
// treated as replicated. The fence holds until retarget(): the deposed
// primary demotes itself, wipes its divergent tail, and rejoins as the
// new standby (server.cpp auto-rejoin).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "common/socket.hpp"
#include "common/thread_annotations.hpp"
#include "service/protocol.hpp"
#include "store/results_store.hpp"

namespace repro::service {

struct ShipConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 disables shipping entirely
  /// The primary's own journal directory — the resync source. Shipping
  /// requires durability: without local journals there is nothing to
  /// re-ship after a link outage.
  std::string state_dir;
  /// Per-RPC deadline: connect, handshake, and each ship call must finish
  /// within this bound or the link is declared down (a hung follower must
  /// not park the primary's tell path forever).
  std::chrono::milliseconds rpc_timeout{5000};
  /// Minimum spacing between reconnect attempts while the link is down, so
  /// a dead follower costs one connect() per interval, not per tell. Also
  /// the redial thread's cadence.
  std::chrono::milliseconds reconnect_interval{250};
  /// Rows per store_import frame when resync ships the store snapshot.
  std::size_t store_page_rows = 2048;
  std::string name = "wal_ship/1";
};

/// Observable link state (lock-free; safe to read while a resync holds the
/// shipper mutex). kDisabled = no target configured (port 0).
enum class ShipState { kDisabled, kDown, kCatchingUp, kHot, kFenced };

[[nodiscard]] const char* to_string(ShipState state) noexcept;

/// Replication-side tallies (surfaced through the `status` endpoint).
struct ShipCounters {
  std::size_t records_shipped = 0;    ///< acked ship RPCs (all kinds)
  std::size_t duplicates_acked = 0;   ///< follower answered {"duplicate":true}
  std::size_t resyncs = 0;            ///< full journal re-ships performed
  std::size_t reconnects = 0;         ///< successful connects after the first
  std::size_t failures = 0;           ///< RPCs that failed (link went down)
  std::size_t retargets = 0;          ///< retarget() calls (re-seed attempts)
  std::size_t store_rows_resynced = 0;  ///< snapshot rows shipped by resyncs
};

/// Primary-side shipper. Thread-safe: ship calls from concurrent session
/// ops are serialized on one link (per-session record order is already
/// guaranteed by the session protocol; the mutex only interleaves
/// sessions). Every method is non-throwing: replication failure degrades
/// the shard, it never fails the client's request.
class WalShipper {
 public:
  /// `store` (optional) is the primary's results store: resync then ships
  /// a full snapshot and gates the hot flip on digest equality with the
  /// follower. Pass nullptr to skip the store leg (journal-only resync).
  explicit WalShipper(ShipConfig config,
                      std::shared_ptr<store::ResultsStore> store = nullptr);
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Each returns true when the follower acked (record is on two disks).
  bool ship_open(const std::string& id, const std::string& token,
                 const OpenParams& params);
  bool ship_tell(const std::string& id, std::uint64_t seq,
                 const tuner::Configuration& config,
                 const tuner::Evaluation& evaluation);
  bool ship_close(const std::string& id);
  bool ship_evict(const std::string& id);

  /// Replicate a store_import seed batch to the follower's store (store
  /// ops answer on any role, so the record rides the same link as ship_*).
  /// Idempotent on redelivery: the follower's store dedups rows.
  bool ship_store_import(const std::vector<store::TenantSnapshot>& tenants);

  /// Link currently established and not fenced. False = the shard is
  /// degraded (serving without a live standby).
  [[nodiscard]] bool connected() const;
  /// Stopped after the follower reported wrong_role (it was promoted; this
  /// process is a stale primary). Cleared only by retarget().
  [[nodiscard]] bool fenced() const;
  /// A ship target is configured (port != 0).
  [[nodiscard]] bool enabled() const;
  /// Lock-free link state — readable even while a resync is in flight.
  [[nodiscard]] ShipState state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  /// Resync complete and digest gate passed: the follower is a promotable
  /// hot standby.
  [[nodiscard]] bool hot() const noexcept { return state() == ShipState::kHot; }
  [[nodiscard]] ShipCounters counters() const;
  /// Current follower endpoint (changes on retarget()).
  [[nodiscard]] std::pair<std::string, std::uint16_t> target() const;

  /// Point the shipper at a replacement follower: tears down the link,
  /// clears a fence, and swaps host/port (port 0 disables shipping — the
  /// demoted-standby configuration). The next connect re-seeds the new
  /// follower via the ordinary resync path. Does not connect by itself;
  /// call connect_now() or let the redial thread pick it up.
  void retarget(const std::string& host, std::uint16_t port);

  /// Force a connect (+ resync) attempt now, ignoring the reconnect
  /// backoff window. Returns connected(). Used at startup and by tests.
  bool connect_now();

 private:
  struct Link;  // Socket + FrameReader bundle (defined in wal_ship.cpp)

  /// Ensure the link is up, resyncing journals on a fresh connect.
  bool ensure_link(bool ignore_backoff) REQUIRES(mutex_);
  /// One RPC on the established link; tears the link down on failure.
  [[nodiscard]] std::optional<Json> call(const Json& request) REQUIRES(mutex_);
  /// Ship one record, transparently resync-retrying an unknown_session
  /// answer once (the follower restarted and lost a journal tail).
  bool ship(const Json& request) ;
  /// Store snapshot, then every live journal in state_dir (duplicates
  /// acked), then the digest gate. Snapshot-first keeps the follower's
  /// per-tenant row order identical to ours (the digest is order-chained).
  bool resync() REQUIRES(mutex_);
  /// Ship the local store snapshot page by page.
  bool resync_store() REQUIRES(mutex_);
  /// Compare follower store digest with ours. True when equal (or no store
  /// is attached / the follower has none — nothing to gate on).
  bool store_digest_gate() REQUIRES(mutex_);
  /// Redial thread body: re-dials a lost (non-fenced) link on the
  /// reconnect cadence so re-seeding progresses without client traffic.
  void redial_loop();

  ShipConfig config_ GUARDED_BY(mutex_);  ///< host/port mutate on retarget()
  const std::shared_ptr<store::ResultsStore> store_;
  mutable repro::Mutex mutex_;
  std::unique_ptr<Link> link_ GUARDED_BY(mutex_);
  bool fenced_ GUARDED_BY(mutex_) = false;
  bool ever_connected_ GUARDED_BY(mutex_) = false;
  /// Reconnect pacing; never feeds tuning results.
  std::chrono::steady_clock::time_point last_attempt_ GUARDED_BY(mutex_);
  bool attempted_ GUARDED_BY(mutex_) = false;
  ShipCounters counters_ GUARDED_BY(mutex_);
  std::atomic<ShipState> state_{ShipState::kDown};

  /// Redial machinery. The thread parks on redial_cv_ so destruction is
  /// prompt; infrastructure timing, never feeds tuning results.
  std::thread redial_thread_;  // NOLINT(reprolint-raw-thread)
  std::mutex redial_mutex_;
  std::condition_variable redial_cv_;
  bool stopping_ = false;  ///< guarded by redial_mutex_
};

}  // namespace repro::service
