#pragma once
// `tunelb`: session-affine front router for a sharded `tuned` cluster.
//
// Topology. N shards, each a primary `tuned` plus an optional hot standby
// the primary ships its WAL to (service/wal_ship.hpp). The router is the
// only endpoint clients need: it speaks the same JSON-lines protocol,
// places each new session on a shard, and forwards session ops by id.
//
// Placement. Consistent hashing over a ring of virtual nodes
// (ring_replicas per shard, FNV-1a over "shard-<idx>#<replica>"). The
// placement key is the open's idempotency token when present — a retried
// open lands on the same shard even through a different router — else a
// router-local anonymous counter. Down shards are skipped by walking the
// ring; when every shard is down the open is answered retry_later.
//
// Naming. Session ids returned to clients are namespaced "<shard>:<sid>"
// so routing is stateless: any router (including one that just restarted)
// can route any session op without a session table.
//
// Health. A prober thread walks the shards every probe_interval and
// assigns each a typed state: kUp (responding, replication healthy or
// off), kDegraded (responding, but shipping to its standby is down or the
// shard reports fenced/draining), kDown (unreachable for
// probe_failures_before_down consecutive probes). A shard observed down —
// by the prober or synchronously by a forwarding failure — with a standby
// configured is failed over: the standby gets {"op":"promote"} and
// becomes the shard's endpoint (the old primary, if it ever comes back,
// fences itself on the standby's wrong_role answers).
//
// Forwarding & retry. Each client connection owns its own downstream
// clients (per shard, tagged with the shard's endpoint generation), so a
// blocking ask parks only its own connection. A transport failure
// triggers fail-over, then the request is retried on the shard's current
// endpoint — but only when the request is idempotent (open with token,
// tell with seq, ask with resume, result/status/ping). Non-idempotent
// requests surface the transport error to the client, which owns the
// retry decision. retry_later pushback from a shard is propagated
// verbatim, hint included.
//
// Self-healing. A failover consumes the shard's standby, leaving it
// un-replicated. The prober closes that gap automatically: for an up
// shard with no standby it looks for a replacement follower — the
// deposed ex-primary once it has demoted itself back to standby
// (tuned --auto-rejoin), else the first unused endpoint of the spares
// pool that answers status with role "standby" — and tells the shard's
// primary {"op":"reseed","host":...,"port":...}. The primary resyncs its
// store + journals into the follower and flips it hot; the router then
// records it as the shard's standby, ready for the next failover. A
// shard whose shipper is still catching up reports kDegraded until the
// resync completes.
//
// Tenancy. The client's hello may carry a tenant identity; the router
// re-sends it on every downstream hello so per-tenant quotas are
// enforced by the shards exactly as if the client had dialed them
// directly. Cluster status merges the shards' per-tenant quota tallies.

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"

namespace repro::service {

enum class ShardHealth { kUp, kDegraded, kDown };

[[nodiscard]] const char* to_string(ShardHealth health) noexcept;

/// One shard's addresses. standby_port == 0 means no standby (a failure
/// of the primary is then an outage for that shard's sessions).
struct ShardEndpoints {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  std::string standby_host = "127.0.0.1";
  std::uint16_t standby_port = 0;
};

/// A warm spare `tuned --standby` not yet attached to any shard. The
/// prober hands spares out (first unused, config order) to shards whose
/// standby was consumed by a failover.
struct SpareEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::vector<ShardEndpoints> shards;
  /// Pool of idle standby daemons the prober may attach as replacement
  /// followers after a failover. Each spare is used at most once.
  std::vector<SpareEndpoint> spares;
  std::size_t connection_threads = 8;
  /// Accept/read timeout tick (shutdown latency).
  std::chrono::milliseconds poll_interval{200};
  /// Health-probe cadence; <=0 disables the prober thread (failover then
  /// happens only synchronously, on forwarding failures).
  std::chrono::milliseconds probe_interval{500};
  /// Per-probe RPC budget (connect + hello + status).
  std::chrono::milliseconds probe_timeout{2000};
  /// Consecutive failed probes before a shard is declared kDown (and, with
  /// a standby, failed over). >=1.
  std::size_t probe_failures_before_down = 2;
  /// Virtual nodes per shard on the placement ring.
  std::size_t ring_replicas = 64;
  /// Socket send timeout towards clients.
  std::chrono::milliseconds write_timeout{10000};
  std::string name = "tunelb/1";
};

/// Snapshot of one shard's routing state (status endpoint + tests).
struct ShardSnapshot {
  std::size_t index = 0;
  std::string host;
  std::uint16_t port = 0;
  ShardHealth health = ShardHealth::kUp;
  bool has_standby = false;
  std::size_t promotions = 0;   ///< failovers performed on this shard
  std::size_t reseeds = 0;      ///< replacement standbys attached post-failover
  std::uint64_t generation = 0; ///< bumps on every endpoint change
  std::size_t sessions_placed = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind, listen, spawn the accept + prober threads. Throws
  /// std::runtime_error when config is unusable (no shards) or the port
  /// cannot be bound.
  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept;

  [[nodiscard]] std::vector<ShardSnapshot> shards() const;
  /// Force one synchronous probe pass (tests; the prober thread does the
  /// same on its own cadence).
  void probe_now();

 private:
  struct ShardState {
    ShardEndpoints endpoints;       ///< current primary in the primary_* slots
    ShardHealth health = ShardHealth::kUp;
    bool standby_available = false; ///< a standby remains to fail over to
    std::size_t promotions = 0;
    std::size_t reseeds = 0;
    /// Endpoint of the primary a failover deposed. The prober re-probes it:
    /// once it answers status with role "standby" (it demoted and rejoined),
    /// it becomes the preferred re-seed candidate — its journals need only a
    /// catch-up, and no spare is consumed. Port 0 = none remembered.
    std::string deposed_host;
    std::uint16_t deposed_port = 0;
    /// The primary answered reseed with a typed refusal (e.g. it has no
    /// state dir to resync from) — permanent for this generation, so the
    /// prober stops asking. Cleared on the next failover.
    bool reseed_unsupported = false;
    std::uint64_t generation = 0;
    std::size_t consecutive_probe_failures = 0;
    std::size_t sessions_placed = 0;
  };

  /// Downstream connections owned by one client connection; `generation`
  /// tags which endpoint the cached client talks to.
  struct DownstreamSlot {
    std::unique_ptr<Client> client;
    std::uint64_t generation = 0;
  };
  /// Per-client-connection forwarding state: cached downstream clients
  /// plus the tenant identity from the client's hello (re-sent on every
  /// downstream hello so shards enforce quotas against the real tenant).
  struct Downstreams {
    std::unordered_map<std::size_t, DownstreamSlot> slots;
    std::string tenant;
  };

  void accept_loop();
  void probe_loop();
  void handle_connection(std::uint64_t id);
  [[nodiscard]] Json dispatch(const Json& request, Downstreams& downstreams,
                              bool* hello_done, bool* fatal);
  /// Forward `request` (session already rewritten) to `shard`, with
  /// failover + single retry when `idempotent`.
  [[nodiscard]] Json forward(std::size_t shard, Json request, bool idempotent,
                             Downstreams& downstreams);
  [[nodiscard]] Json route_open(const Json& request, Downstreams& downstreams);
  /// Broadcast a results-store op to every shard primary and merge the
  /// replies (imports are dedup'd server-side, so the fan-out is replay-safe).
  [[nodiscard]] Json route_store(const std::string& op, const Json& request,
                                 Downstreams& downstreams);
  /// Paged export across shards. The cursor is "<shard>|<daemon cursor>":
  /// shards are drained sequentially, each reply carries at most one
  /// daemon page, and the composite cursor resumes mid-shard.
  [[nodiscard]] Json route_store_export(const Json& request,
                                        Downstreams& downstreams);
  [[nodiscard]] Json aggregate_status();

  /// Pick the open-placement shard for `key` by walking the ring past down
  /// shards. nullopt when every shard is down.
  [[nodiscard]] std::optional<std::size_t> place(const std::string& key) const;

  /// Current endpoint + generation for a shard (what a downstream client
  /// should dial).
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] Endpoint endpoint(std::size_t shard) const;

  /// React to an observed failure of `shard` at endpoint generation
  /// `observed_generation`: re-probe, and when the primary is really dead,
  /// promote the standby (if any) and swap endpoints. Returns true when
  /// the shard has a (possibly new) endpoint worth retrying against.
  bool fail_over(std::size_t shard, std::uint64_t observed_generation);

  /// One health probe of one shard; updates health/counters. Promotes via
  /// fail_over() when the down threshold is crossed; re-seeds a missing
  /// standby via maybe_reseed() when the shard is up without one.
  void probe_shard(std::size_t shard);

  /// Attach a replacement follower to an up shard that lost its standby:
  /// probe the deposed ex-primary (preferred) then unused spares for a
  /// daemon answering role "standby", and tell the shard's primary to
  /// {"op":"reseed"} it. `status` is the probe reply that just classified
  /// the shard — its ship_state/ship_target dedup in-flight resyncs and
  /// adopt a follower whose reseed reply was lost to a timeout.
  void maybe_reseed(std::size_t shard, const Endpoint& primary,
                    const Json& status);
  /// Record `host:port` as `shard`'s standby (post-reseed), consuming the
  /// matching spare / clearing the deposed memory. Generation-checked.
  void adopt_standby(std::size_t shard, std::uint64_t observed_generation,
                     const std::string& host, std::uint16_t port);

  RouterConfig config_;
  std::uint16_t port_ = 0;
  ListenSocket listener_;
  std::unique_ptr<ThreadPool> pool_;
  /// Dedicated accept + prober threads by design: pool workers handle
  /// (blocking) client connections and must not starve accept or health.
  std::thread accept_thread_;  // NOLINT(reprolint-raw-thread)
  std::thread probe_thread_;   // NOLINT(reprolint-raw-thread)

  mutable repro::Mutex mutex_;
  std::vector<ShardState> shard_states_ GUARDED_BY(mutex_);
  /// spare_used_[i] — config_.spares[i] has been handed to a shard (a
  /// spare is attached at most once; it then lives as that shard's
  /// standby and, after a later failover, its primary).
  std::vector<bool> spare_used_ GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::shared_ptr<Socket>> connections_
      GUARDED_BY(mutex_);
  std::uint64_t next_connection_id_ GUARDED_BY(mutex_) = 1;
  std::uint64_t anon_opens_ GUARDED_BY(mutex_) = 0;
  std::size_t reroutes_ GUARDED_BY(mutex_) = 0;  ///< idempotent retries after failover
  bool started_ GUARDED_BY(mutex_) = false;
  bool stopping_ GUARDED_BY(mutex_) = false;

  /// Placement ring: (hash, shard index), sorted by hash. Built once in
  /// start(); immutable afterwards (down shards are skipped at lookup).
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

/// Split a namespaced "<shard>:<sid>" session id. Returns nullopt when the
/// prefix is missing or not a valid shard index below `shard_count`.
[[nodiscard]] std::optional<std::pair<std::size_t, std::string>> split_session_id(
    const std::string& id, std::size_t shard_count);

/// FNV-1a 64-bit (placement hashing; stable across platforms/runs).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

}  // namespace repro::service
