// `tune_client` — drive a complete remote tuning study against a running
// `tuned` daemon over loopback. The client owns the objective (the simgpu
// benchmark model); the daemon owns the search. With --verify the same
// seeds are replayed through an in-process minimize() and the results are
// required to be byte-identical — the acceptance check for the ask/tell
// inversion.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness/context.hpp"
#include "service/client.hpp"
#include "tuner/registry.hpp"

namespace {

// Exact comparison, NaN-tolerant: two results match only when every field
// (including the bit pattern of best_value) agrees.
bool same_result(const repro::tuner::TuneResult& a, const repro::tuner::TuneResult& b) {
  if (a.best_config != b.best_config) return false;
  if (a.found_valid != b.found_valid) return false;
  if (a.evaluations_used != b.evaluations_used) return false;
  return std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

constexpr const char* kCsvHeader =
    "algorithm,budget,seed,best_value,best_config,evaluations_used,found_valid,"
    "final_us";

// Complete (newline-terminated — rows are appended whole and flushed, so a
// kill at a cell boundary leaves only complete lines) data rows already in
// the campaign CSV. Same torn-tail rule as the session WAL: an unterminated
// final line is dropped and its cell reruns.
std::vector<std::string> completed_rows(const std::string& path) {
  std::vector<std::string> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    // getline sets eofbit when the file ends before the delimiter.
    if (in.eof()) break;
    if (first) {
      first = false;
      continue;  // header
    }
    if (!line.empty()) rows.push_back(line);
  }
  return rows;
}

std::string row_algorithm(const std::string& row) {
  const std::size_t comma = row.find(',');
  return comma == std::string::npos ? row : row.substr(0, comma);
}

std::string format_config(const repro::tuner::Configuration& config) {
  std::ostringstream out;
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i > 0) out << ' ';
    out << config[i];
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("tune_client",
                "Remote tuning study over the tuned JSON-lines protocol");
  cli.add_option("host", "daemon host", "127.0.0.1");
  cli.add_option("port", "daemon port (required; see `tuned: ready port=`)", "0");
  cli.add_option("benchmark", "imagecl benchmark name", "mandelbrot");
  cli.add_option("arch", "simulated architecture name", "rtxtitan");
  cli.add_option("algorithms", "comma list of algorithm ids ('paper' = all five)",
                 "paper");
  cli.add_option("budget", "evaluation budget per algorithm", "100");
  cli.add_option("seed", "master seed", "2022");
  cli.add_option("repeats", "final re-measurement repeats", "10");
  cli.add_flag("verify", "replay the same seeds in-process and require "
                         "byte-identical results");
  cli.add_option("save-csv",
                 "append one flushed CSV row per completed algorithm cell "
                 "(campaign checkpoint; empty disables)",
                 "");
  cli.add_flag("resume", "skip algorithm cells already recorded in --save-csv");
  cli.add_option("stop-after",
                 "exit cleanly after completing this many cells this run "
                 "(0 = all; simulates a kill at a cell boundary)",
                 "0");
  cli.add_option("retries",
                 "transport retries per request: reconnect + deterministic "
                 "backoff + idempotent replay (0 disables)",
                 "0");
  cli.add_option("heartbeat-ms",
                 "bound blocking ask/result waits and re-issue them, keeping "
                 "the connection live (0 disables)",
                 "0");
  cli.add_option("endpoints",
                 "comma-separated 'host:port' (or bare port) failover list; "
                 "every (re)connect walks it front-to-back deterministically "
                 "(overrides --host/--port)",
                 "");
  cli.add_flag("warm-start",
               "seed each search from the daemon's results-store history for "
               "this (benchmark, arch) tenant (needs a daemon started with "
               "--store-dir; a cold store falls back to the normal search)");
  cli.add_flag("store-stats",
               "print the daemon's results-store statistics and exit");
  if (!cli.parse(argc, argv)) return 2;

  if (cli.get_flag("warm-start") && cli.get_flag("verify")) {
    // A warm-started search sees prior history the in-process replay does
    // not, so byte-identity against minimize() is not a meaningful check.
    std::fprintf(stderr,
                 "tune_client: --warm-start and --verify are mutually "
                 "exclusive (the warm prior changes the trajectory)\n");
    return 2;
  }

  const auto port = static_cast<std::uint16_t>(cli.get_int("port"));
  std::vector<service::ClientConfig::Endpoint> endpoints;
  {
    const std::string text = cli.get("endpoints");
    std::string item;
    for (const char c : text + ",") {
      if (c != ',') {
        item.push_back(c);
        continue;
      }
      if (item.empty()) continue;
      service::ClientConfig::Endpoint endpoint;
      const std::size_t colon = item.rfind(':');
      const std::string port_text =
          colon == std::string::npos ? item : item.substr(colon + 1);
      if (colon != std::string::npos && colon > 0)
        endpoint.host = item.substr(0, colon);
      endpoint.port = static_cast<std::uint16_t>(
          std::strtoul(port_text.c_str(), nullptr, 10));
      if (endpoint.port == 0) {
        std::fprintf(stderr, "tune_client: bad --endpoints entry '%s'\n",
                     item.c_str());
        return 2;
      }
      endpoints.push_back(endpoint);
      item.clear();
    }
  }
  if (port == 0 && endpoints.empty()) {
    std::fprintf(stderr, "tune_client: --port or --endpoints is required\n%s",
                 cli.usage().c_str());
    return 2;
  }
  const std::size_t budget = static_cast<std::size_t>(cli.get_int("budget"));
  const auto master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::size_t repeats = static_cast<std::size_t>(cli.get_int("repeats"));

  std::vector<std::string> algorithms;
  const std::string algorithms_arg = cli.get("algorithms");
  if (algorithms_arg == "paper") {
    algorithms = tuner::paper_algorithms();
  } else {
    std::string token;
    for (const char c : algorithms_arg + ",") {
      if (c == ',') {
        if (!token.empty()) algorithms.push_back(token);
        token.clear();
      } else {
        token.push_back(c);
      }
    }
  }

  harness::BenchmarkContext context(
      imagecl::benchmark_by_name(cli.get("benchmark")),
      simgpu::arch_by_name(cli.get("arch")),
      /*dataset_size=*/0, master_seed);
  std::printf("tune_client: %s on %s, optimum %.1f us, budget %zu\n",
              cli.get("benchmark").c_str(), cli.get("arch").c_str(),
              context.optimum_us(), budget);

  service::ClientConfig client_config;
  client_config.host = cli.get("host");
  client_config.port = port;
  client_config.endpoints = std::move(endpoints);
  client_config.max_retries = static_cast<std::size_t>(cli.get_int("retries"));
  client_config.heartbeat_ms = static_cast<std::uint64_t>(cli.get_int("heartbeat-ms"));
  service::Client client(client_config);
  try {
    client.connect();
  } catch (const std::exception& error) {
    log_error("tune_client: {}", error.what());
    return 1;
  }

  if (cli.get_flag("store-stats")) {
    try {
      const Json stats = client.store_stats();
      const Json* enabled = stats.find("store_enabled");
      if (enabled == nullptr || !enabled->as_bool()) {
        std::printf("results store: disabled (start tuned with --store-dir)\n");
        client.disconnect();
        return 0;
      }
      const auto count = [&stats](const char* key) -> unsigned long long {
        const Json* field = stats.find(key);
        return field == nullptr ? 0ULL
                                : static_cast<unsigned long long>(field->as_uint64());
      };
      const Json* dir = stats.find("dir");
      std::printf("results store: %s\n",
                  dir != nullptr ? dir->as_string().c_str()
                                 : "(aggregated across shards)");
      std::printf("  live records   %llu across %llu tenants\n", count("records"),
                  count("tenants"));
      std::printf("  appends        %llu new, %llu deduplicated, %llu rejected\n",
                  count("appends"), count("duplicates"), count("rejected"));
      std::printf("  log            %llu lines, %llu bytes, %llu compactions\n",
                  count("log_records"), count("log_bytes"), count("compactions"));
      std::printf("  evictions      %llu (capacity FIFO)\n", count("evictions"));
      std::printf("  io errors      %llu\n", count("io_errors"));
      std::printf("  last load      %llu records%s\n", count("loaded_records"),
                  stats.find("torn_tail") != nullptr &&
                          stats.find("torn_tail")->as_bool()
                      ? " (torn tail dropped)"
                      : "");
      if (stats.find("digest") != nullptr) {
        std::printf("  digest         %016llx\n", count("digest"));
      } else if (const Json* shards = stats.find("shards");
                 shards != nullptr && shards->is_array()) {
        // Router-aggregated reply: digests are per shard (order-sensitive,
        // so a cluster-wide one would be meaningless).
        for (const Json& shard : shards->as_array()) {
          const Json* index = shard.find("shard");
          const Json* digest = shard.find("digest");
          std::printf("  digest         shard %llu: %016llx\n",
                      index == nullptr
                          ? 0ULL
                          : static_cast<unsigned long long>(index->as_uint64()),
                      digest == nullptr
                          ? 0ULL
                          : static_cast<unsigned long long>(digest->as_uint64()));
        }
      }
    } catch (const std::exception& error) {
      log_error("tune_client: store_stats failed: {}", error.what());
      return 1;
    }
    client.disconnect();
    return 0;
  }

  // Campaign checkpoint: one CSV row per finished algorithm cell, appended
  // whole and flushed so a kill between cells leaves only complete lines.
  // Resume rewrites the valid prefix first (the reattach-truncate rule the
  // session WAL uses) so a torn tail can never corrupt the next row.
  const std::string csv_path = cli.get("save-csv");
  std::set<std::string> done;
  std::FILE* csv = nullptr;
  if (!csv_path.empty()) {
    std::vector<std::string> kept;
    if (cli.get_flag("resume")) kept = completed_rows(csv_path);
    csv = std::fopen(csv_path.c_str(), "w");
    if (csv == nullptr) {
      log_error("tune_client: cannot open --save-csv {}", csv_path);
      return 1;
    }
    std::fprintf(csv, "%s\n", kCsvHeader);
    for (const std::string& row : kept) {
      std::fprintf(csv, "%s\n", row.c_str());
      done.insert(row_algorithm(row));
    }
    std::fflush(csv);
  }
  const std::size_t stop_after = static_cast<std::size_t>(cli.get_int("stop-after"));
  std::size_t cells_this_run = 0;

  bool all_verified = true;
  for (const std::string& id : algorithms) {
    if (done.count(id) != 0) {
      std::printf("%-6s already recorded, skipped (--resume)\n", id.c_str());
      continue;
    }
    // The algorithm RNG lives server-side; the objective RNG lives here.
    // Distinct streams per role keep the remote and in-process replays on
    // identical random sequences.
    const std::uint64_t algo_seed =
        seed_combine(master_seed, seed_from_string("algorithm:" + id));
    const std::uint64_t objective_seed =
        seed_combine(master_seed, seed_from_string("objective:" + id));

    service::OpenParams params;
    params.algorithm = id;
    params.budget = budget;
    params.seed = algo_seed;
    // Tenant identity rides every open: a store-enabled daemon records this
    // study's tells under it (and --warm-start reads them back).
    params.benchmark = cli.get("benchmark");
    params.arch = cli.get("arch");
    params.warm_start = cli.get_flag("warm-start");

    Rng objective_rng(objective_seed);
    const tuner::Objective objective = context.make_objective(objective_rng);
    service::Client::RemoteResult remote;
    try {
      remote = client.remote_minimize(params, objective);
    } catch (const std::exception& error) {
      log_error("tune_client: {} failed: {}", id, error.what());
      return 1;
    }

    Rng final_rng(seed_combine(master_seed, seed_from_string("final:" + id)));
    const double final_us = remote.result.found_valid
                                ? context.measure_repeated_us(remote.result.best_config,
                                                              final_rng, repeats)
                                : std::nan("");
    std::printf("%-6s best %.1f us  final %.1f us  (%zu evals, %zu faults)\n",
                id.c_str(), remote.result.best_value, final_us,
                remote.result.evaluations_used, remote.counters.faults());

    if (csv != nullptr) {
      // %.17g round-trips doubles exactly, so an interrupted-and-resumed
      // campaign CSV is byte-identical to an uninterrupted one.
      std::fprintf(csv, "%s,%zu,%llu,%.17g,%s,%zu,%d,%.17g\n", id.c_str(), budget,
                   static_cast<unsigned long long>(algo_seed),
                   remote.result.best_value,
                   format_config(remote.result.best_config).c_str(),
                   remote.result.evaluations_used,
                   remote.result.found_valid ? 1 : 0, final_us);
      std::fflush(csv);
    }
    ++cells_this_run;
    if (stop_after > 0 && cells_this_run >= stop_after) {
      std::printf("tune_client: stopping after %zu cell(s) (--stop-after)\n",
                  cells_this_run);
      if (csv != nullptr) std::fclose(csv);
      client.disconnect();
      return 0;
    }

    if (cli.get_flag("verify")) {
      Rng algo_rng(algo_seed);
      Rng replay_rng(objective_seed);
      const tuner::Objective replay = context.make_objective(replay_rng);
      tuner::Evaluator evaluator(context.space(), replay, budget);
      const tuner::TuneResult direct =
          tuner::make_algorithm(id)->minimize(context.space(), evaluator, algo_rng);
      const bool match = same_result(remote.result, direct);
      all_verified = all_verified && match;
      std::printf("       verify: %s\n", match ? "byte-identical to in-process minimize()"
                                               : "MISMATCH vs in-process minimize()");
    }
  }

  const Json status = client.status();
  const Json* tells = status.find("tells");
  std::printf("daemon: %zu sessions opened, %llu tells served\n",
              static_cast<std::size_t>(status.find("opened")->as_uint64()),
              tells != nullptr
                  ? static_cast<unsigned long long>(tells->as_uint64())
                  : 0ULL);
  if (csv != nullptr) std::fclose(csv);
  client.disconnect();
  if (cli.get_flag("verify") && !all_verified) {
    log_error("tune_client: verification FAILED");
    return 1;
  }
  return 0;
}
