// `tune_client` — drive a complete remote tuning study against a running
// `tuned` daemon over loopback. The client owns the objective (the simgpu
// benchmark model); the daemon owns the search. With --verify the same
// seeds are replayed through an in-process minimize() and the results are
// required to be byte-identical — the acceptance check for the ask/tell
// inversion.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness/context.hpp"
#include "service/client.hpp"
#include "tuner/registry.hpp"

namespace {

// Exact comparison, NaN-tolerant: two results match only when every field
// (including the bit pattern of best_value) agrees.
bool same_result(const repro::tuner::TuneResult& a, const repro::tuner::TuneResult& b) {
  if (a.best_config != b.best_config) return false;
  if (a.found_valid != b.found_valid) return false;
  if (a.evaluations_used != b.evaluations_used) return false;
  return std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("tune_client",
                "Remote tuning study over the tuned JSON-lines protocol");
  cli.add_option("host", "daemon host", "127.0.0.1");
  cli.add_option("port", "daemon port (required; see `tuned: ready port=`)", "0");
  cli.add_option("benchmark", "imagecl benchmark name", "mandelbrot");
  cli.add_option("arch", "simulated architecture name", "rtxtitan");
  cli.add_option("algorithms", "comma list of algorithm ids ('paper' = all five)",
                 "paper");
  cli.add_option("budget", "evaluation budget per algorithm", "100");
  cli.add_option("seed", "master seed", "2022");
  cli.add_option("repeats", "final re-measurement repeats", "10");
  cli.add_flag("verify", "replay the same seeds in-process and require "
                         "byte-identical results");
  if (!cli.parse(argc, argv)) return 2;

  const auto port = static_cast<std::uint16_t>(cli.get_int("port"));
  if (port == 0) {
    std::fprintf(stderr, "tune_client: --port is required\n%s", cli.usage().c_str());
    return 2;
  }
  const std::size_t budget = static_cast<std::size_t>(cli.get_int("budget"));
  const auto master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::size_t repeats = static_cast<std::size_t>(cli.get_int("repeats"));

  std::vector<std::string> algorithms;
  const std::string algorithms_arg = cli.get("algorithms");
  if (algorithms_arg == "paper") {
    algorithms = tuner::paper_algorithms();
  } else {
    std::string token;
    for (const char c : algorithms_arg + ",") {
      if (c == ',') {
        if (!token.empty()) algorithms.push_back(token);
        token.clear();
      } else {
        token.push_back(c);
      }
    }
  }

  harness::BenchmarkContext context(
      imagecl::benchmark_by_name(cli.get("benchmark")),
      simgpu::arch_by_name(cli.get("arch")),
      /*dataset_size=*/0, master_seed);
  std::printf("tune_client: %s on %s, optimum %.1f us, budget %zu\n",
              cli.get("benchmark").c_str(), cli.get("arch").c_str(),
              context.optimum_us(), budget);

  service::ClientConfig client_config;
  client_config.host = cli.get("host");
  client_config.port = port;
  service::Client client(client_config);
  try {
    client.connect();
  } catch (const std::exception& error) {
    log_error("tune_client: {}", error.what());
    return 1;
  }

  bool all_verified = true;
  for (const std::string& id : algorithms) {
    // The algorithm RNG lives server-side; the objective RNG lives here.
    // Distinct streams per role keep the remote and in-process replays on
    // identical random sequences.
    const std::uint64_t algo_seed =
        seed_combine(master_seed, seed_from_string("algorithm:" + id));
    const std::uint64_t objective_seed =
        seed_combine(master_seed, seed_from_string("objective:" + id));

    service::OpenParams params;
    params.algorithm = id;
    params.budget = budget;
    params.seed = algo_seed;

    Rng objective_rng(objective_seed);
    const tuner::Objective objective = context.make_objective(objective_rng);
    service::Client::RemoteResult remote;
    try {
      remote = client.remote_minimize(params, objective);
    } catch (const std::exception& error) {
      log_error("tune_client: {} failed: {}", id, error.what());
      return 1;
    }

    Rng final_rng(seed_combine(master_seed, seed_from_string("final:" + id)));
    const double final_us = remote.result.found_valid
                                ? context.measure_repeated_us(remote.result.best_config,
                                                              final_rng, repeats)
                                : std::nan("");
    std::printf("%-6s best %.1f us  final %.1f us  (%zu evals, %zu faults)\n",
                id.c_str(), remote.result.best_value, final_us,
                remote.result.evaluations_used, remote.counters.faults());

    if (cli.get_flag("verify")) {
      Rng algo_rng(algo_seed);
      Rng replay_rng(objective_seed);
      const tuner::Objective replay = context.make_objective(replay_rng);
      tuner::Evaluator evaluator(context.space(), replay, budget);
      const tuner::TuneResult direct =
          tuner::make_algorithm(id)->minimize(context.space(), evaluator, algo_rng);
      const bool match = same_result(remote.result, direct);
      all_verified = all_verified && match;
      std::printf("       verify: %s\n", match ? "byte-identical to in-process minimize()"
                                               : "MISMATCH vs in-process minimize()");
    }
  }

  const Json status = client.status();
  const Json* tells = status.find("tells");
  std::printf("daemon: %zu sessions opened, %llu tells served\n",
              static_cast<std::size_t>(status.find("opened")->as_uint64()),
              tells != nullptr
                  ? static_cast<unsigned long long>(tells->as_uint64())
                  : 0ULL);
  client.disconnect();
  if (cli.get_flag("verify") && !all_verified) {
    log_error("tune_client: verification FAILED");
    return 1;
  }
  return 0;
}
