#include "service/session_wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hpp"

namespace repro::service {
namespace {

/// EINTR-safe full write of one buffer to fd.
[[nodiscard]] bool write_fully(int fd, const char* data, std::size_t length) {
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::write(fd, data + done, length - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

/// fsync the directory containing `path` so a freshly created journal's
/// directory entry survives a crash (best effort; some filesystems refuse).
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

[[noreturn]] void wal_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("session wal " + path + ": " + what);
}

}  // namespace

SessionWal::~SessionWal() {
  if (fd_ >= 0) (void)::close(fd_);
}

std::unique_ptr<SessionWal> SessionWal::create(const std::string& path,
                                               const std::string& id,
                                               const std::string& token,
                                               const OpenParams& params) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    log_error("session wal: cannot create " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  sync_parent_dir(path);
  std::unique_ptr<SessionWal> wal(new SessionWal(fd, path));
  Json record = Json::object();
  record.set("wal", "open");
  record.set("v", static_cast<std::uint64_t>(1));
  record.set("id", id);
  if (!token.empty()) record.set("token", token);
  record.set("open", encode_open(params));
  if (!wal->append_line(record)) return nullptr;
  return wal;
}

std::unique_ptr<SessionWal> SessionWal::reattach(const std::string& path,
                                                 std::uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    log_error("session wal: cannot reattach " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  // Drop the torn tail (if any) before the first new append lands after it.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 || ::fsync(fd) != 0) {
    log_error("session wal: cannot truncate " + path + ": " + std::strerror(errno));
    (void)::close(fd);
    return nullptr;
  }
  return std::unique_ptr<SessionWal>(new SessionWal(fd, path));
}

bool SessionWal::append_line(const Json& record) {
  if (fd_ < 0) return false;
  std::string line = record.dump();
  line.push_back('\n');
  if (!write_fully(fd_, line.data(), line.size()) || ::fsync(fd_) != 0) {
    log_error("session wal: append failed for " + path_ + ": " + std::strerror(errno));
    (void)::close(fd_);
    fd_ = -1;  // stop retrying a dead journal on every subsequent record
    return false;
  }
  return true;
}

bool SessionWal::append_tell(std::uint64_t seq, const tuner::Configuration& config,
                             const tuner::Evaluation& evaluation) {
  Json record = Json::object();
  record.set("wal", "tell");
  record.set("seq", seq);
  record.set("config", encode_config(config));
  encode_evaluation_into(record, evaluation);
  return append_line(record);
}

bool SessionWal::append_close() {
  Json record = Json::object();
  record.set("wal", "close");
  return append_line(record);
}

bool SessionWal::append_evicted() {
  Json record = Json::object();
  record.set("wal", "evicted");
  return append_line(record);
}

WalSession load_session_wal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) wal_fail(path, "cannot open for reading");
  std::ostringstream whole;
  whole << in.rdbuf();
  const std::string text = whole.str();

  WalSession session;
  bool saw_open = false;
  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    const bool terminated = newline != std::string::npos;
    const std::string_view line(text.data() + offset,
                                (terminated ? newline : text.size()) - offset);
    const bool final_line = !terminated || newline + 1 == text.size();
    if (!terminated) {
      // Unterminated tail: the crash interrupted this append. Drop it.
      session.torn_tail = true;
      break;
    }
    Json record;
    try {
      record = Json::parse(line);
      if (!record.is_object()) throw JsonError("record is not an object");
      const std::string kind = require_string(record, "wal");
      if (kind == "open") {
        if (saw_open) throw std::runtime_error("duplicate open record");
        saw_open = true;
        session.id = require_string(record, "id");
        if (const Json* token = record.find("token")) session.token = token->as_string();
        session.open = decode_open(require(record, "open"));
      } else if (kind == "tell") {
        if (!saw_open) throw std::runtime_error("tell before open record");
        WalTell tell;
        tell.seq = require_uint(record, "seq");
        tell.config = decode_config(require(record, "config"));
        tell.evaluation = decode_evaluation(record);
        session.tells.push_back(std::move(tell));
      } else if (kind == "close") {
        session.closed = true;
      } else if (kind == "evicted") {
        session.evicted = true;
      } else {
        throw std::runtime_error("unknown record kind: " + kind);
      }
    } catch (const std::exception& error) {
      if (final_line) {
        // Torn tail variant two: the final line is complete but malformed
        // (torn mid-write then terminated by later garbage, or a partial
        // flush). Drop it, like results_io does for checkpoints.
        log_warn("session wal: dropping malformed final record in " + path + ": " +
                 error.what());
        session.torn_tail = true;
        break;
      }
      wal_fail(path, std::string("malformed interior record: ") + error.what());
    }
    offset = newline + 1;
    session.valid_bytes = offset;
    if (session.closed || session.evicted) break;  // terminal record
  }
  if (!saw_open) {
    // Includes the "header torn" case: a journal whose open record never
    // fully landed never acknowledged anything, so the session never
    // existed as far as any client knows.
    wal_fail(path, "no open record (torn header)");
  }
  return session;
}

std::string wal_path(const std::string& state_dir, const std::string& id) {
  return state_dir + "/" + id + ".wal";
}

std::vector<std::string> list_session_wals(const std::string& state_dir) {
  if (::mkdir(state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("state dir " + state_dir + ": " + std::strerror(errno));
  }
  DIR* dir = ::opendir(state_dir.c_str());
  if (dir == nullptr) {
    throw std::runtime_error("state dir " + state_dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> paths;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".wal") == 0) {
      paths.push_back(state_dir + "/" + name);
    }
  }
  (void)::closedir(dir);
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace repro::service
