// `tunelb` — session-affine front router for a sharded `tuned` cluster.
// Speaks the same JSON-lines protocol as `tuned`; places new sessions on
// shards by consistent hashing, forwards session ops by their
// "<shard>:<sid>" id prefix, health-probes shards, and fails a dead
// primary over to its hot standby. See docs/SERVICE.md ("Cluster").
//
// Shard syntax (--shards, comma-separated): "<primary>" or
// "<primary>/<standby>", each endpoint "host:port" or a bare loopback
// port. Example: --shards 7001/7101,7002/7102,7003

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "service/router.hpp"

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int signo) { g_signal.store(signo, std::memory_order_relaxed); }

bool parse_endpoint(const std::string& text, std::string* host,
                    std::uint16_t* port) {
  const std::size_t colon = text.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? text : text.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) return false;
  *port = static_cast<std::uint16_t>(value);
  if (colon != std::string::npos && colon > 0) *host = text.substr(0, colon);
  return true;
}

bool parse_spares(const std::string& text,
                  std::vector<repro::service::SpareEndpoint>* spares) {
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(begin, end - begin);
    begin = end + 1;
    if (!item.empty()) {
      repro::service::SpareEndpoint spare;
      if (!parse_endpoint(item, &spare.host, &spare.port)) return false;
      spares->push_back(spare);
    }
    if (end == text.size()) break;
  }
  return true;
}

bool parse_shards(const std::string& text,
                  std::vector<repro::service::ShardEndpoints>* shards) {
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    repro::service::ShardEndpoints endpoints;
    const std::size_t slash = item.find('/');
    const std::string primary =
        slash == std::string::npos ? item : item.substr(0, slash);
    if (!parse_endpoint(primary, &endpoints.primary_host,
                        &endpoints.primary_port))
      return false;
    if (slash != std::string::npos &&
        !parse_endpoint(item.substr(slash + 1), &endpoints.standby_host,
                        &endpoints.standby_port))
      return false;
    shards->push_back(endpoints);
    if (end == text.size()) break;
  }
  return !shards->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("tunelb",
                "Front router for a sharded tuned cluster (JSON-lines over "
                "TCP loopback)");
  cli.add_option("port", "listen port (0 = ephemeral, printed on startup)", "0");
  cli.add_option("shards",
                 "comma-separated shard list: '<primary>[/<standby>]', each "
                 "'host:port' or a bare loopback port",
                 "");
  cli.add_option("spares",
                 "comma-separated warm-spare standby endpoints the prober "
                 "may attach to a shard whose standby was consumed by a "
                 "failover ('host:port' or a bare loopback port each)",
                 "");
  cli.add_option("threads", "connection worker threads", "8");
  cli.add_option("probe-interval-ms",
                 "health-probe cadence (<=0 disables the prober thread)", "500");
  cli.add_option("probe-timeout-ms", "per-probe RPC budget", "2000");
  cli.add_option("probe-failures",
                 "consecutive failed probes before a shard is down", "2");
  if (!cli.parse(argc, argv)) return 2;

  service::RouterConfig config;
  config.port = static_cast<std::uint16_t>(cli.get_int("port"));
  config.connection_threads = static_cast<std::size_t>(cli.get_int("threads"));
  const long long probe_interval = cli.get_int("probe-interval-ms");
  config.probe_interval =
      std::chrono::milliseconds(probe_interval > 0 ? probe_interval : 0);
  config.probe_timeout = std::chrono::milliseconds(cli.get_int("probe-timeout-ms"));
  config.probe_failures_before_down =
      static_cast<std::size_t>(cli.get_int("probe-failures"));
  if (!parse_shards(cli.get("shards"), &config.shards)) {
    log_error("tunelb: --shards is required, e.g. --shards 7001/7101,7002");
    return 2;
  }
  if (!parse_spares(cli.get("spares"), &config.spares)) {
    log_error("tunelb: malformed --spares, e.g. --spares 7201,7202");
    return 2;
  }

  std::signal(SIGPIPE, SIG_IGN);

  service::Router router(config);
  try {
    router.start();
  } catch (const std::exception& error) {
    log_error("tunelb: {}", error.what());
    return 1;
  }
  // Machine-readable port line so wrappers can scrape an ephemeral port.
  std::printf("tunelb: ready port=%u\n", static_cast<unsigned>(router.port()));
  std::fflush(stdout);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  while (g_signal.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  log_info("tunelb: received signal {}, stopping",
           g_signal.load(std::memory_order_relaxed));
  router.stop();
  return 0;
}
