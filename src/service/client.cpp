#include "service/client.hpp"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/rng.hpp"

namespace repro::service {

ByteIo& Client::stream() noexcept {
  if (chaos_ != nullptr) return *chaos_;
  return socket_;
}

void Client::connect() {
  if (connected_) return;
  // Candidate order is deterministic: the endpoint list front-to-back (or
  // the single host/port). The first endpoint to both accept and complete
  // the hello handshake wins; a handshake-time transport failure moves on
  // to the next candidate, a typed refusal (e.g. version_mismatch) is the
  // server's verdict and propagates.
  std::vector<ClientConfig::Endpoint> candidates = config_.endpoints;
  if (candidates.empty()) candidates.push_back({config_.host, config_.port});
  std::string failures;
  for (std::size_t index = 0; index < candidates.size(); ++index) {
    const ClientConfig::Endpoint& endpoint = candidates[index];
    try {
      connect_one(endpoint.host, endpoint.port);
      endpoint_index_ = index;
      return;
    } catch (const ClientError& error) {
      if (!failures.empty()) failures += "; ";
      failures += error.what();
    }
  }
  throw ClientError(ClientError::Kind::kConnect,
                    "no endpoint reachable: " + failures);
}

void Client::connect_one(const std::string& host, std::uint16_t port) {
  try {
    socket_ = host == "127.0.0.1" ? Socket::connect_loopback(port)
                                  : Socket::connect_tcp(host, port);
  } catch (const std::exception& error) {
    throw ClientError(ClientError::Kind::kConnect,
                      "connect to " + host + ":" +
                          std::to_string(port) + " failed: " + error.what());
  }
  if (config_.chaos.enabled) {
    // Fresh injector per connection: fault placement is reproducible for a
    // given (chaos_seed, connect ordinal) yet differs across reconnects,
    // so a retry does not deterministically re-hit the same fault.
    chaos_ = std::make_unique<ChaosSocket>(
        socket_, config_.chaos, seed_combine(config_.chaos_seed, connect_count_));
  }
  ++connect_count_;
  if (connect_count_ > 1) ++reconnects_;
  reader_.emplace(stream());
  connected_ = true;
  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("version", static_cast<std::uint64_t>(kProtocolVersion));
  hello.set("client", config_.name);
  // Quota identity: the server stamps this into every open on the
  // connection (a per-request field could not be trusted).
  if (!config_.tenant.empty()) hello.set("tenant", config_.tenant);
  (void)call(hello);
}

void Client::disconnect() {
  if (!connected_) return;
  socket_.close();
  reader_.reset();
  chaos_.reset();
  connected_ = false;
}

ChaosCounters Client::chaos_counters() const noexcept {
  if (chaos_ == nullptr) return {};
  return chaos_->counters();
}

Json Client::call(const Json& request) {
  if (!connected_)
    throw ClientError(ClientError::Kind::kNotConnected, "client is not connected");
  if (!write_frame(stream(), request)) {
    disconnect();
    throw ClientError(ClientError::Kind::kSend,
                      "connection lost while sending request");
  }
  std::string line;
  while (true) {
    const FrameStatus status = reader_->next(&line);
    if (status == FrameStatus::kTimeout) continue;  // no read timeout set; defensive
    if (status == FrameStatus::kOk) break;
    disconnect();
    if (status == FrameStatus::kMidFrameEof) {
      throw ClientError(ClientError::Kind::kMidFrameEof,
                        "stream torn mid-frame while awaiting response");
    }
    throw ClientError(ClientError::Kind::kClosed,
                      "connection lost while awaiting response");
  }
  Json response;
  try {
    response = Json::parse(line);
  } catch (const JsonError& error) {
    disconnect();
    throw ClientError(ClientError::Kind::kMalformed,
                      std::string("malformed response frame: ") + error.what());
  }
  const bool ok = require_bool(response, "ok");
  if (!ok) {
    const std::string code_text = require_string(response, "error");
    const Json* message = response.find("message");
    const std::string text =
        message != nullptr && message->is_string() ? message->as_string() : code_text;
    const auto code = error_code_from(code_text);
    ProtocolError error(code.value_or(ErrorCode::kInternal), text);
    if (const Json* retry = response.find("retry_after_ms"))
      error.retry_after_ms = retry->as_uint64();
    throw error;
  }
  return response;
}

void Client::backoff_sleep(std::size_t attempt, std::uint64_t floor_ms) {
  const double scaled = static_cast<double>(config_.backoff_initial_ms) *
                        std::pow(config_.backoff_multiplier,
                                 static_cast<double>(attempt));
  std::uint64_t delay_ms =
      scaled >= static_cast<double>(config_.backoff_max_ms)
          ? config_.backoff_max_ms
          : static_cast<std::uint64_t>(scaled);
  if (delay_ms < floor_ms) delay_ms = floor_ms;
  if (delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

Json Client::call_resilient(const Json& request, bool idempotent) {
  std::size_t attempt = 0;
  while (true) {
    try {
      if (!connected_) connect();
      return call(request);
    } catch (const ClientError&) {
      if (!idempotent || attempt >= config_.max_retries) throw;
      ++retries_;
      backoff_sleep(attempt++, 0);
      // Reconnect happens at the top of the loop.
    } catch (const ProtocolError& error) {
      // Admission pushback: the request was *not* performed, so replaying
      // it is safe regardless of idempotency. Honor the server's hint but
      // never back off less than the schedule says.
      if (error.code != ErrorCode::kRetryLater || attempt >= config_.max_retries)
        throw;
      ++retries_;
      backoff_sleep(attempt++, error.retry_after_ms);
    }
  }
}

std::string Client::open(const OpenParams& params, const std::string& token) {
  Json request = encode_open(params);
  if (!token.empty()) request.set("token", token);
  // Without a token a replayed open could create a twin session, so only
  // tokened opens retry transport failures (RETRY_LATER retries either way
  // inside call_resilient).
  const std::string id =
      require_string(call_resilient(request, /*idempotent=*/!token.empty()),
                     "session");
  next_seq_.emplace(id, 1);
  return id;
}

std::optional<tuner::Configuration> Client::ask(const std::string& session) {
  Json request = Json::object();
  request.set("op", "ask");
  request.set("session", session);
  // resume:true makes a replayed ask (after a lost response) re-fetch the
  // outstanding proposal instead of failing with ask_pending.
  request.set("resume", true);
  if (config_.heartbeat_ms > 0)
    request.set("deadline_ms", config_.heartbeat_ms);
  while (true) {
    try {
      const Json response = call_resilient(request, /*idempotent=*/true);
      if (require_bool(response, "done")) return std::nullopt;
      return decode_config(require(response, "config"));
    } catch (const ProtocolError& error) {
      // Heartbeat cycle: the deadline bounds each exchange, not the op —
      // re-issue until the search thread produces the proposal.
      if (error.code != ErrorCode::kDeadlineExceeded || config_.heartbeat_ms == 0)
        throw;
    }
  }
}

std::size_t Client::tell(const std::string& session,
                         const tuner::Evaluation& evaluation) {
  Json request = Json::object();
  request.set("op", "tell");
  request.set("session", session);
  encode_evaluation_into(request, evaluation);
  const auto seq_it = next_seq_.find(session);
  if (seq_it != next_seq_.end()) request.set("seq", seq_it->second);
  const Json response =
      call_resilient(request, /*idempotent=*/seq_it != next_seq_.end());
  if (seq_it != next_seq_.end()) ++seq_it->second;
  return static_cast<std::size_t>(require_uint(response, "remaining"));
}

Client::RemoteResult Client::result(const std::string& session) {
  Json request = Json::object();
  request.set("op", "result");
  request.set("session", session);
  if (config_.heartbeat_ms > 0)
    request.set("deadline_ms", config_.heartbeat_ms);
  while (true) {
    try {
      const Json response = call_resilient(request, /*idempotent=*/true);
      RemoteResult out;
      decode_tune_result(require(response, "result"), &out.result, &out.counters);
      return out;
    } catch (const ProtocolError& error) {
      if (error.code != ErrorCode::kDeadlineExceeded || config_.heartbeat_ms == 0)
        throw;
    }
  }
}

void Client::close_session(const std::string& session) {
  Json request = Json::object();
  request.set("op", "close");
  request.set("session", session);
  try {
    (void)call_resilient(request, /*idempotent=*/true);
  } catch (const ProtocolError& error) {
    // A replayed close whose first delivery succeeded answers
    // unknown_session; with retries enabled that is a success, not an
    // error. Without retries, surface everything (legacy behavior).
    if (config_.max_retries == 0 || error.code != ErrorCode::kUnknownSession)
      throw;
  }
  next_seq_.erase(session);
}

Json Client::status() {
  Json request = Json::object();
  request.set("op", "status");
  return call_resilient(request, /*idempotent=*/true);
}

void Client::ping() {
  Json request = Json::object();
  request.set("op", "ping");
  (void)call_resilient(request, /*idempotent=*/true);
}

Json Client::store_stats() {
  Json request = Json::object();
  request.set("op", "store_stats");
  return call_resilient(request, /*idempotent=*/true);
}

Client::ExportPage Client::store_export_page(const std::string& benchmark,
                                             const std::string& arch,
                                             std::size_t limit,
                                             const std::string& cursor) {
  Json request = Json::object();
  request.set("op", "store_export");
  if (!benchmark.empty()) request.set("benchmark", benchmark);
  if (!arch.empty()) request.set("arch", arch);
  if (limit > 0) request.set("limit", static_cast<std::uint64_t>(limit));
  if (!cursor.empty()) request.set("cursor", cursor);
  const Json response = call_resilient(request, /*idempotent=*/true);
  ExportPage page;
  page.tenants = decode_tenants(require(response, "tenants"));
  if (const Json* flag = response.find("truncated");
      flag != nullptr && flag->is_bool()) {
    page.truncated = flag->as_bool();
  }
  if (const Json* next = response.find("next_cursor");
      next != nullptr && next->is_string()) {
    page.next_cursor = next->as_string();
  }
  return page;
}

std::vector<store::TenantSnapshot> Client::store_export(const std::string& benchmark,
                                                        const std::string& arch,
                                                        std::size_t limit) {
  if (limit > 0) return store_export_page(benchmark, arch, limit).tenants;
  // Full export: follow next_cursor across pages. A tenant cut at a page
  // boundary arrives as adjacent slices with the same key — splice them
  // back into one snapshot so callers see the pre-paging shape.
  std::vector<store::TenantSnapshot> out;
  std::string cursor;
  while (true) {
    ExportPage page = store_export_page(benchmark, arch, 0, cursor);
    for (store::TenantSnapshot& tenant : page.tenants) {
      if (!out.empty() && out.back().key.flat() == tenant.key.flat()) {
        out.back().rows.insert(out.back().rows.end(), tenant.rows.begin(),
                               tenant.rows.end());
      } else {
        out.push_back(std::move(tenant));
      }
    }
    if (page.next_cursor.empty()) break;
    cursor = page.next_cursor;
  }
  return out;
}

std::size_t Client::store_import(const std::vector<store::TenantSnapshot>& tenants) {
  Json request = Json::object();
  request.set("op", "store_import");
  request.set("tenants", encode_tenants(tenants));
  // Imports are dedup'd server-side (first value wins), so a replay after a
  // lost response cannot double-store — idempotent by construction.
  const Json response = call_resilient(request, /*idempotent=*/true);
  return static_cast<std::size_t>(require_uint(response, "imported"));
}

Client::RemoteResult Client::remote_minimize(const OpenParams& params,
                                             const tuner::Objective& objective) {
  // Deterministic idempotency token (only when retries are on): unique per
  // open within this client, reproducible across identical runs.
  std::string token;
  if (config_.max_retries > 0) {
    token = config_.name + "#" + std::to_string(open_counter_++) + "/" +
            params.algorithm + "/" + std::to_string(params.seed);
  }
  const std::string session = open(params, token);
  try {
    while (auto config = ask(session)) {
      (void)tell(session, objective(*config));
    }
    RemoteResult out = result(session);
    close_session(session);
    return out;
  } catch (...) {
    // Best effort: do not leak the server-side session on client failure.
    try {
      close_session(session);
    } catch (...) {
    }
    throw;
  }
}

}  // namespace repro::service
