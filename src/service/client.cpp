#include "service/client.hpp"

#include <utility>

namespace repro::service {

void Client::connect() {
  if (connected_) return;
  try {
    socket_ = config_.host == "127.0.0.1"
                  ? Socket::connect_loopback(config_.port)
                  : Socket::connect_tcp(config_.host, config_.port);
  } catch (const std::exception& error) {
    throw ClientError("connect to " + config_.host + ":" +
                      std::to_string(config_.port) + " failed: " + error.what());
  }
  reader_.emplace(socket_);
  connected_ = true;
  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("version", static_cast<std::uint64_t>(kProtocolVersion));
  hello.set("client", config_.name);
  (void)call(hello);
}

void Client::disconnect() {
  if (!connected_) return;
  socket_.close();
  reader_.reset();
  connected_ = false;
}

Json Client::call(const Json& request) {
  if (!connected_) throw ClientError("client is not connected");
  if (!write_frame(socket_, request)) {
    disconnect();
    throw ClientError("connection lost while sending request");
  }
  std::string line;
  while (true) {
    const FrameStatus status = reader_->next(&line);
    if (status == FrameStatus::kTimeout) continue;  // no read timeout set; defensive
    if (status != FrameStatus::kOk) {
      disconnect();
      throw ClientError("connection lost while awaiting response");
    }
    break;
  }
  Json response;
  try {
    response = Json::parse(line);
  } catch (const JsonError& error) {
    disconnect();
    throw ClientError(std::string("malformed response frame: ") + error.what());
  }
  const bool ok = require_bool(response, "ok");
  if (!ok) {
    const std::string code_text = require_string(response, "error");
    const Json* message = response.find("message");
    const std::string text =
        message != nullptr && message->is_string() ? message->as_string() : code_text;
    const auto code = error_code_from(code_text);
    throw ProtocolError(code.value_or(ErrorCode::kInternal), text);
  }
  return response;
}

std::string Client::open(const OpenParams& params) {
  return require_string(call(encode_open(params)), "session");
}

std::optional<tuner::Configuration> Client::ask(const std::string& session) {
  Json request = Json::object();
  request.set("op", "ask");
  request.set("session", session);
  const Json response = call(request);
  if (require_bool(response, "done")) return std::nullopt;
  return decode_config(require(response, "config"));
}

std::size_t Client::tell(const std::string& session,
                         const tuner::Evaluation& evaluation) {
  Json request = Json::object();
  request.set("op", "tell");
  request.set("session", session);
  encode_evaluation_into(request, evaluation);
  return static_cast<std::size_t>(require_uint(call(request), "remaining"));
}

Client::RemoteResult Client::result(const std::string& session) {
  Json request = Json::object();
  request.set("op", "result");
  request.set("session", session);
  const Json response = call(request);
  RemoteResult out;
  decode_tune_result(require(response, "result"), &out.result, &out.counters);
  return out;
}

void Client::close_session(const std::string& session) {
  Json request = Json::object();
  request.set("op", "close");
  request.set("session", session);
  (void)call(request);
}

Json Client::status() {
  Json request = Json::object();
  request.set("op", "status");
  return call(request);
}

void Client::ping() {
  Json request = Json::object();
  request.set("op", "ping");
  (void)call(request);
}

Client::RemoteResult Client::remote_minimize(const OpenParams& params,
                                             const tuner::Objective& objective) {
  const std::string session = open(params);
  try {
    while (auto config = ask(session)) {
      Json request = Json::object();
      request.set("op", "tell");
      request.set("session", session);
      encode_evaluation_into(request, objective(*config));
      (void)call(request);
    }
    RemoteResult out = result(session);
    close_session(session);
    return out;
  } catch (...) {
    // Best effort: do not leak the server-side session on client failure.
    if (connected_) {
      try {
        close_session(session);
      } catch (...) {
      }
    }
    throw;
  }
}

}  // namespace repro::service
