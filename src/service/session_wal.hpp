#pragma once
// Per-session write-ahead journal for the tuning service.
//
// A `tuned` daemon killed mid-session (kill -9, OOM, node loss) must not
// lose live ask/tell sessions: every session is deterministic given its
// open parameters (algorithm, budget, seed, space, retry policy) and the
// ordered stream of tell() evaluations, so journaling exactly those two
// things is enough to reconstruct the session by replay through the
// unmodified AskTellSession — same RNG stream, same proposals, same final
// result, bit for bit.
//
// Format: JSON lines (the service's own codecs), one file per session in
// the daemon's --state-dir, named "<session-id>.wal":
//   {"wal":"open","v":1,"id":"s3","token":"...","open":{...open request...}}
//   {"wal":"tell","seq":1,"config":[4,2,3],"value":1.25,"valid":true,"status":"ok"}
//   ...
//   {"wal":"close"}        // clean terminal record: journal is deletable
//   {"wal":"evicted"}      // terminal record: idle eviction (tombstone)
// Every record is appended with a single write() and fsync()'d before the
// response frame that acknowledges it leaves the daemon, so an acknowledged
// tell is never lost. The `config` echoed in each tell record is not needed
// for replay (proposals are deterministic) — it is an integrity check: a
// replay whose proposal diverges from the journal refuses to recover.
//
// Torn tails follow the PR-1 checkpoint rules (harness/results_io): the only
// possible corruption of an append-only file killed mid-write is its final
// line, so an unterminated or malformed *final* line is dropped on load and
// truncated away before the journal is appended to again; a malformed
// interior record is a hard error.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace repro::service {

/// One replayed tell record.
struct WalTell {
  std::uint64_t seq = 0;
  tuner::Configuration config;
  tuner::Evaluation evaluation;
};

/// Parsed journal contents.
struct WalSession {
  std::string id;
  std::string token;
  OpenParams open;
  std::vector<WalTell> tells;
  bool closed = false;   ///< clean close terminal record present
  bool evicted = false;  ///< eviction terminal record present
  bool torn_tail = false;  ///< an unterminated/malformed final line was dropped
  /// Byte length of the valid record prefix; appends must resume here.
  std::uint64_t valid_bytes = 0;
};

/// Append-only fsync'd writer for one session's journal. All append_*
/// methods return false on IO failure (callers log and continue without
/// durability rather than failing the session).
class SessionWal {
 public:
  ~SessionWal();

  SessionWal(const SessionWal&) = delete;
  SessionWal& operator=(const SessionWal&) = delete;

  /// Create the journal and append+fsync the open record. Returns nullptr
  /// on IO failure.
  [[nodiscard]] static std::unique_ptr<SessionWal> create(const std::string& path,
                                                          const std::string& id,
                                                          const std::string& token,
                                                          const OpenParams& params);

  /// Re-attach to a recovered journal for further appends, truncating it to
  /// `valid_bytes` first (drops any torn tail). Returns nullptr on failure.
  [[nodiscard]] static std::unique_ptr<SessionWal> reattach(const std::string& path,
                                                            std::uint64_t valid_bytes);

  [[nodiscard]] bool append_tell(std::uint64_t seq, const tuner::Configuration& config,
                                 const tuner::Evaluation& evaluation);
  [[nodiscard]] bool append_close();
  [[nodiscard]] bool append_evicted();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  SessionWal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  [[nodiscard]] bool append_line(const Json& record);

  int fd_ = -1;
  std::string path_;
};

/// Parse a journal. Applies the torn-tail rules above; throws
/// std::runtime_error when the file cannot be read or an interior record is
/// malformed (the journal is then unrecoverable and the session is lost).
[[nodiscard]] WalSession load_session_wal(const std::string& path);

/// "<state_dir>/<session-id>.wal"
[[nodiscard]] std::string wal_path(const std::string& state_dir, const std::string& id);

/// All "*.wal" files directly inside state_dir, sorted by path so recovery
/// order (and therefore session replay order) is deterministic. Creates the
/// directory when missing; throws std::runtime_error when it cannot.
[[nodiscard]] std::vector<std::string> list_session_wals(const std::string& state_dir);

}  // namespace repro::service
