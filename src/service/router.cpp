#include "service/router.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"

namespace repro::service {

const char* to_string(ShardHealth health) noexcept {
  switch (health) {
    case ShardHealth::kUp: return "up";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kDown: return "down";
  }
  return "?";
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char byte : text) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

/// splitmix64 finalizer. Raw FNV-1a barely avalanches its high bits for
/// short, near-identical keys ("anon-0".."anon-15", "shard-0#r" vs
/// "shard-1#r"), which skews the consistent-hash ring badly enough that
/// every anonymous open can land on one shard. lower_bound keys on the
/// high bits, so mix before placing anything on the ring.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

std::uint64_t ring_hash(std::string_view text) noexcept {
  return mix64(fnv1a64(text));
}

}  // namespace

std::optional<std::pair<std::size_t, std::string>> split_session_id(
    const std::string& id, std::size_t shard_count) {
  const std::size_t colon = id.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= id.size())
    return std::nullopt;
  std::size_t shard = 0;
  for (std::size_t i = 0; i < colon; ++i) {
    const char c = id[i];
    if (c < '0' || c > '9') return std::nullopt;
    shard = shard * 10 + static_cast<std::size_t>(c - '0');
    if (shard >= shard_count && shard > 9999) return std::nullopt;  // overflow guard
  }
  if (shard >= shard_count) return std::nullopt;
  return std::make_pair(shard, id.substr(colon + 1));
}

namespace {

/// Bounded out-of-band RPC: connect, hello, one request, one reply, all
/// within `timeout`. Deliberately not service::Client — probes and promote
/// must never park past their budget on a wedged (e.g. SIGSTOPped) shard.
std::optional<Json> bounded_call(const std::string& host, std::uint16_t port,
                                 std::chrono::milliseconds timeout,
                                 const Json& request, const std::string& name) {
  Socket socket;
  try {
    socket = host == "127.0.0.1" ? Socket::connect_loopback(port)
                                 : Socket::connect_tcp(host, port);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  socket.set_read_timeout(std::chrono::milliseconds(50));
  socket.set_write_timeout(timeout);
  FrameReader reader(socket);
  // Probe deadline bookkeeping; never feeds tuning results.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const auto exchange = [&](const Json& frame) -> std::optional<Json> {
    if (!write_frame(socket, frame)) return std::nullopt;
    std::string line;
    while (true) {
      const FrameStatus status = reader.next(&line);
      if (status == FrameStatus::kOk) break;
      if (status == FrameStatus::kTimeout) {
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        continue;
      }
      return std::nullopt;
    }
    try {
      return Json::parse(line);
    } catch (const JsonError&) {
      return std::nullopt;
    }
  };
  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("version", static_cast<std::uint64_t>(kProtocolVersion));
  hello.set("client", name);
  const std::optional<Json> shake = exchange(hello);
  if (!shake) return std::nullopt;
  const Json* ok = shake->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) return std::nullopt;
  return exchange(request);
}

[[nodiscard]] Json ping_frame() {
  Json request = Json::object();
  request.set("op", "ping");
  return request;
}

[[nodiscard]] Json status_frame() {
  Json request = Json::object();
  request.set("op", "status");
  return request;
}

/// Classify a shard's status reply. Draining, fenced, or
/// shipping-disconnected primaries still serve, but should not take new
/// placements preferentially — callers treat kDegraded as placeable.
[[nodiscard]] ShardHealth classify(const Json& status) {
  const Json* draining = status.find("draining");
  if (draining != nullptr && draining->is_bool() && draining->as_bool())
    return ShardHealth::kDegraded;
  const Json* enabled = status.find("ship_enabled");
  if (enabled != nullptr && enabled->is_bool() && enabled->as_bool()) {
    const Json* connected = status.find("ship_connected");
    const Json* fenced = status.find("ship_fenced");
    if (fenced != nullptr && fenced->is_bool() && fenced->as_bool())
      return ShardHealth::kDegraded;
    if (connected == nullptr || !connected->is_bool() || !connected->as_bool())
      return ShardHealth::kDegraded;
  }
  // A re-seeding shard is serving but its follower has not caught up to
  // the live watermark yet — placeable, not preferred.
  const Json* ship_state = status.find("ship_state");
  if (ship_state != nullptr && ship_state->is_string() &&
      ship_state->as_string() == "catching_up")
    return ShardHealth::kDegraded;
  return ShardHealth::kUp;
}

}  // namespace

Router::Router(RouterConfig config) : config_(std::move(config)) {}

Router::~Router() { stop(); }

void Router::start() {
  {
    repro::MutexLock lock(mutex_);
    if (started_) return;
    if (config_.shards.empty())
      throw std::runtime_error("tunelb: at least one shard is required");
    started_ = true;
    shard_states_.clear();
    shard_states_.reserve(config_.shards.size());
    for (const ShardEndpoints& endpoints : config_.shards) {
      ShardState state;
      state.endpoints = endpoints;
      state.standby_available = endpoints.standby_port != 0;
      shard_states_.push_back(state);
    }
    spare_used_.assign(config_.spares.size(), false);
  }
  ring_.clear();
  ring_.reserve(config_.shards.size() * config_.ring_replicas);
  for (std::size_t shard = 0; shard < config_.shards.size(); ++shard) {
    for (std::size_t replica = 0; replica < config_.ring_replicas; ++replica) {
      const std::string node =
          "shard-" + std::to_string(shard) + "#" + std::to_string(replica);
      ring_.emplace_back(ring_hash(node), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  listener_ = ListenSocket::listen_loopback(config_.port);
  listener_.set_accept_timeout(config_.poll_interval);
  port_ = listener_.port();
  pool_ = std::make_unique<ThreadPool>(config_.connection_threads);
  accept_thread_ = std::thread([this] { accept_loop(); });  // NOLINT(reprolint-raw-thread)
  if (config_.probe_interval.count() > 0)
    probe_thread_ = std::thread([this] { probe_loop(); });  // NOLINT(reprolint-raw-thread)
  log_info("tunelb: listening on 127.0.0.1:{} ({} shards, {} workers)", port_,
           config_.shards.size(), config_.connection_threads);
}

void Router::stop() {
  std::vector<std::shared_ptr<Socket>> sockets;
  {
    repro::MutexLock lock(mutex_);
    if (!started_) return;
    stopping_ = true;
    sockets.reserve(connections_.size());
    // Shutdown broadcast: every socket gets shut down, order immaterial.
    for (auto& [id, socket] : connections_) sockets.push_back(socket);  // NOLINT(reprolint-unordered-iteration)
  }
  listener_.close();
  for (const auto& socket : sockets) socket->shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (probe_thread_.joinable()) probe_thread_.join();
  pool_.reset();
}

bool Router::running() const noexcept {
  repro::MutexLock lock(mutex_);
  return started_ && !stopping_;
}

std::vector<ShardSnapshot> Router::shards() const {
  repro::MutexLock lock(mutex_);
  std::vector<ShardSnapshot> out;
  out.reserve(shard_states_.size());
  for (std::size_t i = 0; i < shard_states_.size(); ++i) {
    const ShardState& state = shard_states_[i];
    ShardSnapshot snapshot;
    snapshot.index = i;
    snapshot.host = state.endpoints.primary_host;
    snapshot.port = state.endpoints.primary_port;
    snapshot.health = state.health;
    snapshot.has_standby = state.standby_available;
    snapshot.promotions = state.promotions;
    snapshot.reseeds = state.reseeds;
    snapshot.generation = state.generation;
    snapshot.sessions_placed = state.sessions_placed;
    out.push_back(snapshot);
  }
  return out;
}

void Router::probe_now() {
  for (std::size_t shard = 0; shard < config_.shards.size(); ++shard)
    probe_shard(shard);
}

void Router::probe_loop() {
  // Tick in small slices so stop() never waits a full probe interval.
  auto elapsed = std::chrono::milliseconds(0);
  const auto tick = std::chrono::milliseconds(50);
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    std::this_thread::sleep_for(tick);
    elapsed += tick;
    if (elapsed < config_.probe_interval) continue;
    elapsed = std::chrono::milliseconds(0);
    for (std::size_t shard = 0; shard < config_.shards.size(); ++shard) {
      {
        repro::MutexLock lock(mutex_);
        if (stopping_) return;
      }
      probe_shard(shard);
    }
  }
}

void Router::probe_shard(std::size_t shard) {
  const Endpoint target = endpoint(shard);
  const std::optional<Json> status = bounded_call(
      target.host, target.port, config_.probe_timeout, status_frame(),
      config_.name + "-probe");
  bool cross_down_threshold = false;
  bool want_reseed = false;
  {
    repro::MutexLock lock(mutex_);
    ShardState& state = shard_states_[shard];
    if (state.generation != target.generation) return;  // failed over meanwhile
    if (status) {
      state.consecutive_probe_failures = 0;
      const ShardHealth next = classify(*status);
      if (next != state.health)
        log_info("tunelb: shard {} ({}:{}) is {}", shard, target.host,
                 target.port, to_string(next));
      state.health = next;
      bool spare_free = false;
      for (const bool used : spare_used_) spare_free = spare_free || !used;
      want_reseed = next != ShardHealth::kDown && !state.standby_available &&
                    !state.reseed_unsupported &&
                    (state.deposed_port != 0 || spare_free);
    } else {
      ++state.consecutive_probe_failures;
      cross_down_threshold = state.consecutive_probe_failures >=
                             config_.probe_failures_before_down;
    }
  }
  if (want_reseed) maybe_reseed(shard, target, *status);
  if (cross_down_threshold) (void)fail_over(shard, target.generation);
}

void Router::maybe_reseed(std::size_t shard, const Endpoint& primary,
                          const Json& status) {
  // The probe status doubles as the dedup guard: a resync already in
  // flight shows catching_up (leave it alone), and a reseed whose reply
  // was lost to a timeout shows hot with a ship_target (adopt it without
  // another RPC).
  std::string ship_state;
  if (const Json* field = status.find("ship_state");
      field != nullptr && field->is_string())
    ship_state = field->as_string();
  if (ship_state == "catching_up" || ship_state == "fenced") return;
  if (ship_state == "hot") {
    std::string target_text;
    if (const Json* field = status.find("ship_target");
        field != nullptr && field->is_string())
      target_text = field->as_string();
    const std::size_t colon = target_text.rfind(':');
    if (colon == std::string::npos || colon == 0) return;
    const int parsed = std::atoi(target_text.c_str() + colon + 1);
    if (parsed <= 0 || parsed > 65535) return;
    adopt_standby(shard, primary.generation, target_text.substr(0, colon),
                  static_cast<std::uint16_t>(parsed));
    return;
  }
  // Candidate hunt, deposed ex-primary first: it rejoins with most of the
  // journal already on disk and consumes no spare. Whoever is picked must
  // prove it is a standby before the primary is told to ship to it — a
  // spare that answers as a primary is somebody else's daemon.
  std::vector<SpareEndpoint> candidates;
  {
    repro::MutexLock lock(mutex_);
    const ShardState& state = shard_states_[shard];
    if (state.generation != primary.generation || state.standby_available)
      return;
    if (state.deposed_port != 0)
      candidates.push_back({state.deposed_host, state.deposed_port});
    for (std::size_t i = 0; i < config_.spares.size(); ++i)
      if (!spare_used_[i]) candidates.push_back(config_.spares[i]);
  }
  for (const SpareEndpoint& candidate : candidates) {
    const std::optional<Json> reply =
        bounded_call(candidate.host, candidate.port, config_.probe_timeout,
                     status_frame(), config_.name + "-probe");
    if (!reply) continue;
    const Json* ok = reply->find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) continue;
    const Json* role = reply->find("role");
    if (role == nullptr || !role->is_string() || role->as_string() != "standby")
      continue;  // a deposed primary that has not demoted yet, or misconfig
    Json reseed = Json::object();
    reseed.set("op", "reseed");
    reseed.set("host", candidate.host);
    reseed.set("port", static_cast<std::uint64_t>(candidate.port));
    const std::optional<Json> seeded = bounded_call(
        primary.host, primary.port, config_.probe_timeout, reseed, config_.name);
    // Timeout mid-resync is fine: the next probe observes catching_up (wait)
    // or hot (adopt via ship_target above).
    if (!seeded) return;
    const Json* seeded_ok = seeded->find("ok");
    if (seeded_ok == nullptr || !seeded_ok->is_bool() || !seeded_ok->as_bool()) {
      // Typed refusal — this primary cannot resync (no state dir). Permanent
      // for this generation; stop asking every probe tick.
      const Json* message = seeded->find("message");
      log_warn("tunelb: shard {} refused reseed: {}", shard,
               message != nullptr && message->is_string()
                   ? message->as_string()
                   : std::string("(no message)"));
      repro::MutexLock lock(mutex_);
      ShardState& state = shard_states_[shard];
      if (state.generation == primary.generation) state.reseed_unsupported = true;
      return;
    }
    const Json* hot = seeded->find("hot");
    if (hot != nullptr && hot->is_bool() && hot->as_bool()) {
      adopt_standby(shard, primary.generation, candidate.host, candidate.port);
    }
    return;  // one reseed attempt per probe tick, hot or not
  }
}

void Router::adopt_standby(std::size_t shard, std::uint64_t observed_generation,
                           const std::string& host, std::uint16_t port) {
  repro::MutexLock lock(mutex_);
  ShardState& state = shard_states_[shard];
  if (state.generation != observed_generation || state.standby_available) return;
  state.endpoints.standby_host = host;
  state.endpoints.standby_port = port;
  state.standby_available = true;
  ++state.reseeds;
  if (state.deposed_port == port && state.deposed_host == host) {
    state.deposed_host.clear();
    state.deposed_port = 0;
  }
  for (std::size_t i = 0; i < config_.spares.size(); ++i) {
    if (!spare_used_[i] && config_.spares[i].port == port &&
        config_.spares[i].host == host)
      spare_used_[i] = true;
  }
  log_info("tunelb: shard {} re-seeded; standby {}:{} is hot", shard, host, port);
}

std::optional<std::size_t> Router::place(const std::string& key) const {
  const std::uint64_t hash = ring_hash(key);
  repro::MutexLock lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(hash, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const std::size_t shard = it->second;
    if (shard_states_[shard].health != ShardHealth::kDown) return shard;
  }
  return std::nullopt;
}

Router::Endpoint Router::endpoint(std::size_t shard) const {
  repro::MutexLock lock(mutex_);
  const ShardState& state = shard_states_[shard];
  Endpoint out;
  out.host = state.endpoints.primary_host;
  out.port = state.endpoints.primary_port;
  out.generation = state.generation;
  return out;
}

bool Router::fail_over(std::size_t shard, std::uint64_t observed_generation) {
  // One failover at a time, cluster-wide: concurrent observers of the same
  // dead shard serialize here, and the second one returns immediately on
  // the generation check. Probes inside the lock bound the critical
  // section by probe_timeout; failover is rare enough that stalling other
  // routing decisions for that long is an acceptable trade for simplicity.
  repro::MutexLock lock(mutex_);
  ShardState& state = shard_states_[shard];
  if (state.generation != observed_generation)
    return state.health != ShardHealth::kDown;
  // Re-probe before declaring death: the forwarding failure may have been
  // a single torn connection, not a dead process.
  const std::optional<Json> alive = bounded_call(
      state.endpoints.primary_host, state.endpoints.primary_port,
      config_.probe_timeout, ping_frame(), config_.name + "-probe");
  if (alive) {
    state.consecutive_probe_failures = 0;
    return true;  // transient; caller reconnects to the same endpoint
  }
  if (!state.standby_available) {
    if (state.health != ShardHealth::kDown)
      log_warn("tunelb: shard {} ({}:{}) is down and has no standby", shard,
               state.endpoints.primary_host, state.endpoints.primary_port);
    state.health = ShardHealth::kDown;
    ++state.generation;  // invalidate cached downstream clients
    return false;
  }
  Json promote = Json::object();
  promote.set("op", "promote");
  const std::optional<Json> promoted = bounded_call(
      state.endpoints.standby_host, state.endpoints.standby_port,
      config_.probe_timeout, promote, config_.name);
  const Json* ok = promoted ? promoted->find("ok") : nullptr;
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    log_error("tunelb: shard {} primary AND standby unreachable; shard down",
              shard);
    state.health = ShardHealth::kDown;
    ++state.generation;
    return false;
  }
  log_warn("tunelb: shard {} primary {}:{} dead; promoted standby {}:{}", shard,
           state.endpoints.primary_host, state.endpoints.primary_port,
           state.endpoints.standby_host, state.endpoints.standby_port);
  // Remember the deposed primary: if it comes back and demotes itself
  // (tuned --auto-rejoin), the prober re-attaches it as the replacement
  // standby without consuming a spare.
  state.deposed_host = state.endpoints.primary_host;
  state.deposed_port = state.endpoints.primary_port;
  state.endpoints.primary_host = state.endpoints.standby_host;
  state.endpoints.primary_port = state.endpoints.standby_port;
  state.endpoints.standby_port = 0;
  state.standby_available = false;
  state.reseed_unsupported = false;  // the new primary gets its own verdict
  state.health = ShardHealth::kUp;
  state.consecutive_probe_failures = 0;
  ++state.promotions;
  ++state.generation;
  return true;
}

void Router::accept_loop() {
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    Socket socket;
    const Socket::Io io = listener_.accept(&socket);
    if (io == Socket::Io::kTimeout) continue;
    if (io == Socket::Io::kClosed) return;
    if (io == Socket::Io::kError) continue;
    auto shared = std::make_shared<Socket>(std::move(socket));
    std::uint64_t id = 0;
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) continue;
      id = next_connection_id_++;
      connections_[id] = shared;
    }
    std::vector<std::function<void()>> task;
    task.emplace_back([this, id] {
      try {
        handle_connection(id);
      } catch (const std::exception& error) {
        log_error("tunelb: connection {} handler failed: {}", id, error.what());
      }
      repro::MutexLock lock(mutex_);
      connections_.erase(id);
    });
    pool_->submit_batch(std::move(task));
  }
}

void Router::handle_connection(std::uint64_t id) {
  std::shared_ptr<Socket> socket;
  {
    repro::MutexLock lock(mutex_);
    const auto it = connections_.find(id);
    if (it == connections_.end()) return;
    socket = it->second;
  }
  socket->set_read_timeout(config_.poll_interval);
  if (config_.write_timeout.count() > 0)
    socket->set_write_timeout(config_.write_timeout);
  FrameReader reader(*socket);
  Downstreams downstreams;
  bool hello_done = false;
  std::string line;
  while (true) {
    {
      repro::MutexLock lock(mutex_);
      if (stopping_) return;
    }
    const FrameStatus status = reader.next(&line);
    if (status == FrameStatus::kTimeout) continue;
    if (status == FrameStatus::kClosed || status == FrameStatus::kMidFrameEof ||
        status == FrameStatus::kError)
      return;
    if (status == FrameStatus::kOversized) {
      (void)write_frame(*socket,
                        make_error(ErrorCode::kOversizedFrame,
                                   "frame exceeds " +
                                       std::to_string(kMaxFrameBytes) + " bytes"));
      return;
    }
    Json request;
    try {
      request = Json::parse(line);
    } catch (const JsonError& error) {
      if (!write_frame(*socket, make_error(ErrorCode::kMalformedFrame, error.what())))
        return;
      continue;
    }
    bool fatal = false;
    const Json response = dispatch(request, downstreams, &hello_done, &fatal);
    if (!write_frame(*socket, response)) return;
    if (fatal) return;
  }
}

Json Router::dispatch(const Json& request, Downstreams& downstreams,
                      bool* hello_done, bool* fatal) {
  *fatal = false;
  try {
    const std::string op = require_string(request, "op");
    if (op == "hello") {
      const std::uint64_t version = require_uint(request, "version");
      if (version != static_cast<std::uint64_t>(kProtocolVersion)) {
        *fatal = true;
        return make_error(ErrorCode::kVersionMismatch,
                          "router speaks protocol version " +
                              std::to_string(kProtocolVersion) + ", client sent " +
                              std::to_string(version));
      }
      *hello_done = true;
      // Tenant identity is connection-scoped: re-sent on every downstream
      // hello so shards quota the real tenant, not the router. A changed
      // identity drops cached downstream clients (they carry the old one).
      std::string tenant;
      if (const Json* field = request.find("tenant");
          field != nullptr && field->is_string())
        tenant = field->as_string();
      if (tenant != downstreams.tenant) {
        downstreams.tenant = tenant;
        downstreams.slots.clear();
      }
      Json response = make_ok();
      response.set("version", static_cast<std::uint64_t>(kProtocolVersion));
      response.set("server", config_.name);
      response.set("max_frame", static_cast<std::uint64_t>(kMaxFrameBytes));
      Json features = Json::array();
      for (const char* feature : {"deadline_ms", "seq", "resume", "token",
                                  "retry_later", "cluster", "quota"})
        features.push_back(feature);
      response.set("features", std::move(features));
      return response;
    }
    if (!*hello_done)
      return make_error(ErrorCode::kHelloRequired,
                        "first frame must be a hello handshake");
    if (op == "ping") return make_ok();
    if (op == "status") return aggregate_status();
    if (op == "open") return route_open(request, downstreams);
    if (op == "ship_open" || op == "ship_tell" || op == "ship_close" ||
        op == "ship_evict" || op == "promote") {
      return make_error(ErrorCode::kWrongRole,
                        "a router accepts client session ops, not replication "
                        "records; ship to a standby shard directly");
    }
    if (op == "reseed") {
      return make_error(ErrorCode::kWrongRole,
                        "re-seeding is driven by the router's own prober; to "
                        "attach a follower manually, send reseed to the shard "
                        "primary directly");
    }
    if (op == "store_stats" || op == "store_export" || op == "store_import") {
      return route_store(op, request, downstreams);
    }
    if (op == "ask" || op == "tell" || op == "result" || op == "close") {
      const std::string namespaced = require_string(request, "session");
      const auto split = split_session_id(namespaced, config_.shards.size());
      if (!split)
        return make_error(ErrorCode::kUnknownSession,
                          "session id '" + namespaced +
                              "' is not a '<shard>:<sid>' id of this cluster");
      // close is replay-safe through a failover: a re-delivered close
      // answers unknown_session, which retrying clients already treat as
      // close-succeeded.
      bool idempotent = op == "result" || op == "close";
      if (op == "ask") {
        const Json* resume = request.find("resume");
        idempotent = resume != nullptr && resume->is_bool() && resume->as_bool();
      } else if (op == "tell") {
        idempotent = optional_uint(request, "seq").value_or(0) > 0;
      }
      Json forwarded = request;
      forwarded.set("session", split->second);
      return forward(split->first, std::move(forwarded), idempotent, downstreams);
    }
    return make_error(ErrorCode::kUnknownOp, "unknown op: " + op);
  } catch (const ProtocolError& error) {
    if (error.code == ErrorCode::kRetryLater)
      return make_retry_later(error.what(), error.retry_after_ms);
    return make_error(error.code, error.what());
  } catch (const JsonError& error) {
    return make_error(ErrorCode::kBadRequest, error.what());
  } catch (const std::exception& error) {
    return make_error(ErrorCode::kInternal, error.what());
  }
}

Json Router::forward(std::size_t shard, Json request, bool idempotent,
                     Downstreams& downstreams) {
  // Attempt 0 is the normal path; attempt 1 runs only after a failover
  // (idempotent requests), against the shard's possibly-new endpoint.
  for (std::size_t attempt = 0; attempt < 2; ++attempt) {
    const Endpoint target = endpoint(shard);
    DownstreamSlot& slot = downstreams.slots[shard];
    try {
      if (slot.client == nullptr || slot.generation != target.generation ||
          !slot.client->connected()) {
        ClientConfig config;
        config.host = target.host;
        config.port = target.port;
        config.name = config_.name;
        config.tenant = downstreams.tenant;
        slot.client = std::make_unique<Client>(config);
        slot.generation = target.generation;
        slot.client->connect();
      }
      Json response = slot.client->call(request);
      if (attempt > 0) {
        repro::MutexLock lock(mutex_);
        ++reroutes_;
      }
      return response;
    } catch (const ClientError&) {
      slot.client.reset();
      const bool recovered = fail_over(shard, target.generation);
      if (!idempotent) {
        return make_error(
            ErrorCode::kInternal,
            "connection to shard " + std::to_string(shard) +
                " lost mid-request; the request may or may not have been "
                "applied (non-idempotent, not replayed)");
      }
      if (!recovered || attempt + 1 >= 2) {
        return make_retry_later(
            "shard " + std::to_string(shard) + " is unavailable",
            /*retry_after_ms=*/250);
      }
      // loop: retry on the (promoted or re-probed) endpoint
    }
    // ProtocolError from the shard propagates to dispatch()'s catch, which
    // re-encodes it (retry_later hint preserved) for the client.
  }
  return make_retry_later("shard " + std::to_string(shard) + " is unavailable",
                          /*retry_after_ms=*/250);
}

Json Router::route_open(const Json& request, Downstreams& downstreams) {
  std::string token;
  if (const Json* field = request.find("token")) token = field->as_string();
  std::string key = token;
  if (key.empty()) {
    repro::MutexLock lock(mutex_);
    key = "anon-" + std::to_string(anon_opens_++);
  }
  // A token-less open cannot be replayed, so its placement gets exactly one
  // shot; a tokened open re-places (skipping shards that just went down)
  // until it finds a live shard or the cluster is exhausted.
  const std::size_t placements = token.empty() ? 1 : config_.shards.size();
  for (std::size_t round = 0; round < placements; ++round) {
    const std::optional<std::size_t> shard = place(key);
    if (!shard) break;
    Json response = forward(*shard, request, /*idempotent=*/!token.empty(),
                            downstreams);
    const Json* ok = response.find("ok");
    const bool succeeded = ok != nullptr && ok->is_bool() && ok->as_bool();
    if (succeeded) {
      const Json* sid = response.find("session");
      if (sid != nullptr && sid->is_string())
        response.set("session", std::to_string(*shard) + ":" + sid->as_string());
      repro::MutexLock lock(mutex_);
      ++shard_states_[*shard].sessions_placed;
      return response;
    }
    // Re-place only when this shard just failed over to nothing (marked
    // down). Typed shard answers — admission retry_later included — are
    // the shard's verdict and propagate as-is.
    {
      repro::MutexLock lock(mutex_);
      if (shard_states_[*shard].health != ShardHealth::kDown) return response;
    }
  }
  return make_retry_later("no shard available for placement",
                          /*retry_after_ms=*/500);
}

Json Router::route_store(const std::string& op, const Json& request,
                         Downstreams& downstreams) {
  // A tenant's history lives on whichever shard served its sessions, so the
  // router fans store ops out to every primary: imports land on all shards
  // (first-value-wins dedup makes the broadcast idempotent and replay-safe),
  // stats sum across the cluster, and exports page through the shards
  // sequentially (re-importing the concatenated pages dedups back to the
  // union).
  if (op == "store_export") return route_store_export(request, downstreams);
  std::uint64_t imported = 0, import_duplicates = 0, records = 0, tenants = 0;
  bool any_enabled = false;
  // Per-shard digest/dir stay in the "shards" breakdown; every additive
  // counter is summed so a router-pointed client sees cluster totals.
  static constexpr const char* kStatCounters[] = {
      "appends",     "duplicates",  "rejected",    "evictions",
      "compactions", "io_errors",   "log_records", "log_bytes",
      "loaded_records"};
  std::uint64_t stat_totals[std::size(kStatCounters)] = {};
  Json per_shard = Json::array();
  for (std::size_t shard = 0; shard < config_.shards.size(); ++shard) {
    Json reply = forward(shard, request, /*idempotent=*/true, downstreams);
    const Json* ok = reply.find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) return reply;
    const auto add = [&reply](std::uint64_t& total, const char* key) {
      const Json* field = reply.find(key);
      if (field != nullptr && field->is_number()) total += field->as_uint64();
    };
    if (op == "store_import") {
      add(imported, "imported");
      add(import_duplicates, "duplicates");
      continue;
    }
    const Json* enabled = reply.find("store_enabled");
    any_enabled = any_enabled || (enabled != nullptr && enabled->is_bool() &&
                                  enabled->as_bool());
    add(records, "records");
    add(tenants, "tenants");
    for (std::size_t i = 0; i < std::size(kStatCounters); ++i)
      add(stat_totals[i], kStatCounters[i]);
    reply.set("shard", static_cast<std::uint64_t>(shard));
    per_shard.push_back(std::move(reply));
  }
  Json response = make_ok();
  if (op == "store_import") {
    response.set("imported", imported);
    response.set("duplicates", import_duplicates);
  } else {
    response.set("store_enabled", any_enabled);
    response.set("records", records);
    response.set("tenants", tenants);
    for (std::size_t i = 0; i < std::size(kStatCounters); ++i)
      response.set(kStatCounters[i], stat_totals[i]);
    response.set("shards", std::move(per_shard));
  }
  return response;
}

Json Router::route_store_export(const Json& request, Downstreams& downstreams) {
  // Composite cursor "<shard>|<daemon cursor>". One router page carries at
  // most one daemon page (each already sized to the daemon's frame budget),
  // so the merged stream stays inside kMaxFrameBytes no matter how many
  // shards hold rows. An explicit `limit` is a total-row budget: shards are
  // drained in index order until it is spent.
  std::size_t start_shard = 0;
  std::string sub_cursor;
  if (const Json* field = request.find("cursor")) {
    bool valid = field->is_string();
    if (valid) {
      const std::string text = field->as_string();
      const std::size_t bar = text.find('|');
      valid = bar != std::string::npos && bar > 0;
      for (std::size_t i = 0; valid && i < bar; ++i) {
        if (text[i] < '0' || text[i] > '9') valid = false;
        start_shard = start_shard * 10 + static_cast<std::size_t>(text[i] - '0');
      }
      if (valid && start_shard >= config_.shards.size()) valid = false;
      if (valid) sub_cursor = text.substr(bar + 1);
    }
    if (!valid) {
      return make_error(ErrorCode::kBadRequest, "malformed export cursor");
    }
  }
  const std::optional<std::uint64_t> limit = optional_uint(request, "limit");
  std::uint64_t remaining = limit.value_or(0);

  Json exported = Json::array();
  std::uint64_t records = 0;
  bool more = false;
  std::string next_cursor;
  for (std::size_t shard = start_shard; shard < config_.shards.size(); ++shard) {
    Json sub_request = Json::object();
    sub_request.set("op", "store_export");
    for (const char* key : {"benchmark", "arch"}) {
      if (const Json* field = request.find(key)) sub_request.set(key, *field);
    }
    if (limit) sub_request.set("limit", remaining);
    if (!sub_cursor.empty()) sub_request.set("cursor", sub_cursor);
    sub_cursor.clear();
    Json reply = forward(shard, sub_request, /*idempotent=*/true, downstreams);
    const Json* ok = reply.find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) return reply;
    std::uint64_t got = 0;
    if (const Json* field = reply.find("records");
        field != nullptr && field->is_number()) {
      got = field->as_uint64();
    }
    records += got;
    if (const Json* shard_tenants = reply.find("tenants");
        shard_tenants != nullptr && shard_tenants->is_array()) {
      for (const Json& tenant : shard_tenants->as_array())
        exported.push_back(tenant);
    }
    if (const Json* next = reply.find("next_cursor");
        next != nullptr && next->is_string()) {
      more = true;
      next_cursor = std::to_string(shard) + "|" + next->as_string();
      break;
    }
    if (limit) {
      remaining = remaining > got ? remaining - got : 0;
      if (remaining == 0) {
        // Budget spent at a shard boundary: later shards may hold more, so
        // hand back a resume point instead of silently stopping.
        if (shard + 1 < config_.shards.size()) {
          more = true;
          next_cursor = std::to_string(shard + 1) + "|";
        }
        break;
      }
      continue;
    }
    if (got > 0 && shard + 1 < config_.shards.size()) {
      // No budget given: bound the page to this shard's daemon page and
      // resume at the next shard.
      more = true;
      next_cursor = std::to_string(shard + 1) + "|";
      break;
    }
  }
  Json response = make_ok();
  response.set("tenants", std::move(exported));
  response.set("records", records);
  response.set("truncated", more);
  if (more) response.set("next_cursor", next_cursor);
  return response;
}

Json Router::aggregate_status() {
  Json response = make_ok();
  response.set("server", config_.name);
  response.set("version", static_cast<std::uint64_t>(kProtocolVersion));
  response.set("role", "router");
  std::uint64_t live = 0, opened = 0, closed = 0, evicted = 0, finished = 0;
  std::uint64_t asks = 0, tells = 0, duplicates = 0;
  // Cluster-wide quota rollup: additive counters sum, per-tenant tallies
  // merge by tenant name (a tenant's sessions may span shards).
  bool quota_enabled = false;
  static constexpr const char* kQuotaCounters[] = {
      "queue_depth", "queued",          "granted",        "timeouts",
      "shed_anonymous", "shed_over_quota", "shed_queue_full",
      "tell_pushbacks"};
  std::uint64_t quota_totals[std::size(kQuotaCounters)] = {};
  struct TenantTotals {
    std::uint64_t sessions = 0;
    std::uint64_t inflight_tells = 0;
    std::uint64_t queued = 0;
  };
  std::map<std::string, TenantTotals> tenant_totals;
  Json shards = Json::array();
  for (std::size_t index = 0; index < config_.shards.size(); ++index) {
    const std::vector<ShardSnapshot> snapshots = this->shards();
    const ShardSnapshot& snapshot = snapshots[index];
    Json entry = Json::object();
    entry.set("index", static_cast<std::uint64_t>(index));
    entry.set("endpoint",
              snapshot.host + ":" + std::to_string(snapshot.port));
    entry.set("health", to_string(snapshot.health));
    entry.set("has_standby", snapshot.has_standby);
    entry.set("promotions", static_cast<std::uint64_t>(snapshot.promotions));
    entry.set("reseeds", static_cast<std::uint64_t>(snapshot.reseeds));
    entry.set("sessions_placed",
              static_cast<std::uint64_t>(snapshot.sessions_placed));
    if (snapshot.health != ShardHealth::kDown) {
      // Bounded out-of-band call, never the pooled downstream Client: a
      // wedged (SIGSTOPped, partitioned) shard that the prober has not yet
      // marked down must not park status aggregation past the probe budget.
      const std::optional<Json> reply =
          bounded_call(snapshot.host, snapshot.port, config_.probe_timeout,
                       status_frame(), config_.name);
      const Json status = reply.value_or(Json::object());
      const Json* ok = status.find("ok");
      if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
        const auto add = [&status](std::uint64_t& total, const char* key) {
          const Json* field = status.find(key);
          if (field != nullptr && field->is_number()) total += field->as_uint64();
        };
        add(live, "live_sessions");
        add(opened, "opened");
        add(closed, "closed");
        add(evicted, "evicted");
        add(finished, "finished");
        add(asks, "asks");
        add(tells, "tells");
        add(duplicates, "duplicate_tells");
        if (const Json* quotas = status.find("quotas");
            quotas != nullptr && quotas->is_object()) {
          const Json* enabled = quotas->find("enabled");
          quota_enabled = quota_enabled || (enabled != nullptr &&
                                            enabled->is_bool() &&
                                            enabled->as_bool());
          for (std::size_t i = 0; i < std::size(kQuotaCounters); ++i) {
            const Json* field = quotas->find(kQuotaCounters[i]);
            if (field != nullptr && field->is_number())
              quota_totals[i] += field->as_uint64();
          }
          if (const Json* tenants = quotas->find("tenants");
              tenants != nullptr && tenants->is_array()) {
            for (const Json& tenant : tenants->as_array()) {
              const Json* name = tenant.find("tenant");
              if (name == nullptr || !name->is_string()) continue;
              TenantTotals& totals = tenant_totals[name->as_string()];
              const auto addt = [&tenant](std::uint64_t& total, const char* key) {
                const Json* field = tenant.find(key);
                if (field != nullptr && field->is_number())
                  total += field->as_uint64();
              };
              addt(totals.sessions, "sessions");
              addt(totals.inflight_tells, "inflight_tells");
              addt(totals.queued, "queued");
            }
          }
        }
        entry.set("status", status);
      } else {
        const Json* message = status.find("message");
        entry.set("probe_error",
                  message != nullptr && message->is_string()
                      ? message->as_string()
                      : std::string("status call failed"));
      }
    }
    shards.push_back(std::move(entry));
  }
  response.set("shards", std::move(shards));
  response.set("live_sessions", live);
  response.set("opened", opened);
  response.set("closed", closed);
  response.set("evicted", evicted);
  response.set("finished", finished);
  response.set("asks", asks);
  response.set("tells", tells);
  response.set("duplicate_tells", duplicates);
  {
    Json quotas = Json::object();
    quotas.set("enabled", quota_enabled);
    for (std::size_t i = 0; i < std::size(kQuotaCounters); ++i)
      quotas.set(kQuotaCounters[i], quota_totals[i]);
    Json tenants = Json::array();
    for (const auto& [name, totals] : tenant_totals) {
      Json tenant = Json::object();
      tenant.set("tenant", name);
      tenant.set("sessions", totals.sessions);
      tenant.set("inflight_tells", totals.inflight_tells);
      tenant.set("queued", totals.queued);
      tenants.push_back(std::move(tenant));
    }
    quotas.set("tenants", std::move(tenants));
    response.set("quotas", std::move(quotas));
  }
  {
    repro::MutexLock lock(mutex_);
    response.set("reroutes", static_cast<std::uint64_t>(reroutes_));
    response.set("active_connections",
                 static_cast<std::uint64_t>(connections_.size()));
  }
  return response;
}

}  // namespace repro::service
