#include "service/chaos_socket.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace repro::service {

ChaosModel ChaosModel::with_rate(double rate) noexcept {
  ChaosModel model;
  if (rate <= 0.0) return model;
  model.enabled = true;
  model.drop_probability = 0.35 * rate;
  model.torn_write_probability = 0.35 * rate;
  model.short_read_probability = 0.20 * rate;
  model.delay_probability = 0.10 * rate;
  return model;
}

void ChaosSocket::delay() {
  ++counters_.delays;
  std::this_thread::sleep_for(std::chrono::microseconds(model_.delay_us));
}

ByteIo::Io ChaosSocket::read_some(void* buffer, std::size_t capacity, std::size_t* got) {
  if (!model_.enabled) return inner_.read_some(buffer, capacity, got);
  if (rng_.bernoulli(model_.delay_probability)) delay();
  std::size_t effective = capacity;
  if (capacity > 1 && rng_.bernoulli(model_.short_read_probability)) {
    // 1..4 bytes: forces the frame reader through its reassembly path.
    effective = std::min<std::size_t>(
        capacity, 1 + static_cast<std::size_t>(rng_.next_below(4)));
    ++counters_.short_reads;
  }
  return inner_.read_some(buffer, effective, got);
}

bool ChaosSocket::write_all(const void* buffer, std::size_t length) {
  if (!model_.enabled) return inner_.write_all(buffer, length);
  if (rng_.bernoulli(model_.delay_probability)) delay();
  if (rng_.bernoulli(model_.drop_probability)) {
    // The frame is lost whole: the peer sees a clean between-frames close
    // or (if it was mid-read) a timeout then EOF.
    ++counters_.drops;
    inner_.shutdown_both();
    return false;
  }
  if (length > 1 && rng_.bernoulli(model_.torn_write_probability)) {
    // A strict prefix lands, then the stream dies: the peer's reader gets
    // a mid-frame EOF, exercising the torn-frame handling end to end.
    const std::size_t prefix =
        1 + static_cast<std::size_t>(rng_.next_below(length - 1));
    std::size_t sent = 0;
    while (sent < prefix) {
      const long n = inner_.write_some(static_cast<const char*>(buffer) + sent,
                                       prefix - sent);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ++counters_.torn_writes;
    inner_.shutdown_both();
    return false;
  }
  return inner_.write_all(buffer, length);
}

}  // namespace repro::service
