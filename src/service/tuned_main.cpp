// `tuned` — the tuning-as-a-service daemon. Binds a loopback JSON-lines
// endpoint, serves concurrent ask/tell sessions, and drains gracefully on
// SIGTERM/SIGINT (stop accepting, let live sessions finish up to
// --drain-timeout-ms, then hard-stop). See docs/SERVICE.md for the protocol.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "service/server.hpp"

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int signo) { g_signal.store(signo, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("tuned", "Tuning-as-a-service daemon (JSON-lines over TCP loopback)");
  cli.add_option("port", "listen port (0 = ephemeral, printed on startup)", "0");
  cli.add_option("threads", "connection worker threads", "8");
  cli.add_option("max-sessions", "maximum concurrent sessions", "256");
  cli.add_option("idle-timeout-ms", "evict sessions idle longer than this (<=0 disables)",
                 "300000");
  cli.add_option("drain-timeout-ms", "graceful drain budget on SIGTERM/SIGINT", "10000");
  cli.add_option("status-interval-ms", "periodic status log interval (<=0 disables)", "0");
  cli.add_option("state-dir",
                 "session WAL directory: journal every session and recover "
                 "live ones on restart (empty disables durability)",
                 "");
  cli.add_option("max-connections",
                 "refuse accepts beyond this many open connections with "
                 "retry_later (0 = unlimited)",
                 "0");
  cli.add_option("conn-idle-timeout-ms",
                 "reap connections that complete no request frame for this "
                 "long (slow-loris guard; <=0 disables)",
                 "0");
  cli.add_flag("standby",
               "start as a hot standby: refuse session ops with wrong_role "
               "and apply ship_* records from a primary until promoted");
  cli.add_flag("no-auto-rejoin",
               "when this primary loses a failover race (its follower was "
               "promoted and fences it), keep serving standalone instead of "
               "demoting into a standby of the new primary");
  cli.add_option("tenant-max-sessions",
                 "per-tenant concurrent-session quota (0 = unlimited)", "0");
  cli.add_option("tenant-max-inflight-tells",
                 "per-tenant concurrent in-flight tell quota (0 = unlimited)",
                 "0");
  cli.add_option("admission-queue-cap",
                 "bounded admission queue for named tenants at the session "
                 "cap (0 = shed immediately with retry_later)",
                 "0");
  cli.add_option("admission-wait-ms",
                 "longest an open may wait in the admission queue before "
                 "retry_later (0 disables queueing)",
                 "0");
  cli.add_option("ship-to",
                 "replicate this primary's WAL to a standby at this port "
                 "(host:port or bare port; 0 disables; requires --state-dir)",
                 "0");
  cli.add_option("ship-timeout-ms", "per-record replication RPC budget", "5000");
  cli.add_option("store-dir",
                 "persistent cross-tenant results store directory: record "
                 "every acknowledged tell of tenant-identified sessions and "
                 "serve warm-start priors (empty disables the store)",
                 "");
  cli.add_option("store-capacity",
                 "results-store live-record cap (oldest records evicted "
                 "past it)",
                 "1048576");
  if (!cli.parse(argc, argv)) return 2;

  service::ServerConfig config;
  config.port = static_cast<std::uint16_t>(cli.get_int("port"));
  config.connection_threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.limits.max_sessions = static_cast<std::size_t>(cli.get_int("max-sessions"));
  config.limits.idle_timeout = std::chrono::milliseconds(cli.get_int("idle-timeout-ms"));
  config.limits.state_dir = cli.get("state-dir");
  config.max_connections = static_cast<std::size_t>(cli.get_int("max-connections"));
  config.standby = cli.get_flag("standby");
  // Self-healing default for operator-run daemons: a deposed primary
  // demotes and rejoins its shard on its own (in-process embedders keep
  // the conservative ServerConfig default of off).
  config.auto_rejoin = !cli.get_flag("no-auto-rejoin");
  config.limits.quotas.max_sessions_per_tenant =
      static_cast<std::size_t>(cli.get_int("tenant-max-sessions"));
  config.limits.quotas.max_inflight_tells_per_tenant =
      static_cast<std::size_t>(cli.get_int("tenant-max-inflight-tells"));
  config.limits.quotas.admission_queue_cap =
      static_cast<std::size_t>(cli.get_int("admission-queue-cap"));
  const long long admission_wait = cli.get_int("admission-wait-ms");
  config.limits.quotas.admission_wait =
      std::chrono::milliseconds(admission_wait > 0 ? admission_wait : 0);
  config.store_dir = cli.get("store-dir");
  config.store_capacity = static_cast<std::size_t>(cli.get_int("store-capacity"));
  {
    const std::string ship_to = cli.get("ship-to");
    const std::size_t colon = ship_to.rfind(':');
    if (colon == std::string::npos) {
      config.limits.ship.port =
          static_cast<std::uint16_t>(std::strtoul(ship_to.c_str(), nullptr, 10));
    } else {
      config.limits.ship.host = ship_to.substr(0, colon);
      config.limits.ship.port = static_cast<std::uint16_t>(
          std::strtoul(ship_to.c_str() + colon + 1, nullptr, 10));
    }
    config.limits.ship.rpc_timeout =
        std::chrono::milliseconds(cli.get_int("ship-timeout-ms"));
    if (config.limits.ship.port != 0 && cli.get("state-dir").empty()) {
      log_error("tuned: --ship-to requires --state-dir (journals are the "
                "resync source)");
      return 2;
    }
    if (config.standby && config.limits.ship.port != 0) {
      log_error("tuned: --standby and --ship-to are mutually exclusive "
                "(chained replication is not supported)");
      return 2;
    }
  }
  const long long conn_idle = cli.get_int("conn-idle-timeout-ms");
  config.connection_idle_timeout =
      std::chrono::milliseconds(conn_idle > 0 ? conn_idle : 0);
  const auto drain_budget = std::chrono::milliseconds(cli.get_int("drain-timeout-ms"));
  const long long status_interval = cli.get_int("status-interval-ms");

  // A peer vanishing mid-write must surface as a send error on that
  // connection, not kill the daemon (writes also pass MSG_NOSIGNAL, but
  // belt-and-suspenders against any future plain write on a socket).
  std::signal(SIGPIPE, SIG_IGN);

  service::TuneServer server(config);
  try {
    server.start();
  } catch (const std::exception& error) {
    log_error("tuned: {}", error.what());
    return 1;
  }
  // Machine-readable port line so wrappers can scrape an ephemeral port.
  std::printf("tuned: ready port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  // Status-heartbeat pacing; never feeds tuning results.
  auto last_status = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
  while (g_signal.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (status_interval > 0) {
      const auto now = std::chrono::steady_clock::now();  // NOLINT(reprolint-wall-clock)
      if (now - last_status >= std::chrono::milliseconds(status_interval)) {
        last_status = now;
        const service::StatusReport report = server.sessions().status();
        log_info("tuned: status live={} opened={} closed={} evicted={} asks={} tells={} "
                 "connections={}",
                 report.live_sessions, report.opened, report.closed, report.evicted,
                 report.asks, report.tells, server.active_connections());
      }
    }
  }

  const int signo = g_signal.load(std::memory_order_relaxed);
  log_info("tuned: received signal {}, draining (budget {}ms)", signo,
           drain_budget.count());
  const bool drained = server.drain(drain_budget);
  if (!drained) {
    log_warn("tuned: drain deadline expired with {} live sessions; hard-stopping",
             server.sessions().live());
  }
  server.stop();
  log_info("tuned: shutdown complete (drained={})", drained);
  return 0;
}
