#include "service/wal_ship.hpp"

#include <utility>
#include <vector>

#include "common/log.hpp"
#include "service/session_wal.hpp"

namespace repro::service {

// One connected, handshaken follower link. Deliberately not service::Client:
// the shipper needs every blocking wait bounded by rpc_timeout (a hung
// follower must not park the primary's tell path), which means a read
// timeout tick and an explicit per-RPC deadline.
struct WalShipper::Link {
  Socket socket;
  FrameReader reader;

  explicit Link(Socket s) : socket(std::move(s)), reader(socket) {}

  /// Send one frame and await the response within `deadline`. Returns
  /// nullopt on any transport failure or deadline expiry.
  std::optional<Json> call(const Json& request,
                           std::chrono::steady_clock::time_point deadline) {
    if (!write_frame(socket, request)) return std::nullopt;
    std::string line;
    while (true) {
      const FrameStatus status = reader.next(&line);
      if (status == FrameStatus::kOk) break;
      if (status == FrameStatus::kTimeout) {
        // RPC deadline bookkeeping; never feeds tuning results.
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        continue;
      }
      return std::nullopt;  // closed / torn / oversized / error
    }
    try {
      return Json::parse(line);
    } catch (const JsonError&) {
      return std::nullopt;
    }
  }
};

WalShipper::WalShipper(ShipConfig config) : config_(std::move(config)) {}

WalShipper::~WalShipper() = default;

bool WalShipper::connected() const {
  repro::MutexLock lock(mutex_);
  return link_ != nullptr && !fenced_;
}

bool WalShipper::fenced() const {
  repro::MutexLock lock(mutex_);
  return fenced_;
}

ShipCounters WalShipper::counters() const {
  repro::MutexLock lock(mutex_);
  return counters_;
}

bool WalShipper::connect_now() {
  repro::MutexLock lock(mutex_);
  return ensure_link(/*ignore_backoff=*/true);
}

bool WalShipper::ensure_link(bool ignore_backoff) {
  if (fenced_ || config_.port == 0) return false;
  if (link_ != nullptr) return true;
  // Reconnect pacing; never feeds tuning results.
  const auto now = std::chrono::steady_clock::now();
  if (!ignore_backoff && attempted_ && now - last_attempt_ < config_.reconnect_interval)
    return false;
  attempted_ = true;
  last_attempt_ = now;

  Socket socket;
  try {
    socket = config_.host == "127.0.0.1" ? Socket::connect_loopback(config_.port)
                                         : Socket::connect_tcp(config_.host, config_.port);
  } catch (const std::exception& error) {
    log_debug("wal_ship: connect to {}:{} failed: {}", config_.host, config_.port,
              error.what());
    return false;
  }
  // Short read tick so Link::call can poll its deadline; bounded writes so
  // a follower that stops draining cannot park us either.
  socket.set_read_timeout(std::chrono::milliseconds(50));
  socket.set_write_timeout(config_.rpc_timeout);
  auto link = std::make_unique<Link>(std::move(socket));

  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("version", static_cast<std::uint64_t>(kProtocolVersion));
  hello.set("client", config_.name);
  // RPC deadline; never feeds tuning results.
  const auto deadline = std::chrono::steady_clock::now() + config_.rpc_timeout;
  const std::optional<Json> reply = link->call(hello, deadline);
  if (!reply || !reply->find("ok") || !reply->find("ok")->as_bool()) {
    log_warn("wal_ship: handshake with {}:{} failed", config_.host, config_.port);
    return false;
  }
  link_ = std::move(link);
  if (ever_connected_) ++counters_.reconnects;
  ever_connected_ = true;
  log_info("wal_ship: connected to follower {}:{}", config_.host, config_.port);
  // Every fresh link starts with a resync: sessions opened or told while
  // the link was down (or before the follower first came up) must reach
  // the follower before any new record does, or per-session seq order
  // breaks. Duplicates are acked idempotently, so over-shipping is safe.
  if (!resync()) {
    link_.reset();
    return false;
  }
  return true;
}

std::optional<Json> WalShipper::call(const Json& request) {
  if (link_ == nullptr) return std::nullopt;
  // RPC deadline; never feeds tuning results.
  const auto deadline = std::chrono::steady_clock::now() + config_.rpc_timeout;
  std::optional<Json> reply = link_->call(request, deadline);
  if (!reply) {
    ++counters_.failures;
    link_.reset();
    // The backoff paces consecutive failed connects, not the first retry
    // after a working link drops: a follower that bounced (restart on the
    // same port) should be re-dialed by the very next ship.
    attempted_ = false;
    log_warn("wal_ship: link to {}:{} lost (RPC failed or timed out); shard is "
             "degraded until resync",
             config_.host, config_.port);
    return std::nullopt;
  }
  const Json* ok = reply->find("ok");
  if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
    const Json* code = reply->find("error");
    const std::string text = code != nullptr && code->is_string() ? code->as_string() : "?";
    if (error_code_from(text) == ErrorCode::kWrongRole) {
      // The follower was promoted: this process is a stale primary. Stop
      // shipping forever — replicating into the new primary would corrupt it.
      fenced_ = true;
      link_.reset();
      log_error("wal_ship: follower {}:{} reports wrong_role — fenced (this "
                "primary is stale)",
                config_.host, config_.port);
      return std::nullopt;
    }
  }
  return reply;
}

bool WalShipper::resync() {
  if (config_.state_dir.empty()) return true;
  std::vector<std::string> paths;
  try {
    paths = list_session_wals(config_.state_dir);
  } catch (const std::exception& error) {
    log_warn("wal_ship: resync cannot list {}: {}", config_.state_dir, error.what());
    return false;
  }
  ++counters_.resyncs;
  std::size_t sessions = 0;
  for (const std::string& path : paths) {
    WalSession journal;
    try {
      journal = load_session_wal(path);
    } catch (const std::exception&) {
      continue;  // unrecoverable journal: recovery already dropped it
    }
    if (journal.closed) continue;  // about to be unlinked; nothing to replicate
    Json open = Json::object();
    open.set("op", "ship_open");
    open.set("session", journal.id);
    if (!journal.token.empty()) open.set("token", journal.token);
    open.set("open", encode_open(journal.open));
    std::optional<Json> reply = call(open);
    if (!reply || !reply->find("ok")->as_bool()) return false;
    ++counters_.records_shipped;
    for (const WalTell& tell : journal.tells) {
      Json record = Json::object();
      record.set("op", "ship_tell");
      record.set("session", journal.id);
      record.set("seq", tell.seq);
      record.set("config", encode_config(tell.config));
      encode_evaluation_into(record, tell.evaluation);
      reply = call(record);
      if (!reply || !reply->find("ok")->as_bool()) return false;
      ++counters_.records_shipped;
      if (reply->find("duplicate") != nullptr) ++counters_.duplicates_acked;
    }
    if (journal.evicted) {
      Json evict = Json::object();
      evict.set("op", "ship_evict");
      evict.set("session", journal.id);
      reply = call(evict);
      if (!reply || !reply->find("ok")->as_bool()) return false;
      ++counters_.records_shipped;
    }
    ++sessions;
  }
  log_info("wal_ship: resynced {} journaled session(s) to {}:{}", sessions,
           config_.host, config_.port);
  return true;
}

bool WalShipper::ship(const Json& request) {
  repro::MutexLock lock(mutex_);
  if (!ensure_link(/*ignore_backoff=*/false)) return false;
  std::optional<Json> reply = call(request);
  if (!reply && !fenced_) {
    // The link died under this record — usually a follower that bounced
    // and is already listening again. One immediate redial; the fresh
    // link's resync re-ships the journal (this record included, it was
    // journaled before shipping), then the retry collects its ack.
    if (ensure_link(/*ignore_backoff=*/true)) reply = call(request);
  }
  if (reply && !reply->find("ok")->as_bool()) {
    const Json* code = reply->find("error");
    const std::string text =
        code != nullptr && code->is_string() ? code->as_string() : "?";
    if (error_code_from(text) == ErrorCode::kUnknownSession) {
      // The follower restarted and lost this session (torn journal header,
      // wiped state dir). Re-ship everything once, then retry this record.
      if (resync()) reply = call(request);
    }
  }
  if (!reply) return false;
  const Json* ok = reply->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    ++counters_.failures;
    const Json* message = reply->find("message");
    log_warn("wal_ship: follower refused record: {}",
             message != nullptr && message->is_string() ? message->as_string()
                                                        : reply->dump());
    return false;
  }
  ++counters_.records_shipped;
  if (reply->find("duplicate") != nullptr) ++counters_.duplicates_acked;
  return true;
}

bool WalShipper::ship_open(const std::string& id, const std::string& token,
                           const OpenParams& params) {
  Json request = Json::object();
  request.set("op", "ship_open");
  request.set("session", id);
  if (!token.empty()) request.set("token", token);
  request.set("open", encode_open(params));
  return ship(request);
}

bool WalShipper::ship_tell(const std::string& id, std::uint64_t seq,
                           const tuner::Configuration& config,
                           const tuner::Evaluation& evaluation) {
  Json request = Json::object();
  request.set("op", "ship_tell");
  request.set("session", id);
  request.set("seq", seq);
  request.set("config", encode_config(config));
  encode_evaluation_into(request, evaluation);
  return ship(request);
}

bool WalShipper::ship_close(const std::string& id) {
  Json request = Json::object();
  request.set("op", "ship_close");
  request.set("session", id);
  return ship(request);
}

bool WalShipper::ship_evict(const std::string& id) {
  Json request = Json::object();
  request.set("op", "ship_evict");
  request.set("session", id);
  return ship(request);
}

bool WalShipper::ship_store_import(
    const std::vector<store::TenantSnapshot>& tenants) {
  Json request = Json::object();
  request.set("op", "store_import");
  request.set("tenants", encode_tenants(tenants));
  return ship(request);
}

}  // namespace repro::service
