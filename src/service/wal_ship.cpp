#include "service/wal_ship.hpp"

#include <utility>
#include <vector>

#include "common/log.hpp"
#include "service/session_wal.hpp"

namespace repro::service {

const char* to_string(ShipState state) noexcept {
  switch (state) {
    case ShipState::kDisabled: return "disabled";
    case ShipState::kDown: return "down";
    case ShipState::kCatchingUp: return "catching_up";
    case ShipState::kHot: return "hot";
    case ShipState::kFenced: return "fenced";
  }
  return "?";
}

// One connected, handshaken follower link. Deliberately not service::Client:
// the shipper needs every blocking wait bounded by rpc_timeout (a hung
// follower must not park the primary's tell path), which means a read
// timeout tick and an explicit per-RPC deadline.
struct WalShipper::Link {
  Socket socket;
  FrameReader reader;

  explicit Link(Socket s) : socket(std::move(s)), reader(socket) {}

  /// Send one frame and await the response within `deadline`. Returns
  /// nullopt on any transport failure or deadline expiry.
  std::optional<Json> call(const Json& request,
                           std::chrono::steady_clock::time_point deadline) {
    if (!write_frame(socket, request)) return std::nullopt;
    std::string line;
    while (true) {
      const FrameStatus status = reader.next(&line);
      if (status == FrameStatus::kOk) break;
      if (status == FrameStatus::kTimeout) {
        // RPC deadline bookkeeping; never feeds tuning results.
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        continue;
      }
      return std::nullopt;  // closed / torn / oversized / error
    }
    try {
      return Json::parse(line);
    } catch (const JsonError&) {
      return std::nullopt;
    }
  }
};

WalShipper::WalShipper(ShipConfig config,
                       std::shared_ptr<store::ResultsStore> store)
    : config_(std::move(config)), store_(std::move(store)) {
  state_.store(config_.port == 0 ? ShipState::kDisabled : ShipState::kDown,
               std::memory_order_release);
  const auto interval = config_.reconnect_interval;
  redial_thread_ = std::thread([this, interval] {  // NOLINT(reprolint-raw-thread)
    // Redial cadence; never feeds tuning results.
    while (true) {
      {
        std::unique_lock<std::mutex> lock(redial_mutex_);
        redial_cv_.wait_for(lock, interval, [this] { return stopping_; });
        if (stopping_) return;
      }
      redial_loop();
    }
  });
}

WalShipper::~WalShipper() {
  {
    std::unique_lock<std::mutex> lock(redial_mutex_);
    stopping_ = true;
  }
  redial_cv_.notify_all();
  if (redial_thread_.joinable()) redial_thread_.join();
}

void WalShipper::redial_loop() {
  repro::MutexLock lock(mutex_);
  if (link_ != nullptr || fenced_ || config_.port == 0 || !attempted_) return;
  // The backoff check inside ensure_link paces actual connect() calls; the
  // thread just guarantees *someone* keeps dialing while no client traffic
  // flows (a re-seeding follower must catch up on its own).
  ensure_link(/*ignore_backoff=*/false);
}

bool WalShipper::connected() const {
  repro::MutexLock lock(mutex_);
  return link_ != nullptr && !fenced_;
}

bool WalShipper::fenced() const {
  repro::MutexLock lock(mutex_);
  return fenced_;
}

bool WalShipper::enabled() const {
  repro::MutexLock lock(mutex_);
  return config_.port != 0;
}

ShipCounters WalShipper::counters() const {
  repro::MutexLock lock(mutex_);
  return counters_;
}

std::pair<std::string, std::uint16_t> WalShipper::target() const {
  repro::MutexLock lock(mutex_);
  return {config_.host, config_.port};
}

void WalShipper::retarget(const std::string& host, std::uint16_t port) {
  repro::MutexLock lock(mutex_);
  link_.reset();
  fenced_ = false;
  attempted_ = false;
  config_.host = host;
  config_.port = port;
  ++counters_.retargets;
  state_.store(port == 0 ? ShipState::kDisabled : ShipState::kDown,
               std::memory_order_release);
  if (port != 0) {
    log_info("wal_ship: retargeted to follower {}:{} (re-seed pending)", host,
             port);
  } else {
    log_info("wal_ship: shipping disabled (retargeted to port 0)");
  }
}

bool WalShipper::connect_now() {
  repro::MutexLock lock(mutex_);
  return ensure_link(/*ignore_backoff=*/true) && !fenced_;
}

bool WalShipper::ensure_link(bool ignore_backoff) {
  if (fenced_ || config_.port == 0) return false;
  if (link_ != nullptr) return true;
  // Reconnect pacing; never feeds tuning results.
  const auto now = std::chrono::steady_clock::now();
  if (!ignore_backoff && attempted_ && now - last_attempt_ < config_.reconnect_interval)
    return false;
  attempted_ = true;
  last_attempt_ = now;

  Socket socket;
  try {
    socket = config_.host == "127.0.0.1" ? Socket::connect_loopback(config_.port)
                                         : Socket::connect_tcp(config_.host, config_.port);
  } catch (const std::exception& error) {
    log_debug("wal_ship: connect to {}:{} failed: {}", config_.host, config_.port,
              error.what());
    return false;
  }
  // Short read tick so Link::call can poll its deadline; bounded writes so
  // a follower that stops draining cannot park us either.
  socket.set_read_timeout(std::chrono::milliseconds(50));
  socket.set_write_timeout(config_.rpc_timeout);
  auto link = std::make_unique<Link>(std::move(socket));

  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("version", static_cast<std::uint64_t>(kProtocolVersion));
  hello.set("client", config_.name);
  // RPC deadline; never feeds tuning results.
  const auto deadline = std::chrono::steady_clock::now() + config_.rpc_timeout;
  const std::optional<Json> reply = link->call(hello, deadline);
  if (!reply || !reply->find("ok") || !reply->find("ok")->as_bool()) {
    log_warn("wal_ship: handshake with {}:{} failed", config_.host, config_.port);
    return false;
  }
  // A follower that advertises itself as a primary was promoted (or was
  // never a standby): fence before shipping a single record. This closes
  // the no-journals gap — a deposed primary with an empty state dir would
  // otherwise never see a wrong_role answer.
  const Json* role = reply->find("role");
  if (role != nullptr && role->is_string() && role->as_string() == "primary") {
    fenced_ = true;
    state_.store(ShipState::kFenced, std::memory_order_release);
    log_error("wal_ship: target {}:{} advertises role primary — fenced (this "
              "primary is stale)",
              config_.host, config_.port);
    return false;
  }
  link_ = std::move(link);
  if (ever_connected_) ++counters_.reconnects;
  ever_connected_ = true;
  state_.store(ShipState::kCatchingUp, std::memory_order_release);
  log_info("wal_ship: connected to follower {}:{} (catching up)", config_.host,
           config_.port);
  // Every fresh link starts with a resync: sessions opened or told while
  // the link was down (or before the follower first came up) must reach
  // the follower before any new record does, or per-session seq order
  // breaks. Duplicates are acked idempotently, so over-shipping is safe.
  if (!resync()) {
    link_.reset();
    if (!fenced_) state_.store(ShipState::kDown, std::memory_order_release);
    return false;
  }
  state_.store(ShipState::kHot, std::memory_order_release);
  return true;
}

std::optional<Json> WalShipper::call(const Json& request) {
  if (link_ == nullptr) return std::nullopt;
  // RPC deadline; never feeds tuning results.
  const auto deadline = std::chrono::steady_clock::now() + config_.rpc_timeout;
  std::optional<Json> reply = link_->call(request, deadline);
  if (!reply) {
    ++counters_.failures;
    link_.reset();
    state_.store(ShipState::kDown, std::memory_order_release);
    // The backoff paces consecutive failed connects, not the first retry
    // after a working link drops: a follower that bounced (restart on the
    // same port) should be re-dialed by the very next ship.
    attempted_ = false;
    log_warn("wal_ship: link to {}:{} lost (RPC failed or timed out); shard is "
             "degraded until resync",
             config_.host, config_.port);
    return std::nullopt;
  }
  const Json* ok = reply->find("ok");
  if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
    const Json* code = reply->find("error");
    const std::string text = code != nullptr && code->is_string() ? code->as_string() : "?";
    if (error_code_from(text) == ErrorCode::kWrongRole) {
      // The follower was promoted: this process is a stale primary. Stop
      // shipping until a retarget() re-seeds us at a legitimate follower —
      // replicating into the new primary would corrupt it.
      fenced_ = true;
      link_.reset();
      state_.store(ShipState::kFenced, std::memory_order_release);
      log_error("wal_ship: follower {}:{} reports wrong_role — fenced (this "
                "primary is stale)",
                config_.host, config_.port);
      return std::nullopt;
    }
  }
  return reply;
}

bool WalShipper::resync() {
  if (config_.state_dir.empty()) return true;
  std::vector<std::string> paths;
  try {
    paths = list_session_wals(config_.state_dir);
  } catch (const std::exception& error) {
    log_warn("wal_ship: resync cannot list {}: {}", config_.state_dir, error.what());
    return false;
  }
  ++counters_.resyncs;
  // Snapshot before journals: the digest chains each tenant's rows in
  // insertion order, so a fresh follower must receive the store exactly as
  // the primary holds it. Journal-derived rows then dedup into positions
  // the snapshot already fixed; shipping journals first would put
  // tell-derived rows ahead of older seed-import rows and the digests
  // could never meet.
  if (!resync_store()) return false;
  std::size_t sessions = 0;
  for (const std::string& path : paths) {
    WalSession journal;
    try {
      journal = load_session_wal(path);
    } catch (const std::exception&) {
      continue;  // unrecoverable journal: recovery already dropped it
    }
    if (journal.closed) continue;  // about to be unlinked; nothing to replicate
    Json open = Json::object();
    open.set("op", "ship_open");
    open.set("session", journal.id);
    if (!journal.token.empty()) open.set("token", journal.token);
    open.set("open", encode_open(journal.open));
    std::optional<Json> reply = call(open);
    if (!reply || !reply->find("ok")->as_bool()) return false;
    ++counters_.records_shipped;
    for (const WalTell& tell : journal.tells) {
      Json record = Json::object();
      record.set("op", "ship_tell");
      record.set("session", journal.id);
      record.set("seq", tell.seq);
      record.set("config", encode_config(tell.config));
      encode_evaluation_into(record, tell.evaluation);
      reply = call(record);
      if (!reply || !reply->find("ok")->as_bool()) return false;
      ++counters_.records_shipped;
      if (reply->find("duplicate") != nullptr) ++counters_.duplicates_acked;
    }
    if (journal.evicted) {
      Json evict = Json::object();
      evict.set("op", "ship_evict");
      evict.set("session", journal.id);
      reply = call(evict);
      if (!reply || !reply->find("ok")->as_bool()) return false;
      ++counters_.records_shipped;
    }
    ++sessions;
  }
  if (!store_digest_gate()) return false;
  log_info("wal_ship: resynced {} journaled session(s) to {}:{} — follower is "
           "hot",
           sessions, config_.host, config_.port);
  return true;
}

bool WalShipper::resync_store() {
  if (store_ == nullptr) return true;
  // Ship the snapshot page by page. Rows the follower already derived from
  // shipped tells dedup server-side, so over-shipping is safe; rows only the
  // store holds (seed imports, history from evicted sessions) are exactly
  // what a re-seeded follower is missing.
  std::size_t rows = 0;
  std::string cursor_tenant;
  std::size_t cursor_row = 0;
  while (true) {
    const store::ResultsStore::ExportPage page = store_->export_page(
        "", "", config_.store_page_rows, cursor_tenant, cursor_row);
    std::size_t page_rows = 0;
    for (const store::TenantSnapshot& tenant : page.tenants) {
      page_rows += tenant.rows.size();
    }
    if (page_rows != 0) {
      Json request = Json::object();
      request.set("op", "store_import");
      request.set("tenants", encode_tenants(page.tenants));
      const std::optional<Json> reply = call(request);
      if (!reply || !reply->find("ok")->as_bool()) {
        log_warn("wal_ship: store snapshot page refused by {}:{}", config_.host,
                 config_.port);
        return false;
      }
      rows += page_rows;
    }
    if (!page.more) break;
    cursor_tenant = page.next_tenant_flat;
    cursor_row = page.next_row;
  }
  counters_.store_rows_resynced += rows;
  return true;
}

bool WalShipper::store_digest_gate() {
  if (store_ == nullptr) return true;
  // The follower flips hot only when its store is byte-equivalent to ours
  // — same rows, same per-tenant insertion order. Runs after the journal
  // re-ship so tell-derived rows are already on both sides.
  Json probe = Json::object();
  probe.set("op", "store_stats");
  const std::optional<Json> reply = call(probe);
  if (!reply || !reply->find("ok")->as_bool()) return false;
  const Json* enabled = reply->find("store_enabled");
  if (enabled == nullptr || !enabled->is_bool() || !enabled->as_bool()) {
    // Journal-only follower: nothing to gate on (it cannot diverge on a
    // store it does not have). Promotion from it loses store history — the
    // operator chose that by running it storeless.
    log_warn("wal_ship: follower {}:{} has no results store; digest gate "
             "skipped",
             config_.host, config_.port);
    return true;
  }
  const Json* digest = reply->find("digest");
  const std::uint64_t theirs =
      digest != nullptr && digest->is_number() ? digest->as_uint64() : 0;
  const std::uint64_t ours = store_->digest();
  if (theirs != ours) {
    // A concurrent tell may have reached our store after the snapshot page
    // that covered its tenant; the retry's resync re-ships and converges.
    // A *persistent* mismatch means real divergence (or mismatched store
    // capacities) and the follower must never flip hot.
    log_warn("wal_ship: store digest mismatch with {}:{} (ours {}, theirs "
             "{}); follower stays catching up",
             config_.host, config_.port, ours, theirs);
    return false;
  }
  return true;
}

bool WalShipper::ship(const Json& request) {
  // Disabled shippers (port 0 — a durable daemon with no follower) sit on
  // every tell path; skip the mutex entirely.
  if (state() == ShipState::kDisabled) return false;
  repro::MutexLock lock(mutex_);
  if (!ensure_link(/*ignore_backoff=*/false)) return false;
  std::optional<Json> reply = call(request);
  if (!reply && !fenced_) {
    // The link died under this record — usually a follower that bounced
    // and is already listening again. One immediate redial; the fresh
    // link's resync re-ships the journal (this record included, it was
    // journaled before shipping), then the retry collects its ack.
    if (ensure_link(/*ignore_backoff=*/true)) reply = call(request);
  }
  if (reply && !reply->find("ok")->as_bool()) {
    const Json* code = reply->find("error");
    const std::string text =
        code != nullptr && code->is_string() ? code->as_string() : "?";
    if (error_code_from(text) == ErrorCode::kUnknownSession) {
      // The follower restarted and lost this session (torn journal header,
      // wiped state dir). Re-ship everything once, then retry this record.
      if (resync()) reply = call(request);
    }
  }
  if (!reply) return false;
  const Json* ok = reply->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    ++counters_.failures;
    const Json* message = reply->find("message");
    log_warn("wal_ship: follower refused record: {}",
             message != nullptr && message->is_string() ? message->as_string()
                                                        : reply->dump());
    return false;
  }
  ++counters_.records_shipped;
  if (reply->find("duplicate") != nullptr) ++counters_.duplicates_acked;
  return true;
}

bool WalShipper::ship_open(const std::string& id, const std::string& token,
                           const OpenParams& params) {
  Json request = Json::object();
  request.set("op", "ship_open");
  request.set("session", id);
  if (!token.empty()) request.set("token", token);
  request.set("open", encode_open(params));
  return ship(request);
}

bool WalShipper::ship_tell(const std::string& id, std::uint64_t seq,
                           const tuner::Configuration& config,
                           const tuner::Evaluation& evaluation) {
  Json request = Json::object();
  request.set("op", "ship_tell");
  request.set("session", id);
  request.set("seq", seq);
  request.set("config", encode_config(config));
  encode_evaluation_into(request, evaluation);
  return ship(request);
}

bool WalShipper::ship_close(const std::string& id) {
  Json request = Json::object();
  request.set("op", "ship_close");
  request.set("session", id);
  return ship(request);
}

bool WalShipper::ship_evict(const std::string& id) {
  Json request = Json::object();
  request.set("op", "ship_evict");
  request.set("session", id);
  return ship(request);
}

bool WalShipper::ship_store_import(
    const std::vector<store::TenantSnapshot>& tenants) {
  Json request = Json::object();
  request.set("op", "store_import");
  request.set("tenants", encode_tenants(tenants));
  return ship(request);
}

}  // namespace repro::service
