#pragma once
// Canonical fingerprint of a search space.
//
// The results store keys history by (benchmark, arch, space fingerprint):
// prior observations are only reusable when the space they were measured in
// is *identical* — same parameters in the same order, same inclusive ranges,
// same executability constraint. A ParamSpace holds its constraint as an
// opaque std::function, so the fingerprint is computed from the declarative
// description that crosses the wire instead (the ordered ParamRange list
// plus the constraint identifier from OpenParams), which is exactly the
// information every daemon reconstructs the space from. Two daemons — or
// two runs years apart — that decode the same open request therefore derive
// the same fingerprint, byte for byte.
//
// Format: 16 lowercase hex digits of an FNV-1a 64-bit hash over a versioned
// canonical serialization, finalized through splitmix64 so near-identical
// spaces land far apart. The serialization uses ASCII unit separators, so
// no parameter name can collide two different spaces onto one string.

#include <string>
#include <vector>

#include "tuner/search_space.hpp"

namespace repro::store {

/// Fingerprint of a declarative space description. `constraint` is the wire
/// identifier ("none" or "wg256" today); callers must pass the same ordered
/// param list they would put in an open request.
[[nodiscard]] std::string space_fingerprint(const std::vector<tuner::ParamRange>& params,
                                            const std::string& constraint);

/// Fingerprint of the paper's default 6-parameter space (constraint wg256).
/// This is what an open request without a custom space resolves to.
[[nodiscard]] std::string paper_space_fingerprint();

}  // namespace repro::store
