#include "store/results_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace repro::store {
namespace {

constexpr char kUnitSep = '\x1f';

/// EINTR-safe full write of one buffer to fd (session_wal idiom).
[[nodiscard]] bool write_fully(int fd, const char* data, std::size_t length) {
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::write(fd, data + done, length - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

/// fsync the directory containing `path` so creates/renames survive a crash.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

[[noreturn]] void store_fail(const std::string& path, const std::string& what) {
  throw StoreError("results store " + path + ": " + what);
}

std::uint64_t hash_text(std::uint64_t seed, std::string_view text) {
  std::uint64_t h = seed ^ 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct ParsedRecord {
  StoreKey key;
  tuner::Configuration config;
  double value = 0.0;
  bool valid = false;
};

/// Parse one log line; throws (JsonError/std::runtime_error) on damage.
ParsedRecord parse_record(std::string_view line) {
  const Json record = Json::parse(line);
  if (!record.is_object()) throw std::runtime_error("record is not an object");
  ParsedRecord parsed;
  const Json* b = record.find("b");
  const Json* a = record.find("a");
  const Json* s = record.find("s");
  const Json* c = record.find("c");
  const Json* ok = record.find("ok");
  if (b == nullptr || a == nullptr || s == nullptr || c == nullptr || ok == nullptr) {
    throw std::runtime_error("missing record field");
  }
  parsed.key.benchmark = b->as_string();
  parsed.key.arch = a->as_string();
  parsed.key.fingerprint = s->as_string();
  for (const Json& value : c->as_array()) {
    parsed.config.push_back(static_cast<int>(value.as_int64()));
  }
  if (parsed.config.empty()) throw std::runtime_error("empty config");
  parsed.valid = ok->as_bool();
  const Json* v = record.find("v");
  parsed.value = (v == nullptr || v->is_null()) ? std::numeric_limits<double>::quiet_NaN()
                                                : v->as_double();
  return parsed;
}

}  // namespace

std::string StoreKey::flat() const {
  std::string flat;
  flat.reserve(benchmark.size() + arch.size() + fingerprint.size() + 2);
  flat += benchmark;
  flat += kUnitSep;
  flat += arch;
  flat += kUnitSep;
  flat += fingerprint;
  return flat;
}

std::string config_flat_key(const tuner::Configuration& config) {
  std::string flat;
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i != 0) flat += ',';
    flat += std::to_string(config[i]);
  }
  return flat;
}

ResultsStore::ResultsStore(StoreOptions options) : options_(std::move(options)) {
  std::size_t shards = 1;
  while (shards < std::max<std::size_t>(options_.shards, 1)) shards <<= 1;
  shard_count_ = shards;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

ResultsStore::~ResultsStore() {
  MutexLock lock(log_mutex_);
  if (fd_ >= 0) (void)::close(fd_);
  fd_ = -1;
}

std::string ResultsStore::log_path() const {
  return options_.dir + "/results.log";
}

ResultsStore::Shard& ResultsStore::shard_for(const std::string& tenant_flat) const noexcept {
  std::uint64_t state = hash_text(0, tenant_flat);
  return shards_[splitmix64(state) & (shard_count_ - 1)];
}

ResultsStore::InsertOutcome ResultsStore::insert_in_memory(
    const StoreKey& key, const tuner::Configuration& config, double value, bool valid,
    std::string* error) {
  const std::string tenant_flat = key.flat();
  const std::string config_key = config_flat_key(config);
  Shard& shard = shard_for(tenant_flat);
  MutexLock lock(shard.mutex);
  auto [it, created] = shard.by_key.try_emplace(tenant_flat);
  Tenant& tenant = it->second;
  if (created) {
    tenant.key = key;
  } else if (!tenant.rows.empty() && tenant.rows.front().config.size() != config.size()) {
    if (error != nullptr) {
      *error = "config has " + std::to_string(config.size()) + " values but tenant " +
               key.benchmark + "/" + key.arch + " holds " +
               std::to_string(tenant.rows.front().config.size()) +
               "-dimensional history for space " + key.fingerprint;
    }
    return InsertOutcome::kIncompatible;
  }
  if (!tenant.by_config.emplace(config_key, tenant.rows.size()).second) {
    return InsertOutcome::kDuplicate;  // first value wins
  }
  tenant.rows.push_back(StoreRecord{config, value, valid});
  return InsertOutcome::kInserted;
}

void ResultsStore::evict_over_capacity() {
  if (options_.capacity == 0) return;
  while (live_records_ > options_.capacity && !fifo_.empty()) {
    const FifoEntry victim = std::move(fifo_.front());
    fifo_.pop_front();
    Shard& shard = shard_for(victim.tenant_flat);
    MutexLock lock(shard.mutex);
    auto it = shard.by_key.find(victim.tenant_flat);
    if (it == shard.by_key.end()) continue;
    Tenant& tenant = it->second;
    const auto row_it = tenant.by_config.find(victim.config_flat);
    if (row_it == tenant.by_config.end()) continue;
    const std::size_t row = row_it->second;
    tenant.by_config.erase(row_it);
    tenant.rows.erase(tenant.rows.begin() + static_cast<std::ptrdiff_t>(row));
    // Pure index fix-up: every entry above the erased row shifts by one,
    // in any visit order.
    // NOLINTNEXTLINE(reprolint-unordered-iteration)
    for (auto& [config_key, index] : tenant.by_config) {
      (void)config_key;
      if (index > row) --index;
    }
    if (tenant.rows.empty()) shard.by_key.erase(it);
    --live_records_;
    ++evictions_;
  }
}

std::string ResultsStore::encode_record(const StoreKey& key,
                                        const tuner::Configuration& config, double value,
                                        bool valid) const {
  Json record = Json::object();
  record.set("b", key.benchmark);
  record.set("a", key.arch);
  record.set("s", key.fingerprint);
  Json array = Json::array();
  for (const int v : config) array.push_back(v);
  record.set("c", std::move(array));
  if (std::isnan(value)) {
    record.set("v", nullptr);
  } else {
    record.set("v", value);
  }
  record.set("ok", valid);
  std::string line = record.dump();
  line.push_back('\n');
  return line;
}

void ResultsStore::append_to_log(const StoreKey& key, const tuner::Configuration& config,
                                 double value, bool valid) {
  if (fd_ < 0) return;
  const std::string line = encode_record(key, config, value, valid);
  if (!write_fully(fd_, line.data(), line.size()) ||
      (options_.fsync_appends && ::fsync(fd_) != 0)) {
    log_error("results store: append failed for {}: {}", log_path(),
              std::strerror(errno));
    (void)::close(fd_);
    fd_ = -1;  // stop retrying a dead log on every subsequent record
    ++io_errors_;
    return;
  }
  ++log_records_;
  log_bytes_ += line.size();
}

bool ResultsStore::append(const StoreKey& key, const tuner::Configuration& config,
                          double value, bool valid) {
  if (config.empty()) throw StoreError("results store: empty configuration");
  // log_mutex_ held across the index insert AND the log write: concurrent
  // appends to one tenant must land in the log in the same order they landed
  // in the rows vector, or a reload would replay a different insertion order
  // than the live store holds (breaking digest()-identity after restart).
  MutexLock lock(log_mutex_);
  std::string error;
  const InsertOutcome outcome = insert_in_memory(key, config, value, valid, &error);
  switch (outcome) {
    case InsertOutcome::kDuplicate:
      ++duplicates_;
      return false;
    case InsertOutcome::kIncompatible:
      ++rejected_;
      throw IncompatibleSpaceError("results store: " + error);
    case InsertOutcome::kInserted:
      break;
  }
  ++appends_;
  ++live_records_;
  fifo_.push_back(FifoEntry{key.flat(), config_flat_key(config)});
  append_to_log(key, config, value, valid);
  evict_over_capacity();
  // Opportunistic compaction: once evictions have left more dead lines in
  // the log than live records (and at least compact_slack of them), the log
  // no longer pays for its size.
  if (fd_ >= 0 && log_records_ > live_records_ &&
      log_records_ - live_records_ > std::max(options_.compact_slack, live_records_)) {
    compact_locked();
  }
  return true;
}

void ResultsStore::load() {
  MutexLock lock(log_mutex_);
  if (loaded_) throw StoreError("results store: load() called twice");
  loaded_ = true;
  if (!persistent()) return;
  const auto load_start = std::chrono::steady_clock::now();
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    store_fail(options_.dir, std::strerror(errno));
  }
  const std::string path = log_path();
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream whole;
      whole << in.rdbuf();
      text = whole.str();
    }
  }

  // Replay, applying the same dedup + capacity rules as live appends so the
  // surviving set is a pure function of the append stream (torn-tail rules
  // per session_wal: drop an unterminated or malformed final line, refuse a
  // malformed interior one).
  std::uint64_t valid_bytes = 0;
  std::size_t offset = 0;
  std::size_t line_count = 0;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    const bool terminated = newline != std::string::npos;
    if (!terminated) {
      torn_tail_ = true;  // crash interrupted the final append
      break;
    }
    const std::string_view line(text.data() + offset, newline - offset);
    const bool final_line = newline + 1 == text.size();
    try {
      const ParsedRecord parsed = parse_record(line);
      std::string error;
      const InsertOutcome outcome =
          insert_in_memory(parsed.key, parsed.config, parsed.value, parsed.valid, &error);
      if (outcome == InsertOutcome::kIncompatible) {
        throw std::runtime_error(error);
      }
      if (outcome == InsertOutcome::kInserted) {
        ++live_records_;
        fifo_.push_back(FifoEntry{parsed.key.flat(), config_flat_key(parsed.config)});
        evict_over_capacity();
        ++loaded_records_;
      } else {
        ++duplicates_;
      }
    } catch (const StoreError&) {
      throw;
    } catch (const std::exception& error) {
      if (final_line) {
        log_warn("results store: dropping malformed final record in {}: {}", path,
                 error.what());
        torn_tail_ = true;
        break;
      }
      store_fail(path, std::string("malformed interior record: ") + error.what());
    }
    ++line_count;
    offset = newline + 1;
    valid_bytes = offset;
  }
  log_records_ = line_count;
  log_bytes_ = valid_bytes;

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) store_fail(path, std::strerror(errno));
  sync_parent_dir(path);
  // Truncate any torn tail away before the first new append lands after it.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 || ::fsync(fd) != 0) {
    const std::string what = std::strerror(errno);
    (void)::close(fd);
    store_fail(path, "cannot truncate torn tail: " + what);
  }
  fd_ = fd;
  // Diagnostic load timing only: never feeds any result (see reprolint
  // allowlist justification for src/store/).
  const auto elapsed = std::chrono::steady_clock::now() - load_start;
  log_info("results store: loaded {} records ({} tenants) from {} in {}ms{}",
           live_records_, tenant_count(), path,
           std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
           torn_tail_ ? " [torn tail dropped]" : "");
}

std::vector<StoreRecord> ResultsStore::query(const StoreKey& key,
                                             std::size_t max_rows) const {
  const std::string tenant_flat = key.flat();
  Shard& shard = shard_for(tenant_flat);
  MutexLock lock(shard.mutex);
  const auto it = shard.by_key.find(tenant_flat);
  if (it == shard.by_key.end()) return {};
  const std::vector<StoreRecord>& rows = it->second.rows;
  if (max_rows == 0 || rows.size() <= max_rows) return rows;
  return std::vector<StoreRecord>(rows.end() - static_cast<std::ptrdiff_t>(max_rows),
                                  rows.end());
}

std::size_t ResultsStore::tenant_rows(const StoreKey& key) const {
  const std::string tenant_flat = key.flat();
  Shard& shard = shard_for(tenant_flat);
  MutexLock lock(shard.mutex);
  const auto it = shard.by_key.find(tenant_flat);
  return it == shard.by_key.end() ? 0 : it->second.rows.size();
}

std::vector<TenantSnapshot> ResultsStore::export_tenants(const std::string& benchmark,
                                                         const std::string& arch,
                                                         std::size_t max_records) const {
  return export_page(benchmark, arch, max_records, "", 0).tenants;
}

ResultsStore::ExportPage ResultsStore::export_page(
    const std::string& benchmark, const std::string& arch,
    std::size_t max_records, const std::string& start_tenant_flat,
    std::size_t start_row) const {
  // Collect under per-shard locks, then sort: emission order is always the
  // sorted copy, never the hash-map order.
  std::vector<TenantSnapshot> all;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [flat, tenant] : shard.by_key) {  // NOLINT(reprolint-unordered-iteration): collect-then-sort — order is normalized below
      (void)flat;
      if (!benchmark.empty() && tenant.key.benchmark != benchmark) continue;
      if (!arch.empty() && tenant.key.arch != arch) continue;
      all.push_back(TenantSnapshot{tenant.key, tenant.rows});
    }
  }
  std::sort(all.begin(), all.end(), [](const TenantSnapshot& a, const TenantSnapshot& b) {
    return a.key.flat() < b.key.flat();
  });

  ExportPage page;
  std::size_t budget = max_records;
  for (TenantSnapshot& tenant : all) {
    const std::string flat = tenant.key.flat();
    if (!start_tenant_flat.empty() && flat < start_tenant_flat) continue;
    const std::size_t row = flat == start_tenant_flat ? start_row : 0;
    if (row >= tenant.rows.size()) continue;  // already fully emitted
    if (max_records > 0 && budget == 0) {
      page.more = true;
      page.next_tenant_flat = flat;
      page.next_row = row;
      break;
    }
    const std::size_t available = tenant.rows.size() - row;
    const std::size_t take =
        max_records == 0 ? available : std::min(available, budget);
    TenantSnapshot slice{tenant.key, {}};
    slice.rows.assign(tenant.rows.begin() + static_cast<std::ptrdiff_t>(row),
                      tenant.rows.begin() + static_cast<std::ptrdiff_t>(row + take));
    page.tenants.push_back(std::move(slice));
    if (max_records > 0) budget -= take;
    if (take < available) {
      page.more = true;
      page.next_tenant_flat = flat;
      page.next_row = row + take;
      break;
    }
  }
  return page;
}

std::size_t ResultsStore::import_tenants(const std::vector<TenantSnapshot>& tenants) {
  std::size_t imported = 0;
  for (const TenantSnapshot& tenant : tenants) {
    for (const StoreRecord& row : tenant.rows) {
      if (append(tenant.key, row.config, row.value, row.valid)) ++imported;
    }
  }
  return imported;
}

StoreStats ResultsStore::stats() const {
  StoreStats stats;
  {
    MutexLock lock(log_mutex_);
    stats.records = live_records_;
    stats.appends = appends_;
    stats.duplicates = duplicates_;
    stats.rejected = rejected_;
    stats.evictions = evictions_;
    stats.compactions = compactions_;
    stats.io_errors = io_errors_;
    stats.log_records = log_records_;
    stats.log_bytes = log_bytes_;
    stats.loaded_records = loaded_records_;
    stats.torn_tail = torn_tail_;
  }
  stats.tenants = tenant_count();
  return stats;
}

std::size_t ResultsStore::tenant_count() const {
  std::size_t tenants = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    tenants += shard.by_key.size();
  }
  return tenants;
}

std::size_t ResultsStore::compact() {
  MutexLock lock(log_mutex_);
  if (fd_ < 0) return 0;
  const std::size_t before = log_records_;
  compact_locked();
  return before - log_records_;
}

void ResultsStore::compact_locked() {
  const std::string path = log_path();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    log_error("results store: compaction cannot create {}: {}", tmp,
              std::strerror(errno));
    ++io_errors_;
    return;
  }
  // The FIFO is exactly the live set in insertion order; rewriting from it
  // preserves replay order (and therefore eviction determinism) on reload.
  std::uint64_t bytes = 0;
  std::size_t written = 0;
  bool ok = true;
  for (const FifoEntry& entry : fifo_) {
    std::string line;
    {
      Shard& shard = shard_for(entry.tenant_flat);
      MutexLock shard_lock(shard.mutex);
      const auto it = shard.by_key.find(entry.tenant_flat);
      if (it == shard.by_key.end()) continue;
      const Tenant& tenant = it->second;
      const auto row_it = tenant.by_config.find(entry.config_flat);
      if (row_it == tenant.by_config.end()) continue;
      const StoreRecord& row = tenant.rows[row_it->second];
      line = encode_record(tenant.key, row.config, row.value, row.valid);
    }
    if (!write_fully(fd, line.data(), line.size())) {
      ok = false;
      break;
    }
    bytes += line.size();
    ++written;
  }
  if (!ok || ::fsync(fd) != 0 || ::close(fd) != 0 ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    log_error("results store: compaction of {} failed: {}", path, std::strerror(errno));
    if (!ok) (void)::close(fd);
    (void)::unlink(tmp.c_str());
    ++io_errors_;
    return;
  }
  sync_parent_dir(path);
  // Future appends go to the compacted file: the old fd points at the
  // unlinked inode.
  const int new_fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ >= 0) (void)::close(fd_);
  fd_ = new_fd;
  if (new_fd < 0) {
    log_error("results store: cannot reopen {} after compaction: {}", path,
              std::strerror(errno));
    ++io_errors_;
  }
  log_records_ = written;
  log_bytes_ = bytes;
  ++compactions_;
}

std::size_t ResultsStore::reset() {
  MutexLock lock(log_mutex_);
  // Lock order log_mutex_ → shard, same as append/eviction/compaction.
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    MutexLock shard_lock(shard.mutex);
    for (const auto& [flat, tenant] : shard.by_key) dropped += tenant.rows.size();  // NOLINT(reprolint-unordered-iteration)
    shard.by_key.clear();
  }
  fifo_.clear();
  live_records_ = 0;
  log_records_ = 0;
  log_bytes_ = 0;
  loaded_records_ = 0;
  torn_tail_ = false;
  if (fd_ >= 0) {
    if (::ftruncate(fd_, 0) != 0 || ::fsync(fd_) != 0) {
      log_error("results store: reset cannot truncate {}: {}", log_path(),
                std::strerror(errno));
      ++io_errors_;
    }
  }
  if (dropped != 0) log_info("results store: reset dropped {} live row(s)", dropped);
  return dropped;
}

std::uint64_t ResultsStore::digest() const {
  const std::vector<TenantSnapshot> tenants = export_tenants();
  std::uint64_t h = hash_text(0, "store-digest:v1");
  for (const TenantSnapshot& tenant : tenants) {
    h = hash_text(h, tenant.key.flat());
    for (const StoreRecord& row : tenant.rows) {
      h = hash_text(h, config_flat_key(row.config));
      std::uint64_t bits = 0;
      if (!std::isnan(row.value)) std::memcpy(&bits, &row.value, sizeof bits);
      std::uint64_t state = h ^ bits ^ (row.valid ? 1u : 0u);
      h = splitmix64(state);
    }
  }
  return h;
}

}  // namespace repro::store
