#pragma once
// Persistent cross-tenant results store.
//
// A daemon-wide, append-only history of (benchmark, arch, space fingerprint,
// config) → observed runtime, surviving restarts: the PR-2 mean cache
// generalized across sessions, tenants and process lifetimes. Warm-started
// searches (tuner/warm_start.hpp) seed their models from a tenant's prior
// history instead of random init.
//
// Durability follows the session-WAL rules (service/session_wal): one
// JSON-lines log file (`<dir>/results.log`), each record appended with a
// single write() and fsync()'d before append() returns, so a record the
// caller acted on is never lost to a crash. On load, an unterminated or
// malformed *final* line is a torn tail — dropped and truncated away before
// the next append — while a malformed interior record is a hard error
// (StoreError): an append-only file killed mid-write can only be damaged at
// its end, so interior damage means something else corrupted the log.
//
// Record format, one observation per line (keys kept short — at capacity a
// log line is ~80 bytes):
//   {"b":"<benchmark>","a":"<arch>","s":"<fingerprint>",
//    "c":[<config ints>],"v":<runtime us|null>,"ok":<bool>}
//
// Semantics:
//   - Dedup is first-value-wins per (key, config): appending a config a
//     tenant already holds is a counted in-memory no-op and writes nothing.
//     This makes re-appends idempotent, which is load-bearing: session-WAL
//     recovery and ship-applied replica tells re-append their records, and
//     idempotency is what keeps primary, standby and restarted stores
//     byte-identical (ResultsStore::digest()).
//   - Capacity is bounded; eviction is strict global FIFO by insertion
//     order, applied identically during live appends and log replay, so the
//     surviving set is a pure function of the append stream.
//   - Compaction rewrites the log to the live set (tmp + fsync + rename +
//     parent-dir fsync) once evictions have left enough dead lines behind;
//     it runs automatically inside append() past a threshold.
//   - The in-memory index is sharded with per-shard mutexes, so queries and
//     stats never wait behind an in-flight fsync.
//
// A record whose config length disagrees with the rows a tenant already
// holds cannot come from the same space; append() and import rejects it
// with the typed IncompatibleSpaceError.

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "tuner/search_space.hpp"

namespace repro::store {

/// Base class of all typed store failures.
struct StoreError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A record is structurally incompatible with the space its tenant key
/// declares (config dimensionality mismatch): the space fingerprint says
/// the histories cannot be mixed.
struct IncompatibleSpaceError : StoreError {
  using StoreError::StoreError;
};

/// Identity of one tenant history: the kernel being tuned, the architecture
/// it runs on, and the canonical fingerprint of the search space
/// (store/fingerprint.hpp).
struct StoreKey {
  std::string benchmark;
  std::string arch;
  std::string fingerprint;

  /// Flat map key; fields are joined with an ASCII unit separator so no
  /// benchmark/arch naming can alias two keys.
  [[nodiscard]] std::string flat() const;
};

/// One stored observation.
struct StoreRecord {
  tuner::Configuration config;
  double value = 0.0;  ///< runtime in µs; NaN when the evaluation failed
  bool valid = false;
};

/// One tenant's full history, insertion-ordered. Used by export/import.
struct TenantSnapshot {
  StoreKey key;
  std::vector<StoreRecord> rows;
};

struct StoreOptions {
  /// Directory holding `results.log`. Empty = in-memory only (no
  /// persistence; used by tests and benches).
  std::string dir;
  /// Maximum live records across all tenants; 0 = unbounded. Exceeding it
  /// evicts the globally oldest record (deterministic FIFO).
  std::size_t capacity = 1u << 20;
  /// Index shard count (rounded up to a power of two, minimum 1).
  std::size_t shards = 16;
  /// fsync() after every append. Leave on for durability; benches building
  /// large fixture logs turn it off (the crash guarantee then lapses).
  bool fsync_appends = true;
  /// Compact when dead log lines exceed both this slack and the live count.
  std::size_t compact_slack = 1024;
};

struct StoreStats {
  std::size_t records = 0;       ///< live records across all tenants
  std::size_t tenants = 0;       ///< distinct (benchmark, arch, space) keys
  std::uint64_t appends = 0;     ///< append() calls that stored a new record
  std::uint64_t duplicates = 0;  ///< append() calls dropped by dedup
  std::uint64_t rejected = 0;    ///< appends refused as incompatible
  std::uint64_t evictions = 0;   ///< records dropped by the capacity bound
  std::uint64_t compactions = 0;
  std::uint64_t io_errors = 0;   ///< failed log writes (records kept in memory)
  std::size_t log_records = 0;   ///< lines in the on-disk log (live + dead)
  std::uint64_t log_bytes = 0;
  std::size_t loaded_records = 0;  ///< records recovered by load()
  bool torn_tail = false;          ///< load() dropped a torn final line
};

class ResultsStore {
 public:
  explicit ResultsStore(StoreOptions options);
  ~ResultsStore();

  ResultsStore(const ResultsStore&) = delete;
  ResultsStore& operator=(const ResultsStore&) = delete;

  /// Replay the on-disk log into the index (creating dir/log as needed) and
  /// open it for appends. Call once, before any append. Throws StoreError
  /// on unreadable logs or malformed interior records; a torn final line is
  /// dropped and truncated away. No-op in in-memory mode.
  void load();

  /// Durably record one observation. Returns true when the record was new
  /// (and, in persistent mode, fsync'd to the log before returning); false
  /// when dedup dropped it. Throws IncompatibleSpaceError when `config`'s
  /// dimensionality contradicts the tenant's existing rows.
  bool append(const StoreKey& key, const tuner::Configuration& config, double value,
              bool valid);

  /// A tenant's live history in insertion order. `max_rows` > 0 keeps only
  /// the most recent rows. Unknown keys return an empty vector.
  [[nodiscard]] std::vector<StoreRecord> query(const StoreKey& key,
                                               std::size_t max_rows = 0) const;

  /// Number of live rows for one tenant.
  [[nodiscard]] std::size_t tenant_rows(const StoreKey& key) const;

  /// Every tenant (optionally filtered by benchmark and/or arch), sorted by
  /// key so the export is deterministic. `max_records` > 0 caps the total
  /// rows exported (whole tenants in sorted order, then a row-truncated
  /// final tenant).
  [[nodiscard]] std::vector<TenantSnapshot> export_tenants(
      const std::string& benchmark = "", const std::string& arch = "",
      std::size_t max_records = 0) const;

  /// One page of export_tenants plus the resume position. `more` is exact
  /// (not a heuristic): true iff rows past this page exist. Rows within a
  /// tenant are append-ordered and append-only, so a (tenant flat key, row
  /// offset) resume point stays valid across pages even while concurrent
  /// appends grow the store.
  struct ExportPage {
    std::vector<TenantSnapshot> tenants;
    bool more = false;
    std::string next_tenant_flat;  ///< resume tenant key (valid when more)
    std::size_t next_row = 0;      ///< resume row offset within that tenant
  };

  /// Export up to `max_records` rows (0 = unlimited) starting at the resume
  /// point: tenants with flat key < `start_tenant_flat` are skipped, and the
  /// first `start_row` rows of the tenant equal to it are skipped.
  /// export_tenants() is this with an empty resume point.
  [[nodiscard]] ExportPage export_page(const std::string& benchmark,
                                       const std::string& arch,
                                       std::size_t max_records,
                                       const std::string& start_tenant_flat,
                                       std::size_t start_row) const;

  /// Append every row of every snapshot (dedup applies). Returns the number
  /// of newly stored records.
  std::size_t import_tenants(const std::vector<TenantSnapshot>& tenants);

  [[nodiscard]] StoreStats stats() const;

  /// Distinct live tenant keys.
  [[nodiscard]] std::size_t tenant_count() const;

  /// Rewrite the log to the live set; returns dead lines dropped. No-op in
  /// in-memory mode.
  std::size_t compact();

  /// Drop every live row and truncate the log to empty (fsync'd). The
  /// demote path: a deposed primary's store may hold rows the new primary
  /// never acknowledged, and a rejoining standby must re-seed from an
  /// empty store or the digest gate can never pass. Returns rows dropped.
  std::size_t reset();

  /// Order-insensitive identity hash over every live tenant and row.
  /// Two stores fed equivalent append streams — primary vs standby, live vs
  /// recovered — must agree on this digest.
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] bool persistent() const noexcept { return !options_.dir.empty(); }
  [[nodiscard]] std::string log_path() const;

 private:
  struct Tenant {
    StoreKey key;
    std::vector<StoreRecord> rows;  ///< insertion order (minus evictions)
    /// config flat key → index into rows, for dedup and eviction.
    std::unordered_map<std::string, std::size_t> by_config;
  };
  struct Shard {
    mutable repro::Mutex mutex;
    std::unordered_map<std::string, Tenant> by_key GUARDED_BY(mutex);
  };
  /// Global FIFO entry: enough to find a record again at eviction time.
  struct FifoEntry {
    std::string tenant_flat;
    std::string config_flat;
  };

  enum class InsertOutcome { kInserted, kDuplicate, kIncompatible };

  [[nodiscard]] Shard& shard_for(const std::string& tenant_flat) const noexcept;
  /// Index-only insert (no log). Fills `error` on kIncompatible.
  InsertOutcome insert_in_memory(const StoreKey& key, const tuner::Configuration& config,
                                 double value, bool valid, std::string* error);
  /// Drop the globally oldest records until the live count fits capacity.
  void evict_over_capacity() REQUIRES(log_mutex_);
  void append_to_log(const StoreKey& key, const tuner::Configuration& config,
                     double value, bool valid) REQUIRES(log_mutex_);
  void compact_locked() REQUIRES(log_mutex_);
  [[nodiscard]] std::string encode_record(const StoreKey& key,
                                          const tuner::Configuration& config,
                                          double value, bool valid) const;

  StoreOptions options_;
  std::size_t shard_count_ = 1;
  std::unique_ptr<Shard[]> shards_;

  /// Guards the log fd, the global FIFO, and every counter. Lock order is
  /// log_mutex_ → shard everywhere (append, eviction, compaction, load);
  /// shard mutexes are never held while acquiring log_mutex_, so the order
  /// cannot deadlock — and readers (query/stats/export) take only shard
  /// locks, so they never wait behind an in-flight fsync.
  mutable repro::Mutex log_mutex_;
  int fd_ GUARDED_BY(log_mutex_) = -1;
  bool loaded_ GUARDED_BY(log_mutex_) = false;
  std::deque<FifoEntry> fifo_ GUARDED_BY(log_mutex_);
  std::size_t live_records_ GUARDED_BY(log_mutex_) = 0;
  std::size_t log_records_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t log_bytes_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t appends_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t duplicates_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t rejected_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t evictions_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t compactions_ GUARDED_BY(log_mutex_) = 0;
  std::uint64_t io_errors_ GUARDED_BY(log_mutex_) = 0;
  std::size_t loaded_records_ GUARDED_BY(log_mutex_) = 0;
  bool torn_tail_ GUARDED_BY(log_mutex_) = false;
};

/// Flat config key ("4,2,1"); shared by the index and tests.
[[nodiscard]] std::string config_flat_key(const tuner::Configuration& config);

}  // namespace repro::store
