#include "store/fingerprint.hpp"

#include <cstdint>
#include <cstdio>

#include "common/rng.hpp"

namespace repro::store {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_text(std::uint64_t& hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
}

void fnv_int(std::uint64_t& hash, long long value) {
  char buffer[32];
  const int n = std::snprintf(buffer, sizeof buffer, "%lld", value);
  fnv_text(hash, std::string_view(buffer, static_cast<std::size_t>(n)));
}

}  // namespace

std::string space_fingerprint(const std::vector<tuner::ParamRange>& params,
                              const std::string& constraint) {
  // Versioned canonical serialization: bump the tag if the scheme ever
  // changes so old stores cannot silently alias onto new keys.
  std::uint64_t hash = kFnvOffset;
  fnv_text(hash, "space:v1");
  for (const auto& param : params) {
    fnv_text(hash, "\x1e");  // record separator between parameters
    fnv_text(hash, param.name);
    fnv_text(hash, "\x1f");  // unit separator inside one parameter
    fnv_int(hash, param.lo);
    fnv_text(hash, "\x1f");
    fnv_int(hash, param.hi);
  }
  fnv_text(hash, "\x1e" "constraint:");
  fnv_text(hash, constraint);
  std::uint64_t state = hash;
  const std::uint64_t finalized = splitmix64(state);
  char out[17];
  std::snprintf(out, sizeof out, "%016llx", static_cast<unsigned long long>(finalized));
  return std::string(out, 16);
}

std::string paper_space_fingerprint() {
  return space_fingerprint(tuner::paper_search_space().params(), "wg256");
}

}  // namespace repro::store
